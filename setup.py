"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package, which
setuptools' PEP-517 editable builds require; keeping a ``setup.py`` (and no
``[build-system]`` table in pyproject.toml) lets ``pip install -e .`` fall
back to the classic ``setup.py develop`` path.  All metadata lives in
pyproject.toml's ``[project]`` table.
"""

from setuptools import setup

setup()
