#!/usr/bin/env python
"""Documentation checks: resolvable links + runnable doc snippets.

Two passes over ``README.md`` and ``docs/*.md`` (plus any extra paths
given on the command line):

1. **link check** — every relative markdown link/image target
   (``[text](path)``) must exist on disk, anchors and query strings
   stripped; ``http(s)``/``mailto`` links are skipped (the suite must
   pass offline).
2. **doctests** — every ``>>>`` example in the files is executed via
   :mod:`doctest` (run with ``PYTHONPATH=src`` so ``repro`` imports).

Exit status is non-zero on any broken link or failing example, which is
what CI's docs job and ``tests/test_docs.py`` assert.
"""

from __future__ import annotations

import doctest
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Markdown inline links/images: [text](target) — target captured.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not files to check.
_EXTERNAL = ("http://", "https://", "mailto:")


def default_docs() -> list[pathlib.Path]:
    """README.md plus every markdown file under docs/."""
    paths = [REPO_ROOT / "README.md"]
    paths.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in paths if path.exists()]


def check_links(path: pathlib.Path) -> list[str]:
    """All broken relative link targets of one markdown file."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        plain = target.split("#", 1)[0].split("?", 1)[0]
        if not plain:
            continue
        resolved = (path.parent / plain).resolve()
        if not resolved.exists():
            try:
                shown = path.relative_to(REPO_ROOT)
            except ValueError:
                shown = path
            problems.append(f"{shown}: broken link -> {target}")
    return problems


def check_doctests(path: pathlib.Path) -> tuple[int, int]:
    """Run a markdown file's ``>>>`` examples; returns (failures, attempts)."""
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    return results.failed, results.attempted


def main(argv: list[str]) -> int:
    paths = [pathlib.Path(arg) for arg in argv] or default_docs()
    broken: list[str] = []
    failed = attempted = 0
    for path in paths:
        broken.extend(check_links(path))
        file_failed, file_attempted = check_doctests(path)
        failed += file_failed
        attempted += file_attempted
    for problem in broken:
        print(problem)
    print(
        f"checked {len(paths)} docs: {len(broken)} broken links, "
        f"{failed}/{attempted} doc examples failed"
    )
    return 1 if broken or failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
