"""Regression machinery: solvers, metrics, splits, bias correction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RegressionError
from repro.regression import (
    ErrorReport,
    fit_linear,
    fit_nlls,
    fit_nonnegative,
    mae,
    nrmse,
    rebias_constant,
    rmse,
    split_runs,
)


class TestLinearFits:
    def test_exact_recovery(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 10, (100, 3))
        true = np.array([2.0, 0.5, 7.0])
        fit = fit_linear(X, X @ true)
        assert fit.coefficients == pytest.approx(true, abs=1e-8)

    def test_nonnegative_respects_bounds(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 10, (200, 2))
        y = X @ np.array([3.0, -2.0]) + rng.normal(0, 0.1, 200)
        fit = fit_nonnegative(X, y)
        assert np.all(fit.coefficients >= 0)

    def test_nonnegative_matches_ols_when_interior(self):
        rng = np.random.default_rng(2)
        X = np.column_stack([rng.uniform(0, 100, 300), np.ones(300)])
        y = X @ np.array([2.4, 420.0]) + rng.normal(0, 1.0, 300)
        assert fit_nonnegative(X, y).coefficients == pytest.approx(
            fit_linear(X, y).coefficients, abs=1e-6
        )

    def test_predict_shape_check(self):
        fit = fit_linear(np.ones((5, 2)), np.ones(5))
        with pytest.raises(RegressionError):
            fit.predict(np.ones((3, 4)))

    def test_underdetermined_rejected(self):
        with pytest.raises(RegressionError):
            fit_linear(np.ones((2, 5)), np.ones(2))

    def test_nonfinite_rejected(self):
        X = np.ones((5, 1))
        y = np.array([1.0, 2.0, np.nan, 4.0, 5.0])
        with pytest.raises(RegressionError):
            fit_linear(X, y)

    def test_residual_norm_reported(self):
        X = np.column_stack([np.arange(10.0), np.ones(10)])
        y = X @ np.array([1.0, 0.0])
        assert fit_linear(X, y).residual_norm == pytest.approx(0.0, abs=1e-9)


class TestNlls:
    def test_recovers_exponent(self):
        # Fit y = a * u^p: genuinely non-linear in p.
        u = np.linspace(0.05, 1.0, 80)
        y = 185.0 * u**2.2

        def residual(params):
            a, p = params
            return a * u**p - y

        fit = fit_nlls(residual, x0=[100.0, 1.5], lower=[0.0, 1.0], upper=[1e4, 4.0])
        assert fit.parameters[0] == pytest.approx(185.0, rel=1e-3)
        assert fit.parameters[1] == pytest.approx(2.2, rel=1e-3)
        assert fit.converged

    def test_bounds_respected(self):
        y = np.linspace(0, 1, 30)

        def residual(params):
            return params[0] - y

        fit = fit_nlls(residual, x0=[0.2], lower=[0.4], upper=[2.0])
        assert fit.parameters[0] >= 0.4 - 1e-9

    def test_bad_bounds_rejected(self):
        with pytest.raises(RegressionError):
            fit_nlls(lambda p: p, x0=[1.0], lower=[2.0], upper=[1.0])

    def test_degenerate_residual_rejected(self):
        with pytest.raises(RegressionError):
            fit_nlls(lambda p: np.array([]), x0=[1.0, 2.0])


class TestMetrics:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mae(y, y) == 0.0
        assert rmse(y, y) == 0.0
        assert nrmse(y, y) == 0.0

    def test_known_values(self):
        y_true = np.array([0.0, 0.0, 0.0, 0.0])
        y_pred = np.array([1.0, -1.0, 1.0, -1.0])
        assert mae(y_true, y_pred) == 1.0
        assert rmse(y_true, y_pred) == 1.0

    def test_rmse_dominates_mae(self):
        rng = np.random.default_rng(0)
        y = rng.uniform(0, 10, 50)
        p = y + rng.normal(0, 1, 50)
        assert rmse(y, p) >= mae(y, p)

    def test_mean_normalisation(self):
        y_true = np.array([10.0, 30.0])  # mean 20
        y_pred = np.array([12.0, 32.0])  # rmse 2
        assert nrmse(y_true, y_pred) == pytest.approx(0.1)

    def test_range_normalisation(self):
        y_true = np.array([10.0, 30.0])  # range 20
        y_pred = np.array([12.0, 32.0])
        assert nrmse(y_true, y_pred, normalization="range") == pytest.approx(0.1)

    def test_unknown_normalisation(self):
        with pytest.raises(RegressionError):
            nrmse(np.array([1.0, 2.0]), np.array([1.0, 2.0]), normalization="z")

    def test_zero_mean_rejected(self):
        with pytest.raises(RegressionError):
            nrmse(np.array([-1.0, 1.0]), np.array([0.0, 0.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(RegressionError):
            mae(np.ones(3), np.ones(4))

    def test_error_report(self):
        report = ErrorReport.from_predictions(
            np.array([10000.0, 20000.0]), np.array([11000.0, 19000.0])
        )
        assert report.mae_kj == pytest.approx(1.0)
        assert report.nrmse_percent == pytest.approx(1000.0 / 15000.0 * 100.0)
        assert report.rmse_mae_spread_j == pytest.approx(report.rmse_j - report.mae_j)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e5), min_size=2, max_size=30),
        st.floats(min_value=0.5, max_value=2.0),
    )
    @settings(max_examples=30)
    def test_nrmse_scale_invariant(self, values, scale):
        y = np.asarray(values)
        p = y * 1.05
        assert nrmse(y * scale, p * scale) == pytest.approx(nrmse(y, p), rel=1e-9)


class TestSplitRuns:
    def test_every_stratum_in_training(self):
        groups = ["a"] * 10 + ["b"] * 10 + ["c"] * 10
        split = split_runs(groups, training_fraction=0.2)
        train_groups = {groups[i] for i in split.train_indices}
        assert train_groups == {"a", "b", "c"}

    def test_twenty_percent_share(self):
        groups = ["s"] * 10
        split = split_runs(groups, training_fraction=0.2)
        assert len(split.train_indices) == 2
        assert len(split.test_indices) == 8

    def test_no_overlap_full_cover(self):
        groups = ["a"] * 7 + ["b"] * 5
        split = split_runs(groups)
        train, test = set(split.train_indices), set(split.test_indices)
        assert not train & test
        assert train | test == set(range(12))

    def test_never_consumes_whole_stratum(self):
        split = split_runs(["a", "a"], training_fraction=0.9)
        assert len(split.train_indices) == 1

    def test_deterministic_default(self):
        groups = ["a"] * 10 + ["b"] * 10
        assert split_runs(groups) == split_runs(groups)

    def test_partition_helper(self):
        groups = ["a"] * 4
        split = split_runs(groups, training_fraction=0.25)
        train, test = split.partition(list("wxyz"))
        assert len(train) == 1 and len(test) == 3

    def test_empty_rejected(self):
        with pytest.raises(RegressionError):
            split_runs([])

    def test_bad_fraction_rejected(self):
        with pytest.raises(RegressionError):
            split_runs(["a", "b"], training_fraction=1.0)


class TestBias:
    def test_paper_direction(self):
        # m-pair trains at high idle; porting to the low-idle o-pair must
        # *reduce* the constant.
        c2 = rebias_constant(708.3, trained_idle_w=457.0, deployed_idle_w=112.75)
        assert c2 == pytest.approx(708.3 - 344.25)

    def test_identity_when_same_idle(self):
        assert rebias_constant(500.0, 455.0, 455.0) == 500.0

    def test_rejects_nonpositive_idle(self):
        with pytest.raises(RegressionError):
            rebias_constant(500.0, 0.0, 100.0)
