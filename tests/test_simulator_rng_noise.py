"""Deterministic RNG streams and hash-noise processes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.simulator import RandomStreams, derive_seed
from repro.simulator.noise import hash_normal, hash_uniform, ou_like_noise


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_key_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=40))
    def test_range(self, seed, key):
        assert 0 <= derive_seed(seed, key) < 2**64

    def test_pinned_outputs(self):
        """Regression pins: run seeds and cache keys derive from these.

        The campaign executor's content-addressed cache and every run's
        RNG universe are functions of ``derive_seed``, so a silent change
        to the derivation would corrupt caches and break reproducibility
        of published numbers.  These values must never drift.
        """
        pins = {
            (0, "cpuload-source/live/0vm/m#0"): 7423241531779256194,
            (0, "vm:migrating"): 274058268226706434,
            (7, "memload-vm/live/dr35/m#3"): 18240309260408903903,
            (1234, "fixture/live/5vm#0"): 2627283528310336730,
            (2**32, "spawn:run"): 9943500105489934407,
            (42, ""): 9399971064701155330,
        }
        for (seed, key), expected in pins.items():
            assert derive_seed(seed, key) == expected


class TestRandomStreams:
    def test_same_key_same_object(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_fresh_restarts(self):
        streams = RandomStreams(7)
        a = streams.fresh("x").random()
        b = streams.fresh("x").random()
        assert a == b

    def test_different_keys_independent(self):
        streams = RandomStreams(7)
        a = streams.fresh("x").random(1000)
        b = streams.fresh("y").random(1000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.2

    def test_spawn_changes_universe(self):
        parent = RandomStreams(7)
        child = parent.spawn("run0")
        assert parent.fresh("x").random() != child.fresh("x").random()

    def test_spawn_deterministic(self):
        a = RandomStreams(7).spawn("run0").fresh("x").random()
        b = RandomStreams(7).spawn("run0").fresh("x").random()
        assert a == b

    def test_keys_tracks_created(self):
        streams = RandomStreams(0)
        streams.stream("alpha")
        assert list(streams.keys()) == ["alpha"]


class TestHashNoise:
    def test_constant_within_quantum(self):
        a = hash_normal(1, "k", 10.1, quantum=0.5)
        b = hash_normal(1, "k", 10.4, quantum=0.5)
        assert a == b

    def test_changes_across_quanta(self):
        values = {hash_normal(1, "k", t, quantum=0.5) for t in np.arange(0, 50, 0.5)}
        assert len(values) > 90  # essentially all distinct

    def test_uniform_bounds(self):
        for t in np.arange(0, 20, 0.7):
            value = hash_uniform(3, "u", float(t), quantum=1.0, low=2.0, high=5.0)
            assert 2.0 <= value < 5.0

    def test_normal_moments(self):
        samples = np.array(
            [hash_normal(9, "m", float(t), 1.0, sigma=2.0) for t in range(4000)]
        )
        assert abs(samples.mean()) < 0.15
        assert samples.std() == pytest.approx(2.0, rel=0.08)

    def test_zero_sigma_is_zero(self):
        assert hash_normal(1, "k", 3.0, 1.0, sigma=0.0) == 0.0

    def test_rejects_bad_quantum(self):
        with pytest.raises(ConfigurationError):
            hash_normal(1, "k", 0.0, quantum=0.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            hash_normal(1, "k", 0.0, 1.0, sigma=-1.0)


class TestOuLikeNoise:
    def test_marginal_variance_preserved(self):
        samples = np.array(
            [ou_like_noise(5, "ou", float(t), 1.0, sigma=3.0, blend=0.6) for t in range(4000)]
        )
        assert samples.std() == pytest.approx(3.0, rel=0.08)

    def test_lag_correlation_positive(self):
        values = np.array(
            [ou_like_noise(5, "ou", float(t), 1.0, sigma=1.0, blend=0.6) for t in range(2000)]
        )
        lag1 = np.corrcoef(values[:-1], values[1:])[0, 1]
        assert lag1 > 0.3

    def test_blend_zero_uncorrelated(self):
        values = np.array(
            [ou_like_noise(5, "ou", float(t), 1.0, sigma=1.0, blend=0.0) for t in range(2000)]
        )
        lag1 = np.corrcoef(values[:-1], values[1:])[0, 1]
        assert abs(lag1) < 0.1

    def test_rejects_bad_blend(self):
        with pytest.raises(ConfigurationError):
            ou_like_noise(1, "k", 0.0, 1.0, sigma=1.0, blend=1.0)

    def test_deterministic(self):
        a = ou_like_noise(1, "k", 12.0, 2.0, sigma=1.0)
        b = ou_like_noise(1, "k", 12.0, 2.0, sigma=1.0)
        assert a == b
