"""Energy models: fitting, prediction, structural facts of the tables."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.models import (
    HostRole,
    HuangModel,
    LiuModel,
    MigrationSample,
    StrunkModel,
    Wavm3Model,
    available_models,
    create_model,
)
from repro.models.coefficients import (
    PAPER_TABLE_III_NONLIVE,
    PAPER_TABLE_IV_LIVE,
    paper_wavm3_coefficients,
)
from repro.models.liu import precopy_data_estimate
from repro.models.registry import register_model
from repro.phases.timeline import MigrationPhase


class TestRegistry:
    def test_table_vii_set(self):
        assert available_models()[:4] == ("WAVM3", "HUANG", "LIU", "STRUNK")

    def test_create_case_insensitive(self):
        assert isinstance(create_model("wavm3"), Wavm3Model)

    def test_unknown_model(self):
        with pytest.raises(ModelError):
            create_model("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ModelError):
            register_model("WAVM3", Wavm3Model)


class TestMigrationSample:
    def test_alignment_enforced(self, live_cpu_run):
        sample = live_cpu_run.sample_for(HostRole.SOURCE)
        n = sample.n_readings
        for array in (sample.power_w, sample.phase, sample.cpu_host_pct,
                      sample.cpu_vm_pct, sample.bw_bps, sample.dr_pct):
            assert len(array) == n

    def test_energy_total_is_sum(self, live_cpu_run):
        sample = live_cpu_run.sample_for(HostRole.SOURCE)
        assert sample.energy_total_j == pytest.approx(
            sample.energy_initiation_j
            + sample.energy_transfer_j
            + sample.energy_activation_j
        )

    def test_phase_masks_partition(self, live_cpu_run):
        sample = live_cpu_run.sample_for(HostRole.TARGET)
        total = sum(
            int(sample.phase_mask(p).sum())
            for p in (MigrationPhase.INITIATION, MigrationPhase.TRANSFER,
                      MigrationPhase.ACTIVATION)
        )
        assert total == sample.n_readings

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ModelError):
            MigrationSample(
                scenario="x", experiment="X", live=True, family="m",
                role=HostRole.SOURCE, run_index=0,
                times=np.array([1.0, 2.0]), power_w=np.array([1.0]),
                phase=np.array([0, 1]), cpu_host_pct=np.array([0.0, 0.0]),
                cpu_vm_pct=np.array([0.0, 0.0]), bw_bps=np.array([0.0, 0.0]),
                dr_pct=np.array([0.0, 0.0]), data_bytes=1.0, mem_mb=1.0,
                mean_bw_bps=1.0, energy_initiation_j=0.0,
                energy_transfer_j=0.0, energy_activation_j=0.0,
            )


class TestWavm3Fitting:
    def test_fit_then_predict(self, mini_samples):
        model = Wavm3Model().fit(mini_samples)
        prediction = model.predict_energy(mini_samples[0])
        assert prediction.total_j > 0
        assert prediction.transfer_j > prediction.initiation_j

    def test_unfitted_raises(self, mini_samples):
        with pytest.raises(NotFittedError):
            Wavm3Model().predict_energy(mini_samples[0])

    def test_reasonable_accuracy_in_sample(self, mini_samples):
        model = Wavm3Model().fit(mini_samples)
        predicted = model.predict_energies(mini_samples)
        measured = model.measured_energies(mini_samples)
        assert np.all(np.abs(predicted - measured) / measured < 0.35)

    def test_coefficients_nonnegative(self, mini_samples):
        model = Wavm3Model().fit(mini_samples)
        for row in model.coefficients.as_table_rows():
            assert row["value"] >= 0.0

    def test_positive_cpu_slope(self, mini_samples):
        model = Wavm3Model().fit(mini_samples)
        alpha = model.coefficients.coefficient(
            HostRole.SOURCE, MigrationPhase.TRANSFER, "cpu_host"
        )
        assert alpha > 0.5  # watts per CPU percent on the m-pair

    def test_target_transfer_dr_zero(self, mini_samples):
        # Paper Table IV: gamma(t) = 0 on the target (no VM there yet).
        model = Wavm3Model().fit(mini_samples)
        gamma = model.coefficients.coefficient(
            HostRole.TARGET, MigrationPhase.TRANSFER, "dr"
        )
        assert gamma == 0.0

    def test_ablation_disables_feature(self, mini_samples):
        model = Wavm3Model(disabled_features={"bw"}).fit(mini_samples)
        beta = model.coefficients.coefficient(
            HostRole.SOURCE, MigrationPhase.TRANSFER, "bw"
        )
        assert beta == 0.0

    def test_unknown_disabled_feature_rejected(self):
        with pytest.raises(ModelError):
            Wavm3Model(disabled_features={"zz"})

    def test_unknown_method_rejected(self):
        with pytest.raises(ModelError):
            Wavm3Model(method="magic")

    def test_rebias_shifts_constants(self, mini_samples):
        model = Wavm3Model().fit(mini_samples)
        original = model.coefficients
        ported = original.rebias(deployed_idle_w=112.0)
        for role in (HostRole.SOURCE, HostRole.TARGET):
            for phase in (MigrationPhase.INITIATION, MigrationPhase.TRANSFER,
                          MigrationPhase.ACTIVATION):
                assert ported.coefficient(role, phase, "const") <= original.coefficient(
                    role, phase, "const"
                )
                # Slopes untouched (the paper only adjusts the bias).
                assert ported.coefficient(role, phase, "cpu_host") == original.coefficient(
                    role, phase, "cpu_host"
                )

    def test_empty_fit_rejected(self):
        with pytest.raises(ModelError):
            Wavm3Model().fit([])


class TestPaperCoefficients:
    def test_structural_zeroes(self):
        # beta(i) = 0 on target initiation; gamma(t) = 0 on target transfer.
        assert PAPER_TABLE_III_NONLIVE["target"]["initiation"]["beta"] == 0.0
        assert PAPER_TABLE_IV_LIVE["target"]["transfer"]["gamma"] == 0.0

    def test_c2_lower_than_c1(self):
        for table in (PAPER_TABLE_III_NONLIVE, PAPER_TABLE_IV_LIVE):
            for role in table.values():
                for phase in role.values():
                    assert phase["C2"] < phase["C1"]

    def test_paper_model_predicts(self, mini_samples):
        model = Wavm3Model().with_coefficients(paper_wavm3_coefficients(live=True))
        live_sample = next(s for s in mini_samples if s.live)
        assert model.predict_energy(live_sample).total_j > 0

    def test_paper_coefficients_rebias(self):
        coefs = paper_wavm3_coefficients(live=True, dataset="m")
        ported = coefs.rebias(deployed_idle_w=112.0)
        assert ported.coefficient(
            HostRole.SOURCE, MigrationPhase.INITIATION, "const"
        ) == pytest.approx(708.3 - (455.0 - 112.0))


class TestHuang:
    def test_fit_and_predict(self, mini_samples):
        model = HuangModel().fit(mini_samples)
        assert model.predict_energy(mini_samples[0]).total_j > 0

    def test_constant_near_idle(self, mini_samples):
        # C absorbs the idle draw (the paper's Table VI C ~ 650-670 W).
        model = HuangModel().fit(mini_samples)
        for role in (HostRole.SOURCE, HostRole.TARGET):
            _, c = model.coefficients[role]
            assert 350.0 < c < 700.0

    def test_vm_cpu_variant(self, mini_samples):
        model = HuangModel(cpu_source="vm").fit(mini_samples)
        assert model.predict_energy(mini_samples[0]).total_j > 0

    def test_bad_cpu_source(self):
        with pytest.raises(ModelError):
            HuangModel(cpu_source="disk")

    def test_rebias(self, mini_samples):
        model = HuangModel().fit(mini_samples)
        ported = model.rebias(deployed_idle_w=112.0)
        for role in (HostRole.SOURCE, HostRole.TARGET):
            assert ported.coefficients[role][1] < model.coefficients[role][1]


class TestLiu:
    def test_energy_grows_with_data(self, mini_samples):
        model = LiuModel().fit(mini_samples)
        small = next(s for s in mini_samples if not s.live)
        alpha, c = model.coefficients[small.role]
        assert alpha >= 0

    def test_power_view_rejected(self, mini_samples):
        model = LiuModel().fit(mini_samples)
        with pytest.raises(ModelError):
            model.predict_power(mini_samples[0])

    def test_needs_two_migrations(self, mini_samples):
        with pytest.raises(ModelError):
            LiuModel().fit(mini_samples[:1])

    def test_precopy_data_estimate(self):
        # Eq. 10 reference: no dirtying -> exactly one full-memory round.
        data = precopy_data_estimate(
            mem_pages=1000, page_size_bytes=4096, bw_pages_per_s=100.0,
            dirty_rate_pages_per_s=0.0, n_rounds=10,
        )
        assert data == 1000 * 4096

    def test_precopy_estimate_grows_with_dirty_rate(self):
        slow = precopy_data_estimate(1000, 4096, 100.0, 10.0, 10)
        fast = precopy_data_estimate(1000, 4096, 100.0, 80.0, 10)
        assert fast > slow

    def test_precopy_estimate_validates(self):
        with pytest.raises(ModelError):
            precopy_data_estimate(0, 4096, 100.0, 10.0, 5)


class TestStrunk:
    def test_fit_and_predict(self, mini_samples):
        model = StrunkModel().fit(mini_samples)
        assert model.fitted
        prediction = model.predict_energy(mini_samples[0])
        assert np.isfinite(prediction.total_j)

    def test_constant_mem_column_pinned(self, mini_samples):
        # Every migrating VM is 4 GB -> MEM has no spread -> alpha = 0.
        model = StrunkModel().fit(mini_samples)
        for role in (HostRole.SOURCE, HostRole.TARGET):
            alpha, _, _ = model.coefficients[role]
            assert alpha == 0.0

    def test_needs_three_migrations(self, mini_samples):
        with pytest.raises(ModelError):
            StrunkModel().fit(mini_samples[:2])

    def test_unfitted_raises(self, mini_samples):
        with pytest.raises(NotFittedError):
            StrunkModel().predict_energy(mini_samples[0])
