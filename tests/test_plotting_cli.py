"""ASCII plotting and the CLI surface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.plotting import ascii_plot


class TestAsciiPlot:
    def test_renders_series_and_legend(self):
        x = np.linspace(0, 10, 50)
        text = ascii_plot([("load", x, 400 + 50 * np.sin(x))], title="demo")
        assert text.startswith("demo")
        assert "o load" in text
        assert "POWER [W]" in text

    def test_marks_rendered(self):
        x = np.linspace(0, 10, 50)
        text = ascii_plot([("s", x, np.ones_like(x))], marks=[("ms", 5.0)])
        assert "|" in text and "ms" in text

    def test_multiple_series_glyphs(self):
        x = np.linspace(0, 10, 20)
        text = ascii_plot([("a", x, x), ("b", x, 2 * x)])
        assert "o a" in text and "x b" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([])

    def test_tiny_area_rejected(self):
        x = np.linspace(0, 1, 5)
        with pytest.raises(ConfigurationError):
            ascii_plot([("s", x, x)], width=5)

    def test_flat_series_ok(self):
        x = np.linspace(0, 10, 20)
        text = ascii_plot([("flat", x, np.full_like(x, 455.0))])
        assert "flat" in text


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["table", "7", "--runs", "2"])
        assert args.command == "table" and args.table_id == "7"

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "cpuload-source/live/8vm/m" in out
        assert "memload-vm/live/dr95/m" in out
        assert len(out.strip().splitlines()) == 42

    def test_table1_fast_path(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_table2_fast_path(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table IIb" in out and "Table IIc" in out

    def test_quickstart(self, capsys):
        assert main(["--seed", "3", "quickstart"]) == 0
        out = capsys.readouterr().out
        assert "migration finished" in out
        assert "source migration energy" in out

    def test_unknown_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])
