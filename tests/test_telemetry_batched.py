"""The batched telemetry fast path: bit-identity and its building blocks.

The tentpole guarantee: ``RunnerSettings(telemetry="batched")`` produces
**bit-identical** results to the per-sample event path — same RNG stream
consumption order, same float operations.  The seed-sweep golden test
asserts byte-identical campaign samples JSON across every scenario
archetype; the unit tests pin the equivalences the kernel's design rests
on (numpy draw-order, rounding, tick grids, incremental trackers,
memoised noise).
"""

import math

import numpy as np
import pytest

from repro.errors import TraceError
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import RunCache
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.hypervisor.memory import VmMemory
from repro.io import save_samples_json
from repro.simulator.engine import Simulator
from repro.simulator.noise import (
    hash_normal,
    hash_normal_unit,
    ou_like_noise,
    ou_like_noise_block,
    ou_like_noise_cached,
)
from repro.simulator.sampling import PeriodicSampler
from repro.telemetry.stabilization import (
    StabilizationRule,
    StabilizationTracker,
    is_stable,
)

#: Fast protocol settings for cross-path sweeps (shape preserved: warmup,
#: stabilisation checks, migration wait, post-measurement all exercised).
FAST = dict(
    min_warmup_s=2.0, max_warmup_s=6.0, min_post_s=2.0, max_post_s=6.0,
    check_interval_s=1.0,
)

#: One scenario per archetype of the Table IIa design.
ARCHETYPES = [
    MigrationScenario("CPULOAD-SOURCE", "gold/lv/1vm", live=True, load_vm_count=1),
    MigrationScenario("CPULOAD-SOURCE", "gold/nl/0vm", live=False, load_vm_count=0),
    MigrationScenario(
        "CPULOAD-TARGET", "gold/lv/tgt3", live=True, load_vm_count=3, load_on="target"
    ),
    MigrationScenario("MEMLOAD-VM", "gold/lv/dr55", live=True, dirty_percent=55.0),
    MigrationScenario(
        "MEMLOAD-SOURCE", "gold/lv/mem", live=True, load_vm_count=1,
        dirty_percent=95.0,
    ),
]


def _runner(mode: str, seed: int, **overrides) -> ScenarioRunner:
    settings = RunnerSettings(telemetry=mode, **{**FAST, **overrides})
    return ScenarioRunner(seed=seed, settings=settings)


class TestGoldenCrossPath:
    """events vs batched: the same bits, per sample, per artifact."""

    @pytest.mark.parametrize("seed", [0, 20150901])
    def test_campaign_samples_json_byte_identical(self, tmp_path, seed):
        """Acceptance: the campaign samples JSON is byte-identical."""
        blobs = {}
        for mode in ("events", "batched"):
            result = _runner(mode, seed).run_campaign(
                ARCHETYPES, min_runs=2, max_runs=2
            )
            path = tmp_path / f"{mode}-{seed}.json"
            save_samples_json(result.samples(), path)
            blobs[mode] = path.read_bytes()
        assert blobs["events"] == blobs["batched"]

    @pytest.mark.parametrize("scenario", ARCHETYPES, ids=lambda s: s.label)
    def test_every_trace_bit_identical(self, scenario):
        """Beyond the JSON: every recorded array matches to the last bit."""
        a = _runner("events", 7).run_once(scenario, 0)
        b = _runner("batched", 7).run_once(scenario, 0)
        assert np.array_equal(a.source_trace.times, b.source_trace.times)
        assert np.array_equal(a.source_trace.watts, b.source_trace.watts)
        assert np.array_equal(a.target_trace.times, b.target_trace.times)
        assert np.array_equal(a.target_trace.watts, b.target_trace.watts)
        assert np.array_equal(a.features.times, b.features.times)
        for column in a.features.columns:
            assert np.array_equal(a.features.column(column), b.features.column(column))
        assert a.timeline.ms == b.timeline.ms
        assert a.timeline.me == b.timeline.me
        assert a.timeline.bytes_total == b.timeline.bytes_total

    def test_dstat_traces_bit_identical(self):
        from repro.experiments.testbed import Testbed

        beds = {}
        for mode in ("events", "batched"):
            bed = Testbed(seed=11, telemetry=mode)
            bed.start_instrumentation()
            for _ in range(10):
                bed.sim.run_for(2.5)
            bed.stop_instrumentation()
            beds[mode] = bed
        for attr in ("source_dstat", "target_dstat"):
            ta, tb = getattr(beds["events"], attr).trace, getattr(beds["batched"], attr).trace
            assert np.array_equal(ta.times, tb.times)
            for column in ta.columns:
                assert np.array_equal(ta.column(column), tb.column(column))

    def test_telemetry_mode_does_not_split_the_cache_key(self):
        scenario = ARCHETYPES[0]
        keys = {
            mode: RunCache.scenario_key(
                1, scenario, RunnerSettings(telemetry=mode), None, StabilizationRule()
            )
            for mode in ("events", "batched")
        }
        assert keys["events"] == keys["batched"]

    def test_invalid_telemetry_mode_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            RunnerSettings(telemetry="vectorised")


class TestRngDrawOrderEquivalence:
    """The numpy facts the batched meter relies on, pinned as tests."""

    def test_array_normal_matches_scalar_sequence(self):
        sigma = np.abs(np.random.default_rng(7).normal(1.0, 0.4, 500)) + 1e-6
        a = np.random.default_rng(3)
        b = np.random.default_rng(3)
        scalars = np.array([float(a.normal(0.0, s)) for s in sigma])
        block = b.normal(0.0, sigma)
        assert np.array_equal(scalars, block)
        assert float(a.random()) == float(b.random())  # same stream position

    def test_scaled_standard_normal_matches_scalar_normal(self):
        sigma = [0.3, 2.5, 0.001, 9.0, 1.0]
        a = np.random.default_rng(5)
        b = np.random.default_rng(5)
        scalars = [float(a.normal(0.0, s)) for s in sigma]
        z = b.standard_normal(len(sigma))
        scaled = [s * float(zz) for s, zz in zip(sigma, z)]
        assert scalars == scaled
        assert float(a.random()) == float(b.random())

    def test_np_round_matches_python_round(self):
        x = np.random.default_rng(0).normal(0.0, 900.0, 20000)
        q = 0.1
        scalar = np.array([round(v / q) * q for v in x.tolist()])
        vector = np.round(x / q) * q
        assert np.array_equal(scalar, vector)


class TestNoiseMemo:
    def test_hash_normal_unit_matches_hash_normal(self):
        for tick in (-3, 0, 1, 17, 40001):
            t = tick * 0.5
            assert hash_normal_unit(99, "cpu:m01", tick) == hash_normal(
                99, "cpu:m01", t, 0.5, sigma=1.0
            )

    def test_block_matches_scalar_ou(self):
        times = np.arange(0.5, 40.0, 0.5)
        for quantum, blend in ((0.5, 0.6), (20.0, 0.75)):
            block = ou_like_noise_block(
                42, "drift:m01", times, quantum, sigma=3.0, blend=blend, cache={}
            )
            scalar = np.array(
                [ou_like_noise(42, "drift:m01", t, quantum, 3.0, blend) for t in times]
            )
            assert np.array_equal(block, scalar)

    def test_cached_matches_scalar_ou(self):
        cache = {}
        for t in (0.25, 0.5, 1.0, 19.9, 20.0, 20.1):
            assert ou_like_noise_cached(
                13, "k", t, 0.5, 2.0, 0.6, cache
            ) == ou_like_noise(13, "k", t, 0.5, 2.0, 0.6)
        assert cache  # the memo actually filled

    def test_host_power_block_matches_scalar(self):
        from repro.cluster.host import PhysicalHost
        from repro.cluster.machines import machine_pair

        spec, _ = machine_pair("m")
        host = PhysicalHost(spec, noise_seed=123)
        host.cpu.set_demand("vm:x", 7.5)
        host.set_nic_flow("f", tx_bps=2e8, rx_bps=1e8)
        host.set_memory_activity("m", 0.2)
        host.power_model.transients.add_peak(1.0, 4.0, 12.0)
        times = np.arange(0.5, 30.0, 0.5)
        scalar = np.array([host.instantaneous_power(t) for t in times])
        fresh = PhysicalHost(spec, noise_seed=123)
        fresh.cpu.set_demand("vm:x", 7.5)
        fresh.set_nic_flow("f", tx_bps=2e8, rx_bps=1e8)
        fresh.set_memory_activity("m", 0.2)
        fresh.power_model.transients.add_peak(1.0, 4.0, 12.0)
        block = fresh.instantaneous_power_block(times)
        assert np.array_equal(scalar, block)

    def test_vm_cpu_block_matches_scalar(self):
        from repro.experiments.instances import make_instance_vm

        vm = make_instance_vm("load-cpu", name="v", noise_seed=5)
        vm.mark_running()
        times = np.arange(0.5, 20.0, 0.5)
        scalar = np.array([vm.cpu_percent(t) for t in times])
        fresh = make_instance_vm("load-cpu", name="v", noise_seed=5)
        fresh.mark_running()
        block = fresh.cpu_percent_block(times)
        assert np.array_equal(scalar, block)


class TestBatchedSampler:
    @pytest.mark.parametrize("period,phase", [(0.5, None), (1.0, 0.25), (0.3, 0.0)])
    def test_tick_grid_matches_event_mode(self, period, phase):
        grids = {}
        for batched in (False, True):
            sim = Simulator()
            ticks = []
            sampler = PeriodicSampler(
                sim, period, ticks.append, phase=phase, batched=batched
            )
            sampler.start()
            # a state-changing event mid-way plus run_for boundaries
            sim.schedule(3.14159, lambda: None)
            for _ in range(4):
                sim.run_for(2.5)
            sampler.stop()
            grids[batched] = ticks
        assert grids[True] == grids[False]
        assert grids[True]  # non-empty

    def test_tick_exactly_at_until_fires(self):
        sim = Simulator()
        ticks = []
        sampler = PeriodicSampler(sim, 0.5, ticks.append, batched=True)
        sampler.start()
        sim.run_for(1.0)  # boundary lands exactly on the second tick
        assert ticks == [0.5, 1.0]

    def test_stop_deregisters_hook(self):
        sim = Simulator()
        ticks = []
        sampler = PeriodicSampler(sim, 0.5, ticks.append, batched=True)
        sampler.start()
        sim.run_for(1.0)
        sampler.stop()
        assert not sampler.running
        sim.run_for(5.0)
        assert ticks == [0.5, 1.0]

    def test_batch_callback_receives_blocks(self):
        sim = Simulator()
        blocks = []
        sampler = PeriodicSampler(
            sim, 0.5, lambda t: None, batched=True,
            batch_callback=lambda ts: blocks.append(ts.copy()),
        )
        sampler.start()
        sim.run_for(5.0)
        assert len(blocks) == 1
        assert np.array_equal(blocks[0], np.arange(0.5, 5.5, 0.5))
        assert sampler.samples_taken == 10


class TestEngineInstrumentation:
    def test_pending_counter_matches_heap_scan(self):
        sim = Simulator()
        rng = np.random.default_rng(0)
        events = [sim.schedule(float(d), lambda: None) for d in rng.random(200) * 10]
        for event in events[::3]:
            event.cancel()  # direct cancel, not via sim.cancel
        for event in events[1::5]:
            sim.cancel(event)
        for _ in range(50):
            sim.step()
        expected = sum(1 for e in sim._heap if e.pending)
        assert sim.pending_events == expected

    def test_pending_counter_zero_after_drain(self):
        sim = Simulator()
        for d in (1.0, 2.0, 3.0):
            sim.schedule(d, lambda: None)
        sim.run()
        assert sim.pending_events == 0

    def test_hooks_advance_before_event_fires(self):
        sim = Simulator()
        observations = []

        class Hook:
            def advance_to(self, t1):
                observations.append(("hook", sim.now, t1))

        sim.add_interval_hook(Hook())
        sim.schedule(2.0, lambda: observations.append(("event", sim.now)))
        sim.run_for(5.0)
        assert observations == [("hook", 0.0, 2.0), ("event", 2.0), ("hook", 2.0, 5.0)]

    def test_remove_interval_hook(self):
        sim = Simulator()
        calls = []

        class Hook:
            def advance_to(self, t1):
                calls.append(t1)

        hook = Hook()
        sim.add_interval_hook(hook)
        sim.run_for(1.0)
        sim.remove_interval_hook(hook)
        sim.run_for(1.0)
        assert calls == [1.0]


class TestStabilizationTracker:
    def _signals(self):
        rng = np.random.default_rng(4)
        flat = 400.0 + np.cumsum(rng.normal(0.0, 0.2, 120))
        noisy = 400.0 + rng.normal(0.0, 30.0, 120)
        settling = np.concatenate([noisy[:40], flat[:60]])
        return [flat, noisy, settling, np.array([0.0, 0.0, 1.0, 1.001, 1.002])]

    def test_matches_is_stable_at_every_prefix(self):
        rule = StabilizationRule(n_readings=8, rel_tolerance=0.01)
        for signal in self._signals():
            tracker = StabilizationTracker(rule)
            for i, w in enumerate(signal):
                tracker.observe(float(w))
                assert tracker.stable == is_stable(signal[: i + 1], rule), i

    def test_block_updates_match_scalar(self):
        rule = StabilizationRule(n_readings=6, rel_tolerance=0.02)
        for signal in self._signals():
            scalar = StabilizationTracker(rule)
            block = StabilizationTracker(rule)
            for w in signal:
                scalar.observe(float(w))
            for start in range(0, len(signal), 7):
                block.observe_block(signal[start:start + 7])
            assert scalar.stable == block.stable
            assert scalar.streak == block.streak
            assert scalar.count == block.count

    def test_bootstrap_from_signal(self):
        rule = StabilizationRule(n_readings=10, rel_tolerance=0.01)
        for signal in self._signals():
            tracker = StabilizationTracker.from_signal(rule, signal)
            assert tracker.stable == is_stable(signal, rule)

    def test_deficit_is_a_sound_lower_bound(self):
        """Feeding fewer than ``deficit`` readings can never reach stable."""
        rule = StabilizationRule(n_readings=8, rel_tolerance=0.01)
        rng = np.random.default_rng(9)
        for signal in self._signals():
            tracker = StabilizationTracker.from_signal(rule, signal)
            deficit = tracker.deficit
            assert (deficit == 0) == tracker.stable
            if deficit > 1:
                # even perfectly flat future readings cannot satisfy the
                # rule before `deficit` arrive
                probe = StabilizationTracker.from_signal(rule, signal)
                last = signal[-1] if len(signal) else 100.0
                for _ in range(deficit - 1):
                    probe.observe(float(last))
                    assert not probe.stable


class TestLookAheadEquivalence:
    def test_skipping_matches_naive_check_loop(self):
        """The look-ahead elides only provably-false checks."""
        scenario = ARCHETYPES[0]
        fast = _runner("batched", 3)
        result_skip = fast.run_once(scenario, 0)

        naive = _runner("batched", 3)

        def naive_wait(bed, budget_s):
            spent = 0.0
            check = naive.settings.check_interval_s
            while spent < budget_s:
                if bed.source_meter.stabilised(naive.stabilization) and (
                    bed.target_meter.stabilised(naive.stabilization)
                ):
                    return
                bed.sim.run_for(check)
                spent += check

        naive._run_until_stable = naive_wait
        result_naive = naive.run_once(scenario, 0)
        assert np.array_equal(
            result_skip.source_trace.watts, result_naive.source_trace.watts
        )
        assert np.array_equal(
            result_skip.source_trace.times, result_naive.source_trace.times
        )
        assert result_skip.timeline.me == result_naive.timeline.me


class TestDirtyLogCounters:
    def test_counter_matches_explicit_bitmap_reference(self):
        """The counter log replays the bitmap implementation draw-for-draw."""
        mem = VmMemory(256)
        mem.set_dirty_process(8000.0, 0.5)
        mem.enable_logging()
        rng = np.random.default_rng(12)

        ref_rng = np.random.default_rng(12)
        bitmap = np.zeros(mem.n_pages, dtype=bool)

        def ref_advance(dt):
            w = mem.working_pages
            writes = mem.write_rate_pages_s * dt
            p = 1.0 - math.exp(writes * math.log1p(-1.0 / w))
            view = bitmap[:w]
            clean_idx = np.flatnonzero(~view)
            if clean_idx.size == 0:
                return 0
            n_new = int(ref_rng.binomial(clean_idx.size, min(max(p, 0.0), 1.0)))
            if n_new == 0:
                return 0
            chosen = ref_rng.choice(clean_idx, size=n_new, replace=False)
            view[chosen] = True
            return n_new

        for dt in (0.5, 1.0, 0.25, 2.0, 1.5):
            assert mem.advance(dt, rng) == ref_advance(dt)
            assert mem.dirty_count() == int(bitmap.sum())
        cleared = mem.clear_dirty()
        assert cleared == int(bitmap.sum())
        bitmap[:] = False
        assert mem.advance(1.0, rng) == ref_advance(1.0)
        # identical stream position afterwards
        assert float(rng.random()) == float(ref_rng.random())

    def test_not_logging_counts_nothing(self):
        mem = VmMemory(64)
        mem.set_dirty_process(1000.0, 0.5)
        assert mem.advance(1.0, np.random.default_rng(0)) == 0
        assert mem.dirty_count() == 0
        assert mem.clear_dirty() == 0

    def test_mid_log_working_set_resize_fails_loudly(self):
        """The counter log cannot re-attribute dirty pages to a resized
        working set; such a resize must be an error, not a silent
        divergence from the bitmap semantics."""
        from repro.errors import ConfigurationError

        mem = VmMemory(64)
        mem.set_dirty_process(20000.0, 0.5)
        mem.enable_logging()
        assert mem.advance(1.0, np.random.default_rng(0)) > 0
        with pytest.raises(ConfigurationError):
            mem.set_dirty_process(20000.0, 0.25)
        # same-size re-sync (suspend/resume) stays fine
        mem.set_dirty_process(0.0, 0.5)
        mem.clear_dirty()
        mem.set_dirty_process(20000.0, 0.25)  # resizing a clean log is fine


class TestTraceBulkPaths:
    def test_extend_matches_append_loop(self):
        from repro.telemetry.traces import PowerTrace

        rng = np.random.default_rng(1)
        times = np.cumsum(rng.random(300) + 0.01)
        watts = rng.normal(400.0, 20.0, 300)
        one = PowerTrace("a")
        for t, w in zip(times.tolist(), watts.tolist()):
            one.append(t, w)
        other = PowerTrace("b")
        other.extend(times[:100], watts[:100])
        other.extend(times[100:], watts[100:])
        assert np.array_equal(one.times, other.times)
        assert np.array_equal(one.watts, other.watts)

    def test_extend_rejects_non_monotonic_block(self):
        from repro.telemetry.traces import PowerTrace

        trace = PowerTrace()
        with pytest.raises(TraceError):
            trace.extend([1.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        trace.extend([1.0, 2.0], [1.0, 2.0])
        with pytest.raises(TraceError):
            trace.extend([2.0, 3.0], [1.0, 2.0])  # first element not after tail
        assert len(trace) == 2  # failed extend appended nothing

    def test_series_extend_broadcasts_scalars(self):
        from repro.telemetry.traces import SeriesTrace

        trace = SeriesTrace(("a", "b"))
        trace.extend([1.0, 2.0, 3.0], a=[1.0, 2.0, 3.0], b=7.5)
        assert trace.column("b").tolist() == [7.5, 7.5, 7.5]

    def test_views_are_read_only_and_stable(self):
        from repro.telemetry.traces import PowerTrace

        trace = PowerTrace()
        trace.append(1.0, 10.0)
        view = trace.watts
        with pytest.raises(ValueError):
            view[0] = 99.0
        for i in range(200):  # force several growth reallocations
            trace.append(2.0 + i, 10.0)
        assert view.tolist() == [10.0]  # old snapshot unchanged

    def test_pickle_round_trip(self):
        import pickle

        from repro.telemetry.traces import PowerTrace, SeriesTrace

        power = PowerTrace("p")
        power.extend([0.5, 1.0], [100.0, 101.0])
        series = SeriesTrace(("x", "y"), label="s")
        series.append(1.0, x=1.0, y=2.0)
        power2 = pickle.loads(pickle.dumps(power))
        series2 = pickle.loads(pickle.dumps(series))
        assert np.array_equal(power2.watts, power.watts)
        assert np.array_equal(series2.column("y"), series.column("y"))
        power2.append(2.0, 5.0)  # still appendable after unpickling
        series2.append(2.0, x=3.0, y=4.0)
        assert len(power2) == 3 and len(series2) == 2
