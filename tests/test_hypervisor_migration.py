"""Migration engines: phase structure, pre-copy termination, state moves."""

import numpy as np
import pytest

from repro.cluster import NetworkPath, PhysicalHost, machine_pair, machine_spec, switch_spec
from repro.errors import IncompatibleHostsError, MigrationError
from repro.hypervisor import (
    MigrationConfig,
    MigrationJob,
    MigrationKind,
    Toolstack,
    VirtualMachine,
    XenHypervisor,
)
from repro.simulator import Simulator
from repro.workloads import MatrixMultWorkload, PageDirtierWorkload


def build_testbed(family="m"):
    sim = Simulator()
    src_spec, tgt_spec = machine_pair(family)
    src = PhysicalHost(src_spec, noise_seed=1)
    tgt = PhysicalHost(tgt_spec, noise_seed=2)
    path = NetworkPath(src, tgt, switch_spec(family), jitter_seed=3)
    xen_s, xen_t = XenHypervisor(src), XenHypervisor(tgt)
    ts = Toolstack(
        sim, {src_spec.name: xen_s, tgt_spec.name: xen_t}, np.random.default_rng(9)
    )
    return sim, src, tgt, path, xen_s, xen_t, ts


def run_migration(live=True, workload=None, ram=1024, config=None, load_vms=0):
    sim, src, tgt, path, xen_s, xen_t, ts = build_testbed()
    workload = workload or MatrixMultWorkload(vm_ram_mb=ram)
    vcpus = 1 if isinstance(workload, PageDirtierWorkload) else 4
    vm = VirtualMachine("mig", vcpus, ram, workload)
    ts.create("m01", vm)
    for i in range(load_vms):
        ts.create("m01", VirtualMachine(f"l{i}", 4, 256, MatrixMultWorkload(vm_ram_mb=256)))
    job = ts.migrate("mig", "m01", "m02", path, live=live, config=config)
    sim.run_for(600)
    assert job.finished
    return job, vm, src, tgt


class TestPhaseStructure:
    def test_live_phases_ordered(self):
        job, *_ = run_migration(live=True)
        tl = job.timeline
        tl.validate()
        assert tl.ms < tl.ts < tl.te < tl.me

    def test_nonlive_phases_ordered(self):
        job, *_ = run_migration(live=False)
        job.timeline.validate()

    def test_nonlive_single_round(self):
        job, *_ = run_migration(live=False)
        assert job.timeline.n_rounds == 1
        assert job.timeline.rounds[0].stop_and_copy

    def test_live_multiple_rounds(self):
        job, *_ = run_migration(live=True)
        assert job.timeline.n_rounds >= 2
        assert job.timeline.rounds[-1].stop_and_copy

    def test_nonlive_moves_exactly_memory(self):
        job, vm, *_ = run_migration(live=False, ram=1024)
        assert job.timeline.bytes_total == vm.memory.image_bytes

    def test_live_moves_at_least_memory(self):
        job, vm, *_ = run_migration(live=True, ram=1024)
        assert job.timeline.bytes_total >= vm.memory.image_bytes


class TestVmMovement:
    def test_vm_ends_running_on_target(self):
        job, vm, src, tgt = run_migration(live=True)
        assert vm.host is tgt
        assert vm.running

    def test_source_freed(self):
        job, vm, src, tgt = run_migration(live=True)
        assert src.cpu.demand("vm:mig") == 0.0
        assert all(not key.startswith("migr:") for key in src.cpu.keys())

    def test_target_carries_vm_demand(self):
        job, vm, src, tgt = run_migration(live=True)
        assert tgt.cpu.demand("vm:mig") > 0.0

    def test_downtime_recorded(self):
        job, *_ = run_migration(live=True)
        assert job.timeline.downtime > 0.0

    def test_nonlive_downtime_spans_migration(self):
        job, *_ = run_migration(live=False)
        tl = job.timeline
        # Suspended at ms, resumed during activation: downtime ~ everything.
        assert tl.downtime > 0.9 * tl.transfer_duration


class TestPrecopyTermination:
    def test_max_iterations_respected(self):
        cfg = MigrationConfig(max_iterations=5)
        job, *_ = run_migration(
            live=True, ram=1024,
            workload=PageDirtierWorkload(90.0, vm_ram_mb=1024, allocation_mb=1000),
            config=cfg,
        )
        # rounds = pre-copy rounds (<= max) + the stop-and-copy round.
        assert job.timeline.n_rounds <= cfg.max_iterations + 1

    def test_transfer_cap_respected(self):
        cfg = MigrationConfig(max_transfer_factor=2.0)
        job, vm, *_ = run_migration(
            live=True, ram=1024,
            workload=PageDirtierWorkload(95.0, vm_ram_mb=1024, allocation_mb=1000),
            config=cfg,
        )
        cap = cfg.max_transfer_factor * vm.memory.image_bytes
        # Stop fires when the *next* round would exceed the cap.
        assert job.timeline.bytes_total <= cap + vm.memory.image_bytes

    def test_low_dirty_converges_quickly(self):
        job, *_ = run_migration(
            live=True, ram=1024,
            workload=PageDirtierWorkload(1.0, vm_ram_mb=1024, allocation_mb=1000,
                                         write_rate_pages_s=30.0),
        )
        assert job.timeline.n_rounds <= 6

    def test_high_dirty_degenerates_to_stop_and_copy(self):
        # Section VI-D: high DR transforms live into non-live behaviour.
        job, *_ = run_migration(
            live=True, ram=2048,
            workload=PageDirtierWorkload(95.0, vm_ram_mb=2048, allocation_mb=2000),
        )
        final = job.timeline.rounds[-1]
        assert final.stop_and_copy
        assert job.timeline.downtime > 2.0


class TestLoadEffects:
    def test_saturated_source_lengthens_transfer(self):
        fast, *_ = run_migration(live=False, ram=2048, load_vms=0)
        slow, *_ = run_migration(live=False, ram=2048, load_vms=8)
        assert slow.timeline.transfer_duration > fast.timeline.transfer_duration * 1.2

    def test_live_longer_than_nonlive(self):
        nonlive, *_ = run_migration(live=False, ram=2048)
        live, *_ = run_migration(live=True, ram=2048)
        assert live.timeline.transfer_duration > nonlive.timeline.transfer_duration


class TestGuards:
    def test_cross_family_rejected(self):
        sim = Simulator()
        src = PhysicalHost(machine_spec("m01"), noise_seed=1)
        tgt = PhysicalHost(machine_spec("o1"), noise_seed=2)
        xen_s, xen_t = XenHypervisor(src), XenHypervisor(tgt)
        vm = VirtualMachine("x", 1, 512, MatrixMultWorkload(vm_ram_mb=512))
        xen_s.create_vm(vm)
        xen_s.start_vm("x")
        path = NetworkPath(src, tgt, switch_spec("m"))
        with pytest.raises(IncompatibleHostsError):
            MigrationJob(
                sim, MigrationKind.LIVE, vm, xen_s, xen_t, path,
                np.random.default_rng(0),
            )

    def test_vm_must_be_running(self):
        sim, src, tgt, path, xen_s, xen_t, ts = build_testbed()
        vm = VirtualMachine("mig", 1, 512, MatrixMultWorkload(vm_ram_mb=512))
        ts.create("m01", vm, start=False)
        with pytest.raises(MigrationError):
            ts.migrate("mig", "m01", "m02", path, live=True)

    def test_double_start_rejected(self):
        sim, src, tgt, path, xen_s, xen_t, ts = build_testbed()
        vm = VirtualMachine("mig", 1, 512, MatrixMultWorkload(vm_ram_mb=512))
        ts.create("m01", vm)
        job = ts.migrate("mig", "m01", "m02", path, live=True)
        with pytest.raises(MigrationError):
            job.start()

    def test_completion_callback_fires(self):
        sim, src, tgt, path, xen_s, xen_t, ts = build_testbed()
        vm = VirtualMachine("mig", 1, 512, MatrixMultWorkload(vm_ram_mb=512))
        ts.create("m01", vm)
        job = ts.migrate("mig", "m01", "m02", path, live=True)
        done = []
        job.on_complete.append(done.append)
        sim.run_for(600)
        assert done == [job]
