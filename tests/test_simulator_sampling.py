"""Periodic samplers: cadence, drift-free grids, start/stop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulator import PeriodicSampler, Simulator


class TestPeriodicSampler:
    def test_samples_on_grid(self):
        sim, ticks = Simulator(), []
        sampler = PeriodicSampler(sim, 0.5, ticks.append)
        sampler.start()
        sim.run(until=3.0)
        assert ticks == pytest.approx([0.5, 1.0, 1.5, 2.0, 2.5, 3.0])

    def test_no_drift_over_long_runs(self):
        sim, ticks = Simulator(), []
        sampler = PeriodicSampler(sim, 0.1, ticks.append)
        sampler.start()
        sim.run(until=100.0)
        grid = np.asarray(ticks)
        expected = np.arange(1, len(grid) + 1) * 0.1
        assert np.max(np.abs(grid - expected)) < 1e-9

    def test_phase_offset(self):
        sim, ticks = Simulator(), []
        sampler = PeriodicSampler(sim, 1.0, ticks.append, phase=0.25)
        sampler.start()
        sim.run(until=3.0)
        assert ticks == pytest.approx([0.25, 1.25, 2.25])

    def test_stop_cancels(self):
        sim, ticks = Simulator(), []
        sampler = PeriodicSampler(sim, 1.0, ticks.append)
        sampler.start()
        sim.run(until=2.0)
        sampler.stop()
        sim.run(until=10.0)
        assert len(ticks) == 2
        assert not sampler.running

    def test_restart_after_stop(self):
        sim, ticks = Simulator(), []
        sampler = PeriodicSampler(sim, 1.0, ticks.append)
        sampler.start()
        sim.run(until=2.0)
        sampler.stop()
        sim.run(until=5.0)
        sampler.start()
        sim.run(until=7.0)
        assert ticks == pytest.approx([1.0, 2.0, 6.0, 7.0])

    def test_double_start_is_idempotent(self):
        sim, ticks = Simulator(), []
        sampler = PeriodicSampler(sim, 1.0, ticks.append)
        sampler.start()
        sampler.start()
        sim.run(until=2.0)
        assert len(ticks) == 2

    def test_samples_taken_counter(self):
        sim = Simulator()
        sampler = PeriodicSampler(sim, 0.5, lambda t: None)
        sampler.start()
        sim.run(until=5.0)
        assert sampler.samples_taken == 10

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            PeriodicSampler(Simulator(), 0.0, lambda t: None)

    def test_rejects_negative_phase(self):
        with pytest.raises(ConfigurationError):
            PeriodicSampler(Simulator(), 1.0, lambda t: None, phase=-0.1)
