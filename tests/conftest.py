"""Shared fixtures.

Expensive artifacts (instrumented runs, small campaigns) are produced
once per session and shared across test modules; they are deterministic
(seeded) so assertions on them are stable.
"""

from __future__ import annotations

import pytest

from repro.experiments.design import MigrationScenario
from repro.experiments.runner import ScenarioRunner


@pytest.fixture(scope="session")
def runner() -> ScenarioRunner:
    """One deterministic runner shared by integration tests."""
    return ScenarioRunner(seed=1234)


@pytest.fixture(scope="session")
def live_cpu_run(runner):
    """A live CPULOAD-SOURCE run with 5 load VMs."""
    scenario = MigrationScenario(
        "CPULOAD-SOURCE", "fixture/live/5vm", live=True, load_vm_count=5
    )
    return runner.run_once(scenario)


@pytest.fixture(scope="session")
def nonlive_cpu_run(runner):
    """A non-live CPULOAD-SOURCE run on otherwise idle hosts."""
    scenario = MigrationScenario(
        "CPULOAD-SOURCE", "fixture/nonlive/0vm", live=False, load_vm_count=0
    )
    return runner.run_once(scenario)


@pytest.fixture(scope="session")
def live_mem_run(runner):
    """A live MEMLOAD-VM run at a high dirtying ratio."""
    scenario = MigrationScenario(
        "MEMLOAD-VM", "fixture/live/dr75", live=True, load_vm_count=0,
        dirty_percent=75.0,
    )
    return runner.run_once(scenario)


@pytest.fixture(scope="session")
def mini_campaign(runner):
    """A small mixed campaign: 6 scenarios x 3 runs (both kinds, DR sweep)."""
    scenarios = [
        MigrationScenario("CPULOAD-SOURCE", "mini/nl/0vm", live=False, load_vm_count=0),
        MigrationScenario("CPULOAD-SOURCE", "mini/nl/3vm", live=False, load_vm_count=3),
        MigrationScenario("CPULOAD-SOURCE", "mini/nl/5vm", live=False, load_vm_count=5),
        MigrationScenario("CPULOAD-SOURCE", "mini/lv/0vm", live=True, load_vm_count=0),
        MigrationScenario("CPULOAD-SOURCE", "mini/lv/5vm", live=True, load_vm_count=5),
        MigrationScenario("MEMLOAD-VM", "mini/lv/dr15", live=True, dirty_percent=15.0),
        MigrationScenario("MEMLOAD-VM", "mini/lv/dr75", live=True, dirty_percent=75.0),
    ]
    return runner.run_campaign(scenarios, min_runs=3, max_runs=3)


@pytest.fixture(scope="session")
def mini_samples(mini_campaign):
    """Model samples (both roles) of the mini campaign."""
    return mini_campaign.samples()
