"""Campaign observability (`campaign-status`) and CLI argument validation."""

import json
import os
import time

import pytest

from repro.experiments.design import MigrationScenario
from repro.experiments.executor import RunCache, RunTask
from repro.experiments.http_backend import HttpBackend
from repro.experiments.queue_backend import _Spool, spool_status
from repro.experiments.runner import RunnerSettings
from repro.cli import main
from repro.telemetry.stabilization import StabilizationRule

SEED = 20150901
_SCENARIO = MigrationScenario("CPULOAD-SOURCE", "status/lv/1vm", live=True, load_vm_count=1)


def _seeded_spool(tmp_path):
    """A spool dir mid-campaign: 2 open tasks, 1 fresh + 1 stale claim,
    1 failure record, 1 live + 1 stale worker, no stop sentinel."""
    spool = _Spool(tmp_path / "spool")
    long_ago = time.time() - 3600
    for name in ("aaaa-0000", "aaaa-0001"):
        (spool.tasks / f"{name}.json").write_text("{}", encoding="utf-8")
    (spool.claims / "bbbb-0000.json").write_text("{}", encoding="utf-8")
    stale_claim = spool.claims / "bbbb-0001.json"
    stale_claim.write_text("{}", encoding="utf-8")
    os.utime(stale_claim, (long_ago, long_ago))
    (spool.failed / "cccc-0000.json").write_text(
        json.dumps({"task_id": "cccc-0000", "worker": "w9", "error": "boom"}),
        encoding="utf-8",
    )
    (spool.workers / "w-live.json").write_text("{}", encoding="utf-8")
    stale_worker = spool.workers / "w-stale.json"
    stale_worker.write_text("{}", encoding="utf-8")
    os.utime(stale_worker, (long_ago, long_ago))
    return spool


class TestSpoolStatus:
    def test_counts_against_seeded_spool(self, tmp_path):
        _seeded_spool(tmp_path)
        status = spool_status(tmp_path / "spool", stale_timeout=60.0, worker_fresh_s=15.0)
        assert status["backend"] == "queue"
        assert status["tasks_open"] == 2
        assert status["tasks_leased"] == 2
        assert status["leases_stale"] == 1
        assert status["tasks_failed"] == 1
        assert status["failures"][0] == {
            "task_id": "cccc-0000", "worker": "w9", "error": "boom", "kind": "?",
        }
        assert status["tasks_quarantined"] == 0
        assert status["workers_live"] == 1
        assert len(status["workers"]) == 2
        assert status["stopping"] is False

    def test_stop_sentinel_reported(self, tmp_path):
        spool = _Spool(tmp_path / "spool")
        spool.stop.touch()
        assert spool_status(tmp_path / "spool")["stopping"] is True

    def test_unreadable_failure_record_still_counted(self, tmp_path):
        spool = _Spool(tmp_path / "spool")
        (spool.failed / "dddd-0000.json").write_text("{", encoding="utf-8")
        status = spool_status(tmp_path / "spool")
        assert status["tasks_failed"] == 1
        assert status["failures"][0]["error"] == "unreadable failure record"

    def test_missing_spool_dir_rejected_not_created(self, tmp_path):
        """A typo'd --spool-dir must error, not report a healthy idle
        campaign — and the scan must not create the layout."""
        from repro.errors import ExperimentError

        missing = tmp_path / "no" / "such" / "spool"
        with pytest.raises(ExperimentError, match="does not exist"):
            spool_status(missing)
        assert not missing.exists()

    def test_scan_is_read_only(self, tmp_path):
        """spool_status on a bare existing dir must not create the layout."""
        bare = tmp_path / "bare"
        bare.mkdir()
        status = spool_status(bare)
        assert status["tasks_open"] == 0
        assert list(bare.iterdir()) == []


class TestCampaignStatusCli:
    def test_spool_mode_output_and_exit_code(self, tmp_path, capsys):
        _seeded_spool(tmp_path)
        code = main(["campaign-status", "--spool-dir", str(tmp_path / "spool")])
        out = capsys.readouterr().out
        assert code == 1  # failures present
        assert "campaign status [queue]" in out
        assert "2 open, 2 claimed (1 stale), 1 failed" in out
        assert "1 live / 2 seen" in out
        assert "FAILED cccc-0000 on w9: boom" in out

    def test_spool_mode_clean_exit_zero(self, tmp_path, capsys):
        _Spool(tmp_path / "spool")  # empty but existing layout
        code = main(["campaign-status", "--spool-dir", str(tmp_path / "spool")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 open, 0 claimed (0 stale), 0 failed" in out

    def test_http_mode_against_live_service(self, tmp_path, capsys):
        backend = HttpBackend("127.0.0.1:0", RunCache(tmp_path / "cache"))
        try:
            settings = RunnerSettings()
            rule = StabilizationRule()
            key = RunCache.scenario_key(SEED, _SCENARIO, settings, None, rule)
            backend.submit(RunTask(
                seed=SEED, settings=settings, migration_config=None,
                stabilization=rule, scenario=_SCENARIO, run_index=0, key=key,
            ))
            code = main(["campaign-status", "--connect", backend.url])
        finally:
            backend.shutdown()
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign status [http]" in out
        assert "1 open, 0 claimed (0 stale), 0 completed, 0 failed" in out

    def test_http_mode_unreachable_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="campaign status"):
            main(["campaign-status", "--connect", "http://127.0.0.1:1"])


class TestCliValidation:
    """--jobs / --stale-timeout (and friends) reject non-positive values
    with a clear parse-time error instead of downstream misbehaviour."""

    @pytest.mark.parametrize("value", ["0", "-3", "two"])
    def test_jobs_rejected(self, value, capsys):
        with pytest.raises(SystemExit) as info:
            main(["--jobs", value, "campaign", "--runs", "2"])
        assert info.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err and ("must be >= 1" in err or "expected an integer" in err)

    @pytest.mark.parametrize("value", ["0", "-1.5", "nan", "soon"])
    def test_stale_timeout_rejected(self, value, capsys):
        with pytest.raises(SystemExit) as info:
            main(["campaign", "--stale-timeout", value])
        assert info.value.code == 2
        err = capsys.readouterr().err
        assert "--stale-timeout" in err
        assert "must be > 0" in err or "expected a number" in err

    @pytest.mark.parametrize(
        "argv",
        [
            ["campaign-worker", "--connect", "http://x:1", "--poll-interval", "0"],
            ["campaign-worker", "--connect", "http://x:1", "--heartbeat", "-2"],
            ["campaign-worker", "--connect", "http://x:1", "--max-tasks", "0"],
            ["campaign-status", "--spool-dir", "s", "--stale-timeout", "0"],
        ],
    )
    def test_other_knobs_rejected(self, argv):
        with pytest.raises(SystemExit) as info:
            main(argv)
        assert info.value.code == 2

    def test_worker_requires_exactly_one_mode(self):
        with pytest.raises(SystemExit) as info:
            main(["campaign-worker"])
        assert info.value.code == 2
        with pytest.raises(SystemExit) as info:
            main(["campaign-worker", "--spool-dir", "s", "--connect", "http://x:1"])
        assert info.value.code == 2

    def test_campaign_serve_and_spool_mutually_exclusive(self):
        with pytest.raises(SystemExit) as info:
            main(["campaign", "--spool-dir", "s", "--serve", "127.0.0.1:0"])
        assert info.value.code == 2


class TestFollowInterrupt:
    """``campaign-status --follow`` must exit cleanly on ^C wherever the
    interrupt lands — during the fetch, the render, or the sleep — with
    the exit code pinned to the *last fully rendered* status."""

    def test_interrupt_during_sleep_exits_with_last_status(
        self, tmp_path, monkeypatch, capsys
    ):
        _Spool(tmp_path / "spool")  # clean spool: no failures
        monkeypatch.setattr(time, "sleep", _raise_keyboard_interrupt)
        code = main([
            "campaign-status", "--spool-dir", str(tmp_path / "spool"), "--follow",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign status [queue]" in out  # first render completed

    def test_interrupt_during_fetch_keeps_failure_exit_code(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.cli as cli

        _seeded_spool(tmp_path)  # one failure record -> exit 1
        real_fetch = cli._fetch_campaign_status
        calls = []

        def fetch_once_then_interrupt(args):
            if calls:
                raise KeyboardInterrupt
            calls.append(1)
            return real_fetch(args)

        monkeypatch.setattr(cli, "_fetch_campaign_status", fetch_once_then_interrupt)
        monkeypatch.setattr(time, "sleep", lambda _s: None)
        code = main([
            "campaign-status", "--spool-dir", str(tmp_path / "spool"),
            "--follow", "--interval", "0.01",
        ])
        out = capsys.readouterr().out
        assert code == 1  # pinned to the rendered (failed) status
        assert "FAILED cccc-0000 on w9: boom" in out

    def test_interrupt_before_first_fetch_exits_zero(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.cli as cli

        _seeded_spool(tmp_path)
        monkeypatch.setattr(
            cli, "_fetch_campaign_status", _raise_keyboard_interrupt
        )
        code = main([
            "campaign-status", "--spool-dir", str(tmp_path / "spool"), "--follow",
        ])
        assert code == 0  # nothing rendered, nothing to report as failed
        assert "FAILED" not in capsys.readouterr().out


def _raise_keyboard_interrupt(*_args, **_kwargs):
    raise KeyboardInterrupt
