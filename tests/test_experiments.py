"""Experiment harness: catalog, design, runner protocol, results."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments import (
    DIRTY_PERCENTS,
    INSTANCE_CATALOG,
    LOAD_VM_COUNTS,
    MigrationScenario,
    ScenarioRunner,
    all_scenarios,
    cpuload_source_scenarios,
    make_instance_vm,
    memload_vm_scenarios,
)
from repro.experiments.runner import RunnerSettings
from repro.models.features import HostRole
from repro.phases.timeline import MigrationPhase


class TestInstanceCatalog:
    def test_table_iib_rows(self):
        assert INSTANCE_CATALOG["load-cpu"].vcpus == 4
        assert INSTANCE_CATALOG["load-cpu"].ram_mb == 512
        assert INSTANCE_CATALOG["migrating-cpu"].ram_mb == 4096
        assert INSTANCE_CATALOG["migrating-mem"].vcpus == 1
        assert INSTANCE_CATALOG["dom-0"].workload_name == "VMM"

    def test_make_migrating_cpu(self):
        vm = make_instance_vm("migrating-cpu", "m")
        assert vm.vcpus == 4 and vm.memory.ram_mb == 4096
        assert vm.workload.name == "matrixmult"

    def test_make_migrating_mem_needs_dirty_percent(self):
        with pytest.raises(ConfigurationError):
            make_instance_vm("migrating-mem", "m")

    def test_dirty_percent_only_for_mem(self):
        with pytest.raises(ConfigurationError):
            make_instance_vm("load-cpu", "m", dirty_percent=50.0)

    def test_unknown_instance(self):
        with pytest.raises(ConfigurationError):
            make_instance_vm("gpu-node", "m")

    def test_dom0_not_instantiable(self):
        with pytest.raises(ConfigurationError):
            make_instance_vm("dom-0", "m")


class TestDesign:
    def test_load_levels_match_figures(self):
        assert LOAD_VM_COUNTS == (0, 1, 3, 5, 7, 8)

    def test_dirty_sweep_matches_fig5(self):
        assert DIRTY_PERCENTS == (5.0, 15.0, 35.0, 55.0, 75.0, 95.0)

    def test_full_campaign_size(self):
        # CPULOAD: 2 families x 2 kinds x 6 levels; MEMLOAD: 3 x 6 live.
        assert len(all_scenarios("m")) == 42

    def test_labels_unique(self):
        labels = [s.label for s in all_scenarios("m")]
        assert len(labels) == len(set(labels))

    def test_cpuload_source_both_kinds(self):
        kinds = {s.live for s in cpuload_source_scenarios()}
        assert kinds == {True, False}

    def test_memload_live_only(self):
        assert all(s.live for s in memload_vm_scenarios())

    def test_memload_nonlive_rejected(self):
        # Section V-A2: non-live has DR = 0, so the design forbids it.
        with pytest.raises(ConfigurationError):
            MigrationScenario("X", "x", live=False, dirty_percent=50.0)

    def test_instance_selection(self):
        cpu = MigrationScenario("X", "c", live=True)
        mem = MigrationScenario("X", "m", live=True, dirty_percent=10.0)
        assert cpu.migrating_instance == "migrating-cpu"
        assert mem.migrating_instance == "migrating-mem"

    def test_bad_family_rejected(self):
        with pytest.raises(ConfigurationError):
            MigrationScenario("X", "x", live=True, family="q")


class TestRunOnce:
    def test_run_produces_complete_artifacts(self, live_cpu_run):
        run = live_cpu_run
        run.timeline.validate()
        assert len(run.source_trace) > 50
        assert len(run.target_trace) == len(run.source_trace)
        assert len(run.features) == len(run.source_trace)

    def test_run_is_deterministic(self, runner):
        scenario = MigrationScenario("CPULOAD-SOURCE", "det/0vm", live=True)
        a = runner.run_once(scenario, run_index=3)
        b = runner.run_once(scenario, run_index=3)
        assert np.array_equal(a.source_trace.watts, b.source_trace.watts)
        assert a.timeline.te == b.timeline.te

    def test_different_run_indices_differ(self, runner):
        scenario = MigrationScenario("CPULOAD-SOURCE", "det/0vm", live=True)
        a = runner.run_once(scenario, run_index=0)
        b = runner.run_once(scenario, run_index=1)
        assert not np.array_equal(a.source_trace.watts, b.source_trace.watts)

    def test_phase_energies_positive(self, live_cpu_run):
        for role in (HostRole.SOURCE, HostRole.TARGET):
            for phase in (MigrationPhase.INITIATION, MigrationPhase.TRANSFER,
                          MigrationPhase.ACTIVATION):
                assert live_cpu_run.phase_energy_j(role, phase) > 0

    def test_transfer_dominates_energy(self, live_cpu_run):
        source_total = live_cpu_run.total_energy_j(HostRole.SOURCE)
        transfer = live_cpu_run.phase_energy_j(HostRole.SOURCE, MigrationPhase.TRANSFER)
        assert transfer / source_total > 0.75

    def test_sample_roles_share_bw(self, live_cpu_run):
        src = live_cpu_run.sample_for(HostRole.SOURCE)
        tgt = live_cpu_run.sample_for(HostRole.TARGET)
        assert src.data_bytes == tgt.data_bytes

    def test_vm_features_follow_placement(self, live_cpu_run):
        src = live_cpu_run.sample_for(HostRole.SOURCE)
        tgt = live_cpu_run.sample_for(HostRole.TARGET)
        transfer = src.phase_mask(MigrationPhase.TRANSFER)
        # During transfer the VM runs on the source (live migration)...
        assert src.cpu_vm_pct[transfer].max() > 50.0
        # ... and is absent from the target.
        assert tgt.cpu_vm_pct[transfer].max() == 0.0

    def test_memload_dr_feature(self, live_mem_run):
        src = live_mem_run.sample_for(HostRole.SOURCE)
        transfer = src.phase_mask(MigrationPhase.TRANSFER)
        # DR ~ the 75 % sweep value while the VM still runs on the source.
        assert src.dr_pct[transfer].max() > 45.0


class TestVarianceProtocol:
    def test_minimum_runs_respected(self, runner):
        scenario = MigrationScenario("CPULOAD-SOURCE", "var/0vm", live=False)
        result = runner.run_scenario(scenario, min_runs=3, max_runs=6)
        assert 3 <= result.n_runs <= 6

    def test_bad_bounds_rejected(self, runner):
        scenario = MigrationScenario("CPULOAD-SOURCE", "var/x", live=False)
        with pytest.raises(ExperimentError):
            runner.run_scenario(scenario, min_runs=1, max_runs=0)

    def test_settings_validation(self):
        settings = RunnerSettings(min_runs=10)
        assert settings.variance_delta == pytest.approx(0.10)


class TestScenarioResult:
    def test_energy_stats(self, mini_campaign):
        sr = mini_campaign.scenario_results[0]
        energies = sr.total_energies_j(HostRole.SOURCE)
        assert energies.shape == (sr.n_runs,)
        assert sr.mean_energy_j(HostRole.SOURCE) == pytest.approx(energies.mean())

    def test_figure_series_alignment(self, mini_campaign):
        sr = mini_campaign.scenario_results[0]
        series = sr.figure_series(HostRole.SOURCE, pre_s=15.0)
        assert series.mark_ms == pytest.approx(15.0)
        assert series.mark_ms < series.mark_ts < series.mark_te < series.mark_me
        assert series.times.shape == series.watts.shape

    def test_campaign_samples_count(self, mini_campaign):
        samples = mini_campaign.samples()
        expected = sum(sr.n_runs for sr in mini_campaign.scenario_results) * 2
        assert len(samples) == expected

    def test_kind_filter(self, mini_campaign):
        live_only = mini_campaign.samples(live=True)
        assert all(s.live for s in live_only)

    def test_split_stratified(self, mini_campaign):
        train, test, _ = mini_campaign.train_test_split(training_fraction=0.34)
        train_labels = {r.scenario.label for r in train}
        assert train_labels == {sr.scenario.label for sr in mini_campaign.scenario_results}
        assert len(train) + len(test) == len(mini_campaign.all_runs())

    def test_lookup_by_label(self, mini_campaign):
        label = mini_campaign.scenario_results[0].scenario.label
        assert mini_campaign.result_for(label).scenario.label == label
        with pytest.raises(ExperimentError):
            mini_campaign.result_for("ghost")
