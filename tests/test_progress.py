"""The telemetry control plane, campaign half: live progress + janitor.

Covers the :class:`~repro.experiments.results.ProgressEvent` pipeline —
wire format round-trips, NDJSON sidecar tolerance, emission through all
three backends (in-memory, spool sidecars, HTTP ``/progress``), the
``campaign-status`` surfaces (including ``--follow``), the spool janitor
(``spool_gc`` / ``campaign --gc-spool``) and the ``bench --history``
perf-trajectory report.
"""

import json
import os
import threading
import time

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import CampaignExecutor
from repro.experiments.http_backend import fetch_status, run_http_worker
from repro.experiments.queue_backend import run_worker, spool_gc, spool_status
from repro.experiments.results import ProgressEvent
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.io import (
    PersistenceError,
    append_progress_event,
    load_progress_events,
    progress_event_from_dict,
    progress_event_to_dict,
)

FAST = dict(
    min_warmup_s=2.0, max_warmup_s=6.0, min_post_s=2.0, max_post_s=6.0,
    check_interval_s=1.0,
)

SCENARIO = MigrationScenario(
    "CPULOAD-SOURCE", "progress/nl/0vm", live=False, load_vm_count=0
)


def _event(**overrides) -> ProgressEvent:
    base = dict(
        task_id="abcd1234abcd1234-0002",
        scenario="progress/nl/0vm",
        run_index=2,
        worker="host-123",
        runs_completed=3,
        samples=1200,
        wall_s=0.25,
        samples_per_s=4800.0,
        at=1_700_000_000.0,
    )
    base.update(overrides)
    return ProgressEvent(**base)


def _runner(seed: int = 1) -> ScenarioRunner:
    return ScenarioRunner(seed=seed, settings=RunnerSettings(**FAST))


class TestProgressIo:
    def test_dict_round_trip(self):
        event = _event()
        assert progress_event_from_dict(progress_event_to_dict(event)) == event

    def test_schema_enforced(self):
        record = progress_event_to_dict(_event())
        record["schema"] = "wavm3-progress/99"
        with pytest.raises(PersistenceError):
            progress_event_from_dict(record)
        with pytest.raises(PersistenceError):
            progress_event_from_dict({"schema": "wavm3-progress/1"})  # fields missing

    def test_ndjson_round_trip(self, tmp_path):
        path = tmp_path / "w.ndjson"
        events = [_event(run_index=i, at=float(i)) for i in range(3)]
        for event in events:
            append_progress_event(event, path)
        assert load_progress_events(path) == events

    def test_ndjson_tolerates_torn_lines(self, tmp_path):
        path = tmp_path / "w.ndjson"
        append_progress_event(_event(run_index=0), path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": "wavm3-progress/1", "task_id": "torn')
        loaded = load_progress_events(path)
        assert len(loaded) == 1 and loaded[0].run_index == 0

    def test_ndjson_tolerates_tail_torn_mid_multibyte(self, tmp_path):
        """Regression: a reader racing a live appender can see the final
        line cut in the *middle of a multi-byte UTF-8 sequence*; the
        resulting ``UnicodeDecodeError`` must stay confined to that line
        instead of taking the whole status view down."""
        path = tmp_path / "w.ndjson"
        append_progress_event(_event(run_index=0), path)
        torn = json.dumps(
            {"schema": "wavm3-progress/1", "worker": "café"}, ensure_ascii=False
        ).encode("utf-8")
        with path.open("ab") as handle:
            handle.write(torn[: torn.index(b"\xc3") + 1])  # half of the 'é'
        loaded = load_progress_events(path)
        assert len(loaded) == 1 and loaded[0].run_index == 0

    def test_missing_file_reads_empty(self, tmp_path):
        assert load_progress_events(tmp_path / "absent.ndjson") == []


class TestExecutorProgress:
    def test_serial_campaign_reports_progress(self):
        executor = CampaignExecutor(_runner())
        executor.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        events = executor.progress_events
        assert len(events) == 2
        assert sorted(e.run_index for e in events) == [0, 1]
        assert all(e.samples > 0 and e.samples_per_s > 0 for e in events)
        assert all(e.scenario == SCENARIO.label for e in events)
        assert events[-1].runs_completed == 2

    def test_warm_cache_campaign_reports_nothing(self, tmp_path):
        executor = CampaignExecutor(_runner(), cache_dir=tmp_path / "cache")
        executor.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        assert len(executor.progress_events) == 2
        warm = CampaignExecutor(_runner(), cache_dir=tmp_path / "cache")
        warm.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        assert warm.progress_events == []  # cache hits are not worker runs

    def test_progress_reset_between_campaigns(self):
        executor = CampaignExecutor(_runner())
        executor.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        executor.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        assert len(executor.progress_events) == 2


class TestQueueProgress:
    def _run_queue_campaign(self, tmp_path, worker_id="pw1"):
        spool, cache = tmp_path / "spool", tmp_path / "cache"
        executor = CampaignExecutor(
            _runner(), backend="queue", cache_dir=cache, spool_dir=spool,
            queue_options={"poll_interval": 0.05, "stop_workers_on_shutdown": True},
        )
        worker = threading.Thread(
            target=run_worker, args=(spool, cache),
            kwargs={"poll_interval": 0.05, "worker_id": worker_id, "idle_exit_s": 60.0},
        )
        worker.start()
        executor.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        worker.join()
        return executor, spool

    def test_worker_sidecar_feeds_executor_and_status(self, tmp_path):
        executor, spool = self._run_queue_campaign(tmp_path)
        events = executor.progress_events
        assert len(events) == 2
        assert {e.worker for e in events} == {"pw1"}
        assert [e.runs_completed for e in events] == [1, 2]
        status = spool_status(spool)
        assert status["progress_events"] == 2
        [entry] = status["progress"]
        assert entry["worker"] == "pw1"
        assert entry["runs_completed"] == 2
        assert entry["samples_per_s"] > 0
        assert entry["last_task"] == f"{SCENARIO.label}#1"

    def test_drain_ignores_other_campaigns_sidecar_lines(self, tmp_path):
        executor, spool = self._run_queue_campaign(tmp_path)
        # A stale line from some other campaign sharing the spool.
        append_progress_event(
            _event(task_id="ffffffffffffffff-0000", worker="pw1"),
            spool / "progress" / "pw1.ndjson",
        )
        assert len(executor._backend.drain_progress()) == 2

    def test_drain_dedups_reexecuted_tasks(self, tmp_path):
        """A stale-requeued task announced by two workers counts once."""
        executor, spool = self._run_queue_campaign(tmp_path)
        real_task_id = sorted(executor._backend._session_task_ids)[0]
        append_progress_event(
            _event(task_id=real_task_id, worker="pw2", at=time.time() + 1.0),
            spool / "progress" / "pw2.ndjson",
        )
        events = executor._backend.drain_progress()
        assert len(events) == 2  # still one event per run
        # the duplicate kept is the latest announcement
        assert any(e.task_id == real_task_id and e.worker == "pw2" for e in events)


class TestHttpProgress:
    def test_worker_posts_progress_and_status_shows_it(self, tmp_path):
        executor = CampaignExecutor(
            _runner(), backend="http", cache_dir=tmp_path / "cache",
            serve="127.0.0.1:0", http_options={"stop_workers_on_shutdown": True},
        )
        url = executor.serve_url
        live_progress = []

        def watch():
            while True:
                try:
                    status = fetch_status(url)
                except ExperimentError:
                    return
                if status.get("progress") and not live_progress:
                    live_progress.append(status)
                if status.get("stopping"):
                    return
                time.sleep(0.05)

        watcher = threading.Thread(target=watch)
        watcher.start()
        worker = threading.Thread(
            target=run_http_worker, args=(url,),
            kwargs={"poll_interval": 0.05, "worker_id": "ph1"},
        )
        worker.start()
        executor.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        worker.join()
        watcher.join()
        events = executor.progress_events
        assert len(events) == 2
        assert {e.worker for e in events} == {"ph1"}
        assert live_progress, "live /status never showed progress"
        [entry] = live_progress[0]["progress"]
        assert entry["worker"] == "ph1" and entry["runs_completed"] >= 1

    def test_malformed_progress_post_rejected(self, tmp_path):
        import urllib.error
        import urllib.request

        executor = CampaignExecutor(
            _runner(), backend="http", cache_dir=tmp_path / "cache",
            serve="127.0.0.1:0",
        )
        url = executor.serve_url
        request = urllib.request.Request(
            url + "/progress", data=b'{"schema": "nope"}',
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 400
        err.value.close()
        assert fetch_status(url)["progress_events"] == 0
        executor._backend.shutdown()


class TestSpoolGc:
    def _seed_spool(self, tmp_path, age_s=7200.0):
        """A spool with one artifact of every kind, aged ``age_s``."""
        spool = tmp_path / "spool"
        for sub in ("tasks", "claims", "failed", "workers", "progress"):
            (spool / sub).mkdir(parents=True)
        files = [
            spool / "tasks" / "t1.json",
            spool / "claims" / "c1.json",
            spool / "failed" / "f1.json",
            spool / "workers" / "w1.json",
            spool / "progress" / "w1.ndjson",
            spool / "stop",
        ]
        for path in files:
            path.write_text("{}", encoding="utf-8")
            old = time.time() - age_s
            os.utime(path, (old, old))
        return spool, files

    def test_dry_run_lists_without_removing(self, tmp_path):
        spool, files = self._seed_spool(tmp_path)
        report = spool_gc(spool, max_age_s=3600.0, dry_run=True)
        assert report["dry_run"] is True
        assert report["removed_total"] == 6
        assert report["stop"] == 1
        assert all(path.exists() for path in files)
        assert "stop" in report["files"]

    def test_removes_old_keeps_young(self, tmp_path):
        spool, files = self._seed_spool(tmp_path)
        fresh = spool / "tasks" / "fresh.json"
        fresh.write_text("{}", encoding="utf-8")
        report = spool_gc(spool, max_age_s=3600.0)
        assert report["removed_total"] == 6
        assert all(not path.exists() for path in files)
        assert fresh.exists()
        # idempotent: nothing left above the age threshold
        assert spool_gc(spool, max_age_s=3600.0)["removed_total"] == 0

    def test_collects_orphaned_progress_and_stop_tmps(self, tmp_path):
        """Regression: the orphaned-tmp sweep skipped the progress dir
        and the stop sentinel's temp file at the spool root, so a worker
        dying mid-flush leaked ``*.tmp`` debris forever."""
        spool, _ = self._seed_spool(tmp_path)
        tmps = [
            spool / "progress" / "w1.ndjson.123.456.tmp",
            spool / "stop.123.456.tmp",
            spool / "tasks" / "t9.json.123.456.tmp",
        ]
        old = time.time() - 7200
        for path in tmps:
            path.write_text("", encoding="utf-8")
            os.utime(path, (old, old))
        report = spool_gc(spool, max_age_s=3600.0)
        assert all(not path.exists() for path in tmps)
        assert report["progress"] == 2  # sidecar + its orphaned tmp
        assert report["stop"] == 2      # sentinel + its orphaned tmp

    def test_missing_spool_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            spool_gc(tmp_path / "nope")
        with pytest.raises(ExperimentError):
            spool_gc(self._seed_spool(tmp_path)[0], max_age_s=-1.0)

    def test_gc_after_real_campaign(self, tmp_path):
        spool, cache = tmp_path / "spool", tmp_path / "cache"
        executor = CampaignExecutor(
            _runner(), backend="queue", cache_dir=cache, spool_dir=spool,
            queue_options={"poll_interval": 0.05, "stop_workers_on_shutdown": True},
        )
        worker = threading.Thread(
            target=run_worker, args=(spool, cache),
            kwargs={"poll_interval": 0.05, "worker_id": "gcw", "idle_exit_s": 60.0},
        )
        worker.start()
        executor.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        worker.join()
        report = spool_gc(spool, max_age_s=0.0)
        assert report["progress"] == 1 and report["stop"] == 1
        status = spool_status(spool)
        assert status["progress_events"] == 0 and not status["stopping"]


class TestCli:
    def test_campaign_summary_includes_progress(self, capsys):
        code = main([
            "--seed", "5", "campaign", "--experiment", "memload-vm", "--runs", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "progress:" in out
        assert "runs reported by 1 worker" in out

    def test_campaign_status_renders_progress(self, tmp_path, capsys):
        spool, cache = tmp_path / "spool", tmp_path / "cache"
        executor = CampaignExecutor(
            _runner(), backend="queue", cache_dir=cache, spool_dir=spool,
            queue_options={"poll_interval": 0.05, "stop_workers_on_shutdown": True},
        )
        worker = threading.Thread(
            target=run_worker, args=(spool, cache),
            kwargs={"poll_interval": 0.05, "worker_id": "cliw", "idle_exit_s": 60.0},
        )
        worker.start()
        executor.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        worker.join()
        code = main(["campaign-status", "--spool-dir", str(spool)])
        out = capsys.readouterr().out
        assert code == 0
        assert "progress: 2 events" in out
        assert "cliw" in out and "2 runs" in out

    def test_campaign_status_follow_repeats(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        for sub in ("tasks", "claims", "failed", "workers", "progress"):
            (spool / sub).mkdir(parents=True)
        code = main([
            "campaign-status", "--spool-dir", str(spool),
            "--follow", "--interval", "0.05", "--updates", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("campaign status [queue]") == 3

    def test_campaign_gc_spool(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        (spool / "progress").mkdir(parents=True)
        sidecar = spool / "progress" / "w.ndjson"
        sidecar.write_text("{}\n", encoding="utf-8")
        old = time.time() - 7200
        os.utime(sidecar, (old, old))
        code = main([
            "campaign", "--gc-spool", "--spool-dir", str(spool), "--dry-run",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "would remove 1 files" in out and sidecar.exists()
        code = main(["campaign", "--gc-spool", "--spool-dir", str(spool)])
        out = capsys.readouterr().out
        assert code == 0
        assert "removed 1 files" in out and not sidecar.exists()

    def test_gc_spool_requires_spool_dir(self):
        with pytest.raises(ExperimentError):
            main(["campaign", "--gc-spool"])


class TestBenchHistory:
    def _payload(self, rev: str, speedup: float, stamp: float) -> dict:
        return {
            "schema": "wavm3-bench/1",
            "revision": rev,
            "quick": True,
            "generated_at": stamp,
            "results": {
                "campaign": {
                    "speedup": speedup,
                    "batched": {"runs_per_s": 2.5, "wall_s": 1.0, "samples_per_s": 1.0},
                    "events": {"runs_per_s": 0.5, "wall_s": 5.0, "samples_per_s": 1.0},
                },
                "consolidation": {"speedup": speedup + 1.0},
                "simulator": {"events_per_s": 250000.0},
                "telemetry": {"speedup": speedup},
            },
        }

    def test_collect_and_render(self, tmp_path):
        from repro.bench import collect_bench_history, render_bench_history

        (tmp_path / "nested").mkdir()
        (tmp_path / "BENCH_bbb.json").write_text(
            json.dumps(self._payload("bbb", 6.0, 200.0)), encoding="utf-8"
        )
        (tmp_path / "nested" / "BENCH_aaa.json").write_text(
            json.dumps(self._payload("aaa", 5.0, 100.0)), encoding="utf-8"
        )
        (tmp_path / "BENCH_bad.json").write_text("not json", encoding="utf-8")
        (tmp_path / "BENCH_wrong.json").write_text(
            json.dumps({"schema": "other/1"}), encoding="utf-8"
        )
        history = collect_bench_history(tmp_path)
        assert [p["revision"] for p in history] == ["aaa", "bbb"]  # oldest first
        table = render_bench_history(history)
        assert "aaa" in table and "bbb" in table
        assert "6.00" in table and "7.00" in table  # campaign + consolidation speedups
        assert render_bench_history([]) == "no BENCH_<rev>.json files found"

    def test_history_renders_missing_sched_agg_metrics_as_dash(self, tmp_path):
        """Older BENCH_<rev>.json payloads predate the scheduler and
        aggregation benchmarks; their rows render "-" in the new columns
        instead of raising."""
        from repro.bench import collect_bench_history, render_bench_history

        old = self._payload("old", 5.0, 100.0)
        new = self._payload("new", 6.0, 200.0)
        new["generated_at"] = 300.0
        new["results"]["sched"] = {"tail_x": 2.5}
        new["results"]["agg"] = {"mem_x": 12.0}
        (tmp_path / "BENCH_old.json").write_text(json.dumps(old), encoding="utf-8")
        (tmp_path / "BENCH_new.json").write_text(json.dumps(new), encoding="utf-8")
        table = render_bench_history(collect_bench_history(tmp_path))
        lines = table.splitlines()
        assert "sched x" in lines[0] and "agg mem x" in lines[0]
        old_row = next(line for line in lines if line.startswith("old"))
        new_row = next(line for line in lines if line.startswith("new"))
        assert old_row.split()[-2:] == ["-", "-"]
        assert "2.50" in new_row and "12.00" in new_row

    def test_cli_history(self, tmp_path, capsys):
        (tmp_path / "BENCH_ccc.json").write_text(
            json.dumps(self._payload("ccc", 5.5, 1.0)), encoding="utf-8"
        )
        code = main(["bench", "--history", "--output-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ccc" in out and "revision" in out


class TestPartialProgressMerge:
    """Worker-reported events supersede synthesized ones *per task id*:
    tasks only the coordinator saw (e.g. a worker crashed before its
    progress sidecar was read) keep their synthesized records instead of
    being dropped wholesale with the rest of the stream."""

    def test_worker_events_replace_only_their_task_ids(self):
        executor = CampaignExecutor(_runner())
        reported = _event(
            task_id=f"{SCENARIO.label}#0", scenario=SCENARIO.label,
            run_index=0, worker="w-remote", runs_completed=1, at=5.0,
        )
        executor._backend.drain_progress = lambda: [reported]
        executor.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        events = executor.progress_events
        assert len(events) == 2
        by_index = {e.run_index: e for e in events}
        # Run 0: the worker's own record won.
        assert by_index[0].worker == "w-remote"
        assert by_index[0] is reported
        # Run 1: nobody reported it, the synthesized record survives.
        assert by_index[1].worker == "serial"
        # The merged stream is re-sorted by timestamp.
        assert [e.at for e in events] == sorted(e.at for e in events)

    def test_full_worker_report_replaces_everything(self):
        executor = CampaignExecutor(_runner())
        reported = [
            _event(task_id=f"{SCENARIO.label}#{i}", scenario=SCENARIO.label,
                   run_index=i, worker="w-remote", runs_completed=i + 1,
                   at=float(i))
            for i in range(2)
        ]
        executor._backend.drain_progress = lambda: list(reported)
        executor.run_campaign([SCENARIO], min_runs=2, max_runs=2)
        assert executor.progress_events == reported
        assert all(e.worker == "w-remote" for e in executor.progress_events)
