"""Persistence round-trips for traces, samples, error grids and task specs."""

import json

import numpy as np
import pytest

from repro.experiments.design import MigrationScenario
from repro.experiments.executor import RunCache, RunTask
from repro.experiments.runner import RunnerSettings
from repro.hypervisor.migration import MigrationConfig
from repro.io import (
    PersistenceError,
    load_error_grid_json,
    load_power_trace_csv,
    load_samples_json,
    load_task_spec,
    save_error_grid_json,
    save_power_trace_csv,
    save_samples_json,
    save_task_spec,
    task_spec_from_dict,
    task_spec_to_dict,
)
from repro.models.features import HostRole
from repro.models.wavm3 import Wavm3Model
from repro.regression.metrics import ErrorReport
from repro.telemetry.stabilization import StabilizationRule
from repro.telemetry.traces import PowerTrace


class TestPowerTraceCsv:
    def test_round_trip(self, tmp_path):
        trace = PowerTrace("demo")
        trace.extend([0.5, 1.0, 1.5], [455.1, 460.25, 458.0])
        path = tmp_path / "trace.csv"
        save_power_trace_csv(trace, path)
        loaded = load_power_trace_csv(path)
        assert np.allclose(loaded.times, trace.times)
        assert np.allclose(loaded.watts, trace.watts)

    def test_label_from_stem(self, tmp_path):
        trace = PowerTrace()
        trace.append(1.0, 100.0)
        path = tmp_path / "m01_run3.csv"
        save_power_trace_csv(trace, path)
        assert load_power_trace_csv(path).label == "m01_run3"

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(PersistenceError):
            load_power_trace_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,power_w\n1,2,3\n")
        with pytest.raises(PersistenceError):
            load_power_trace_csv(path)

    def test_real_run_trace(self, tmp_path, nonlive_cpu_run):
        path = tmp_path / "run.csv"
        save_power_trace_csv(nonlive_cpu_run.source_trace, path)
        loaded = load_power_trace_csv(path)
        assert len(loaded) == len(nonlive_cpu_run.source_trace)
        assert loaded.energy_joules() == pytest.approx(
            nonlive_cpu_run.source_trace.energy_joules(), rel=1e-9
        )


class TestSamplesJson:
    def test_round_trip_preserves_fit(self, tmp_path, mini_samples):
        path = tmp_path / "samples.json"
        save_samples_json(mini_samples, path)
        loaded = load_samples_json(path)
        assert len(loaded) == len(mini_samples)

        # The reloaded dataset fits to the same coefficients.
        original = Wavm3Model().fit(mini_samples)
        reloaded = Wavm3Model().fit(loaded)
        for row_a, row_b in zip(
            original.coefficients.as_table_rows(),
            reloaded.coefficients.as_table_rows(),
        ):
            assert row_a["value"] == pytest.approx(row_b["value"], rel=1e-9)

    def test_roles_preserved(self, tmp_path, mini_samples):
        path = tmp_path / "samples.json"
        save_samples_json(mini_samples[:4], path)
        loaded = load_samples_json(path)
        assert [s.role for s in loaded] == [s.role for s in mini_samples[:4]]

    def test_energies_preserved(self, tmp_path, mini_samples):
        path = tmp_path / "samples.json"
        save_samples_json(mini_samples[:2], path)
        loaded = load_samples_json(path)
        for a, b in zip(mini_samples[:2], loaded):
            assert b.energy_total_j == pytest.approx(a.energy_total_j)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "other/9", "samples": []}')
        with pytest.raises(PersistenceError):
            load_samples_json(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("not json at all")
        with pytest.raises(PersistenceError):
            load_samples_json(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "wavm3-samples/1", "samples": [{"role": "source"}]}')
        with pytest.raises(PersistenceError):
            load_samples_json(path)


class TestErrorGridJson:
    def _grid(self):
        report = ErrorReport(n=8, mae_j=1800.0, rmse_j=2558.0, nrmse=0.118)
        return {"WAVM3": {"live": {"source": report}}}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "grid.json"
        save_error_grid_json(self._grid(), path)
        loaded = load_error_grid_json(path)
        report = loaded["WAVM3"]["live"]["source"]
        assert report.n == 8
        assert report.nrmse_percent == pytest.approx(11.8)
        assert report.mae_kj == pytest.approx(1.8)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text('{"schema": "nope", "grid": {}}')
        with pytest.raises(PersistenceError):
            load_error_grid_json(path)


class TestTaskSpecJson:
    """The distributed queue's wire format: one JSON spec per run."""

    def _task(self, migration_config=None):
        scenario = MigrationScenario(
            "MEMLOAD-VM", "io/taskspec", live=True, dirty_percent=35.0
        )
        settings = RunnerSettings(min_runs=4)
        rule = StabilizationRule(n_readings=12)
        return RunTask(
            seed=77,
            settings=settings,
            migration_config=migration_config,
            stabilization=rule,
            scenario=scenario,
            run_index=3,
            key=RunCache.scenario_key(77, scenario, settings, migration_config, rule),
        )

    def test_round_trip(self, tmp_path):
        task = self._task()
        path = tmp_path / "task.json"
        save_task_spec(task, path)
        assert load_task_spec(path) == task
        assert not list(tmp_path.glob("*.tmp"))  # atomic write cleaned up

    def test_round_trip_with_migration_config(self, tmp_path):
        task = self._task(MigrationConfig(max_iterations=5, round_overhead_s=1.5))
        path = tmp_path / "task.json"
        save_task_spec(task, path)
        loaded = load_task_spec(path)
        assert loaded == task
        assert loaded.migration_config.max_iterations == 5

    def test_dict_round_trip_preserves_key(self):
        task = self._task()
        rebuilt = task_spec_from_dict(task_spec_to_dict(task))
        assert rebuilt.key == task.key
        assert rebuilt == task

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json", encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_task_spec(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "wrong.json"
        payload = task_spec_to_dict(self._task())
        payload["schema"] = "wavm3-taskspec/0"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_task_spec(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "partial.json"
        payload = task_spec_to_dict(self._task())
        del payload["settings"]
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_task_spec(path)

    def test_invalid_field_value_rejected(self, tmp_path):
        path = tmp_path / "invalid.json"
        payload = task_spec_to_dict(self._task())
        payload["scenario"]["family"] = "z"  # fails MigrationScenario validation
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_task_spec(path)
