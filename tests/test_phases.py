"""Phase timelines and trace-based phase detection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PhaseError
from repro.phases import MigrationPhase, PhaseTimeline, RoundRecord, detect_phases
from repro.telemetry import PowerTrace


def complete_timeline(ms=10.0, ts=13.0, te=50.0, me=53.0):
    return PhaseTimeline(ms=ms, ts=ts, te=te, me=me)


class TestTimelineValidity:
    def test_complete_flag(self):
        tl = PhaseTimeline()
        assert not tl.complete
        tl.ms, tl.ts, tl.te, tl.me = 1.0, 2.0, 3.0, 4.0
        assert tl.complete

    def test_ordering_enforced(self):
        tl = PhaseTimeline(ms=5.0, ts=4.0, te=6.0, me=7.0)
        with pytest.raises(PhaseError):
            tl.validate()

    def test_incomplete_rejected(self):
        with pytest.raises(PhaseError):
            PhaseTimeline(ms=1.0).validate()

    def test_half_downtime_rejected(self):
        tl = complete_timeline()
        tl.downtime_start = 20.0
        with pytest.raises(PhaseError):
            tl.validate()

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=4, max_size=4))
    def test_sorted_instants_always_valid(self, instants):
        ms, ts, te, me = sorted(instants)
        PhaseTimeline(ms=ms, ts=ts, te=te, me=me).validate()


class TestTimelineQueries:
    def test_phase_at(self):
        tl = complete_timeline()
        assert tl.phase_at(5.0) is MigrationPhase.NORMAL
        assert tl.phase_at(11.0) is MigrationPhase.INITIATION
        assert tl.phase_at(30.0) is MigrationPhase.TRANSFER
        assert tl.phase_at(52.0) is MigrationPhase.ACTIVATION
        assert tl.phase_at(60.0) is MigrationPhase.NORMAL

    def test_durations(self):
        tl = complete_timeline()
        assert tl.initiation_duration == pytest.approx(3.0)
        assert tl.transfer_duration == pytest.approx(37.0)
        assert tl.activation_duration == pytest.approx(3.0)
        assert tl.total_duration == pytest.approx(43.0)

    def test_phase_interval(self):
        tl = complete_timeline()
        assert tl.phase_interval(MigrationPhase.TRANSFER) == (13.0, 50.0)
        with pytest.raises(PhaseError):
            tl.phase_interval(MigrationPhase.NORMAL)

    def test_downtime(self):
        tl = complete_timeline()
        assert tl.downtime == 0.0
        tl.downtime_start, tl.downtime_end = 48.0, 52.0
        assert tl.downtime == pytest.approx(4.0)


class TestRounds:
    def test_round_accounting(self):
        tl = complete_timeline()
        tl.add_round(RoundRecord(0, 13.0, 30.0, 1000, 4096000))
        tl.add_round(RoundRecord(1, 43.0, 5.0, 100, 409600, stop_and_copy=True))
        assert tl.n_rounds == 2
        assert tl.pages_total == 1100
        assert tl.bytes_total == 4505600

    def test_round_indices_consecutive(self):
        tl = PhaseTimeline()
        tl.add_round(RoundRecord(0, 0.0, 1.0, 1, 4096))
        with pytest.raises(PhaseError):
            tl.add_round(RoundRecord(2, 1.0, 1.0, 1, 4096))

    def test_first_round_must_be_zero(self):
        with pytest.raises(PhaseError):
            PhaseTimeline().add_round(RoundRecord(1, 0.0, 1.0, 1, 4096))

    def test_negative_duration_rejected(self):
        with pytest.raises(PhaseError):
            RoundRecord(0, 0.0, -1.0, 1, 4096)

    def test_round_end(self):
        assert RoundRecord(0, 10.0, 2.5, 1, 4096).end == 12.5


class TestDetection:
    def _synthetic_trace(self, baseline=455.0, excursion=120.0, ts=30.0, te=70.0):
        trace = PowerTrace("synthetic")
        rng = np.random.default_rng(3)
        for t in np.arange(0.5, 100.0, 0.5):
            level = baseline + (excursion if ts <= t <= te else 0.0)
            trace.append(float(t), level + rng.normal(0, 0.8))
        return trace

    def test_detects_migration_window(self):
        trace = self._synthetic_trace()
        tl = detect_phases(trace)
        assert tl.ms == pytest.approx(30.0, abs=3.5)
        assert tl.me == pytest.approx(70.0, abs=3.5)
        assert tl.ms <= tl.ts <= tl.te <= tl.me

    def test_agrees_with_ground_truth_run(self, nonlive_cpu_run):
        measured = detect_phases(nonlive_cpu_run.source_trace)
        truth = nonlive_cpu_run.timeline
        # Window endpoints within a few seconds of the engine truth.
        assert measured.ms == pytest.approx(truth.ms, abs=8.0)
        assert measured.me == pytest.approx(truth.me, abs=8.0)

    def test_robust_to_post_migration_level_shift(self):
        # The source idles lower after the VM leaves; the detector must
        # not extend the window into the shifted steady state.
        trace = PowerTrace()
        rng = np.random.default_rng(5)
        for t in np.arange(0.5, 120.0, 0.5):
            if t < 40.0:
                level = 500.0
            elif t <= 80.0:
                level = 620.0
            else:
                level = 450.0  # new, lower steady state
            trace.append(float(t), level + rng.normal(0, 0.8))
        tl = detect_phases(trace)
        assert tl.me == pytest.approx(80.0, abs=4.0)

    def test_flat_trace_rejected(self):
        trace = PowerTrace()
        rng = np.random.default_rng(0)
        for t in np.arange(0.5, 50.0, 0.5):
            trace.append(float(t), 455.0 + rng.normal(0, 0.5))
        with pytest.raises(PhaseError):
            detect_phases(trace)

    def test_short_trace_rejected(self):
        trace = PowerTrace()
        for t in range(5):
            trace.append(float(t) + 0.5, 455.0)
        with pytest.raises(PhaseError):
            detect_phases(trace)

    def test_detected_timeline_is_valid(self):
        tl = detect_phases(self._synthetic_trace())
        tl.validate()
