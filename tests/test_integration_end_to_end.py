"""End-to-end integration: the full paper pipeline on a reduced campaign.

These tests exercise the complete chain — simulate → measure → extract →
fit → validate → compare — and assert the *shape* claims that define the
reproduction (DESIGN.md §4), on a reduced-run campaign for speed.  The
benchmark suite repeats them at full scale.
"""

import numpy as np
import pytest

from repro import quick_migration_energy
from repro.analysis.comparison import compare_models
from repro.models.features import HostRole
from repro.phases.timeline import MigrationPhase


class TestQuickstart:
    def test_live_quickstart(self):
        result = quick_migration_energy(live=True, seed=5)
        result.timeline.validate()
        assert result.total_energy_j(HostRole.SOURCE) > 1000.0

    def test_nonlive_quickstart(self):
        result = quick_migration_energy(live=False, seed=5)
        assert result.timeline.n_rounds == 1

    def test_o_family_quickstart(self):
        result = quick_migration_energy(live=True, seed=5, family="o")
        # The o-pair idles far lower: migration energy scales accordingly.
        m_result = quick_migration_energy(live=True, seed=5, family="m")
        assert result.total_energy_j(HostRole.SOURCE) < m_result.total_energy_j(
            HostRole.SOURCE
        )


class TestPipelineShape:
    """The reproduction's headline claims on the shared mini campaign."""

    @pytest.fixture(scope="class")
    def comparison(self, mini_campaign):
        return compare_models(result=mini_campaign, training_fraction=0.34)

    def test_wavm3_beats_or_ties_huang(self, comparison):
        for kind in ("non-live", "live"):
            for role in ("source", "target"):
                wavm3 = comparison.nrmse_percent("WAVM3", kind, role)
                huang = comparison.nrmse_percent("HUANG", kind, role)
                assert wavm3 <= huang + 1.0

    def test_liu_strunk_trail_on_source(self, comparison):
        # The mini campaign only varies *source* load, so the data-only
        # models fail there; the full-grid claim (all four cells) is
        # asserted by the benchmark suite on the complete campaign.
        for kind in ("non-live", "live"):
            wavm3 = comparison.nrmse_percent("WAVM3", kind, "source")
            assert comparison.nrmse_percent("LIU", kind, "source") > 2 * wavm3
            assert comparison.nrmse_percent("STRUNK", kind, "source") > 2 * wavm3

    def test_energy_grows_with_source_load(self, mini_campaign):
        loaded = mini_campaign.result_for("mini/lv/5vm")
        idle = mini_campaign.result_for("mini/lv/0vm")
        assert loaded.mean_energy_j(HostRole.SOURCE) > idle.mean_energy_j(
            HostRole.SOURCE
        )

    def test_dirtier_vm_transfers_more_data(self, mini_campaign):
        high = mini_campaign.result_for("mini/lv/dr75")
        low = mini_campaign.result_for("mini/lv/dr15")
        high_data = np.mean([r.timeline.bytes_total for r in high.runs])
        low_data = np.mean([r.timeline.bytes_total for r in low.runs])
        assert high_data > low_data

    def test_downtime_grows_with_dirty_ratio(self, mini_campaign):
        high = mini_campaign.result_for("mini/lv/dr75")
        low = mini_campaign.result_for("mini/lv/dr15")
        assert high.mean_downtime_s() > low.mean_downtime_s()

    def test_live_totals_exceed_nonlive(self, mini_campaign):
        live = mini_campaign.result_for("mini/lv/0vm")
        nonlive = mini_campaign.result_for("mini/nl/0vm")
        assert live.mean_duration_s() > nonlive.mean_duration_s()

    def test_phase_energies_consistent_with_total(self, mini_campaign):
        run = mini_campaign.all_runs()[0]
        for role in (HostRole.SOURCE, HostRole.TARGET):
            total = run.total_energy_j(role)
            parts = sum(
                run.phase_energy_j(role, phase)
                for phase in (MigrationPhase.INITIATION, MigrationPhase.TRANSFER,
                              MigrationPhase.ACTIVATION)
            )
            assert parts == pytest.approx(total)

    def test_samples_round_trip_through_models(self, mini_samples, comparison):
        # Every fitted model predicts every sample without error.
        for models_by_kind in comparison.models.values():
            for kind, model in models_by_kind.items():
                live = kind == "live"
                for sample in mini_samples:
                    if sample.live is live:
                        assert np.isfinite(model.predict_energy(sample).total_j)
