"""Trace containers: append discipline, windows, interpolation, energy."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.telemetry import PowerTrace, SeriesTrace


class TestPowerTrace:
    def test_append_and_read(self):
        trace = PowerTrace("t")
        trace.append(0.5, 455.0)
        trace.append(1.0, 460.0)
        assert trace.times.tolist() == [0.5, 1.0]
        assert trace.watts.tolist() == [455.0, 460.0]
        assert len(trace) == 2

    def test_rejects_non_increasing_time(self):
        trace = PowerTrace()
        trace.append(1.0, 100.0)
        with pytest.raises(TraceError):
            trace.append(1.0, 101.0)

    def test_extend_strict_zip(self):
        trace = PowerTrace()
        with pytest.raises(ValueError):
            trace.extend([1.0, 2.0], [100.0])

    def test_window(self):
        trace = PowerTrace()
        trace.extend([1.0, 2.0, 3.0, 4.0], [10.0, 20.0, 30.0, 40.0])
        sub = trace.window(2.0, 3.0)
        assert sub.times.tolist() == [2.0, 3.0]

    def test_window_reversed_rejected(self):
        with pytest.raises(TraceError):
            PowerTrace().window(3.0, 2.0)

    def test_shifted(self):
        trace = PowerTrace()
        trace.append(1.0, 10.0)
        assert trace.shifted(-0.5).times.tolist() == [0.5]

    def test_value_at_interpolates(self):
        trace = PowerTrace()
        trace.extend([0.0, 1.0], [100.0, 200.0])
        assert trace.value_at(0.5) == pytest.approx(150.0)

    def test_value_at_clamps(self):
        trace = PowerTrace()
        trace.extend([0.0, 1.0], [100.0, 200.0])
        assert trace.value_at(-5.0) == 100.0
        assert trace.value_at(5.0) == 200.0

    def test_mean_power(self):
        trace = PowerTrace()
        trace.extend([0.0, 1.0, 2.0], [100.0, 200.0, 300.0])
        assert trace.mean_power() == pytest.approx(200.0)

    def test_empty_mean_rejected(self):
        with pytest.raises(TraceError):
            PowerTrace().mean_power()

    def test_energy_constant_power(self):
        trace = PowerTrace()
        trace.extend(np.arange(0, 10.5, 0.5), np.full(21, 500.0))
        assert trace.energy_joules() == pytest.approx(5000.0)

    def test_energy_subwindow(self):
        trace = PowerTrace()
        trace.extend(np.arange(0, 10.5, 0.5), np.full(21, 500.0))
        assert trace.energy_joules(2.0, 4.0) == pytest.approx(1000.0)

    def test_cache_invalidation_on_append(self):
        trace = PowerTrace()
        trace.append(1.0, 10.0)
        _ = trace.times
        trace.append(2.0, 20.0)
        assert len(trace.times) == 2


class TestSeriesTrace:
    def test_round_trip(self):
        trace = SeriesTrace(("a", "b"))
        trace.append(1.0, a=1.0, b=2.0)
        trace.append(2.0, a=3.0, b=4.0)
        assert trace.column("a").tolist() == [1.0, 3.0]
        assert trace.times.tolist() == [1.0, 2.0]

    def test_missing_column_rejected(self):
        trace = SeriesTrace(("a", "b"))
        with pytest.raises(TraceError):
            trace.append(1.0, a=1.0)

    def test_extra_column_rejected(self):
        trace = SeriesTrace(("a",))
        with pytest.raises(TraceError):
            trace.append(1.0, a=1.0, z=2.0)

    def test_unknown_column_read_rejected(self):
        trace = SeriesTrace(("a",))
        with pytest.raises(TraceError):
            trace.column("z")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(TraceError):
            SeriesTrace(("a", "a"))

    def test_empty_columns_rejected(self):
        with pytest.raises(TraceError):
            SeriesTrace(())

    def test_value_at(self):
        trace = SeriesTrace(("x",))
        trace.append(0.0, x=0.0)
        trace.append(2.0, x=10.0)
        assert trace.value_at("x", 1.0) == pytest.approx(5.0)

    def test_window(self):
        trace = SeriesTrace(("x",))
        for t in range(5):
            trace.append(float(t), x=float(t * t))
        sub = trace.window(1.0, 3.0)
        assert sub.times.tolist() == [1.0, 2.0, 3.0]
        assert sub.column("x").tolist() == [1.0, 4.0, 9.0]

    def test_non_increasing_time_rejected(self):
        trace = SeriesTrace(("x",))
        trace.append(1.0, x=0.0)
        with pytest.raises(TraceError):
            trace.append(0.5, x=0.0)
