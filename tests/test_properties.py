"""Cross-cutting invariants, property-based where randomisation helps.

These complement the per-module property tests with system-level
guarantees: determinism of whole simulations, conservation/additivity of
energy accounting, the pre-copy algorithm's termination envelope, and the
run-cache key derivation the distributed campaign backend relies on.
"""

import json
import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.errors import ReproError
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import RunCache, RunTask
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.hypervisor.migration import MigrationConfig
from repro.io import task_spec_to_dict
from repro.models.features import HostRole
from repro.phases.timeline import MigrationPhase
from repro.simulator.engine import Simulator
from repro.telemetry.integration import integrate_power
from repro.telemetry.stabilization import StabilizationRule

_DELAYS = st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False)


class TestSimulatorEngineProperties:
    """Random schedule/cancel sequences can never break the event kernel."""

    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(st.tuples(_DELAYS, st.booleans()), max_size=40))
    def test_schedule_cancel_accounting(self, ops):
        """Time-ordering, ``now`` monotonicity and event accounting hold
        for any mix of scheduled and cancelled events."""
        sim = Simulator()
        fired: list[float] = []
        events = [(sim.schedule(delay, lambda: fired.append(sim.now)), cancel)
                  for delay, cancel in ops]
        for event, cancel in events:
            if cancel:
                assert sim.cancel(event) is True
                assert sim.cancel(event) is False  # cancellation is one-shot
        kept = [event for event, cancel in events if not cancel]
        sim.run()
        assert sim.processed_events == len(kept)
        assert sim.pending_events == 0
        assert fired == sorted(fired)                      # now never goes back
        assert fired == sorted(event.time for event in kept)  # fire at their times
        assert sim.now == (max(event.time for event in kept) if kept else 0.0)

    @settings(max_examples=60, deadline=None)
    @given(delays=st.lists(_DELAYS, max_size=30), cutoff=_DELAYS)
    def test_run_for_fires_exactly_the_due_events(self, delays, cutoff):
        sim = Simulator()
        fired: list[float] = []
        for delay in delays:
            sim.schedule(delay, lambda delay=delay: fired.append(delay))
        sim.run_for(cutoff)
        assert sim.now == cutoff
        assert sorted(fired) == sorted(d for d in delays if d <= cutoff)
        assert sim.pending_events == sum(1 for d in delays if d > cutoff)
        assert sim.processed_events == len(fired)
        sim.run()  # draining the rest restores full accounting
        assert sim.processed_events == len(delays)
        assert sim.pending_events == 0

    @settings(max_examples=40, deadline=None)
    @given(delays=st.lists(_DELAYS, max_size=20))
    def test_nested_scheduling_keeps_order_and_counts(self, delays):
        """Callbacks that schedule follow-up events preserve every invariant."""
        sim = Simulator()
        fired: list[float] = []

        def parent(delay: float) -> None:
            fired.append(sim.now)
            sim.schedule(delay, lambda: fired.append(sim.now))

        for delay in delays:
            sim.schedule(delay, parent, delay)
        sim.run()
        assert fired == sorted(fired)
        assert sim.processed_events == 2 * len(delays)
        assert sim.pending_events == 0


class TestSimulationDeterminism:
    def test_identical_seeds_identical_universe(self):
        """Two runs from one seed agree to the last reading and byte."""
        scenario = MigrationScenario(
            "MEMLOAD-VM", "prop/dr35", live=True, dirty_percent=35.0
        )
        runs = [ScenarioRunner(seed=99).run_once(scenario) for _ in range(2)]
        a, b = runs
        assert np.array_equal(a.source_trace.watts, b.source_trace.watts)
        assert np.array_equal(a.target_trace.watts, b.target_trace.watts)
        assert a.timeline.bytes_total == b.timeline.bytes_total
        assert a.timeline.me == b.timeline.me

    def test_seed_changes_everything(self):
        scenario = MigrationScenario("CPULOAD-SOURCE", "prop/seed", live=True)
        a = ScenarioRunner(seed=1).run_once(scenario)
        b = ScenarioRunner(seed=2).run_once(scenario)
        assert not np.array_equal(a.source_trace.watts, b.source_trace.watts)


class TestEnergyAccounting:
    @pytest.fixture(scope="class")
    def run(self):
        return ScenarioRunner(seed=41).run_once(
            MigrationScenario("CPULOAD-SOURCE", "prop/energy", live=True, load_vm_count=3)
        )

    def test_phase_energies_partition_total(self, run):
        """E(i) + E(t) + E(a) equals the integral over [ms, me] (Eq. 4)."""
        for role in (HostRole.SOURCE, HostRole.TARGET):
            trace = run.trace_for(role)
            assert run.timeline.ms is not None and run.timeline.me is not None
            whole = integrate_power(
                trace.times, trace.watts, run.timeline.ms, run.timeline.me
            )
            parts = sum(
                run.phase_energy_j(role, phase)
                for phase in (MigrationPhase.INITIATION, MigrationPhase.TRANSFER,
                              MigrationPhase.ACTIVATION)
            )
            assert parts == pytest.approx(whole, rel=1e-9)

    def test_energy_bounded_by_power_envelope(self, run):
        """No phase energy can exceed peak power x duration."""
        for role in (HostRole.SOURCE, HostRole.TARGET):
            peak = (
                run.source_trace if role is HostRole.SOURCE else run.target_trace
            ).watts.max()
            for phase, duration in (
                (MigrationPhase.INITIATION, run.timeline.initiation_duration),
                (MigrationPhase.TRANSFER, run.timeline.transfer_duration),
                (MigrationPhase.ACTIVATION, run.timeline.activation_duration),
            ):
                energy = run.phase_energy_j(role, phase)
                assert 0 <= energy <= peak * duration * 1.01

    def test_sample_energy_matches_run_energy(self, run):
        for role in (HostRole.SOURCE, HostRole.TARGET):
            sample = run.sample_for(role)
            assert sample.energy_total_j == pytest.approx(run.total_energy_j(role))


class TestPrecopyEnvelope:
    """Xen's termination rules bound every live migration's geometry."""

    @pytest.fixture(scope="class")
    def campaign(self):
        runner = ScenarioRunner(seed=77)
        scenarios = [
            MigrationScenario("MEMLOAD-VM", f"prop/dr{p}", live=True, dirty_percent=p)
            for p in (5.0, 55.0, 95.0)
        ]
        return [runner.run_once(s) for s in scenarios]

    def test_rounds_bounded(self, campaign):
        for run in campaign:
            # max_iterations pre-copy rounds + 1 stop-and-copy.
            assert 2 <= run.timeline.n_rounds <= 30

    def test_data_bounded(self, campaign):
        for run in campaign:
            ram = run.vm_ram_mb * 1024 * 1024
            assert ram <= run.timeline.bytes_total <= 4 * ram

    def test_round_zero_moves_whole_image(self, campaign):
        for run in campaign:
            assert run.timeline.rounds[0].pages_sent == run.vm_ram_mb * 256

    def test_exactly_one_stop_and_copy(self, campaign):
        for run in campaign:
            flags = [r.stop_and_copy for r in run.timeline.rounds]
            assert flags[-1] is True
            assert sum(flags) == 1

    def test_rounds_tile_the_transfer_phase(self, campaign):
        for run in campaign:
            tl = run.timeline
            assert tl.rounds[0].start == pytest.approx(tl.ts)
            for earlier, later in zip(tl.rounds, tl.rounds[1:]):
                assert later.start == pytest.approx(earlier.end, abs=1e-6)
            assert tl.rounds[-1].end == pytest.approx(tl.te, abs=1e-6)


class TestErrorHierarchy:
    def test_all_library_errors_catchable(self):
        from repro import errors

        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, ReproError) or cls is ReproError

    def test_configuration_error_is_value_error(self):
        from repro.errors import ConfigurationError

        assert issubclass(ConfigurationError, ValueError)

    def test_version_exposed(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)


# Strictly positive float bounds keep -0.0 (== 0.0 but with a different
# canonical JSON repr) out of the injectivity comparisons below.
_SETTINGS_DRAWS = st.builds(
    RunnerSettings,
    min_runs=st.integers(min_value=2, max_value=12),
    max_runs=st.integers(min_value=12, max_value=20),
    variance_delta=st.floats(min_value=0.01, max_value=0.5, allow_nan=False),
    check_interval_s=st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
)
_MIGRATION_CONFIG_DRAWS = st.builds(
    MigrationConfig,
    max_iterations=st.integers(min_value=1, max_value=40),
    dirty_threshold_pages=st.integers(min_value=0, max_value=500),
    max_transfer_factor=st.floats(min_value=1.0, max_value=6.0, allow_nan=False),
    round_overhead_s=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    daemon_threads_source=st.floats(min_value=0.01, max_value=4.0, allow_nan=False),
    resume_point=st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
)
_SCENARIO_DRAWS = st.one_of(
    st.builds(
        MigrationScenario,
        experiment=st.sampled_from(["CPULOAD-SOURCE", "CPULOAD-TARGET"]),
        label=st.text(alphabet="abcdef0123456789/-", min_size=1, max_size=24),
        live=st.booleans(),
        load_vm_count=st.integers(min_value=0, max_value=8),
        load_on=st.sampled_from(["source", "target"]),
        family=st.sampled_from(["m", "o"]),
    ),
    st.builds(
        MigrationScenario,
        experiment=st.just("MEMLOAD-VM"),
        label=st.text(alphabet="abcdef0123456789/-", min_size=1, max_size=24),
        live=st.just(True),  # MEMLOAD scenarios are live-only
        dirty_percent=st.floats(min_value=1.0, max_value=95.0, allow_nan=False),
        family=st.sampled_from(["m", "o"]),
    ),
)


class TestRunCacheKeyProperties:
    """The distributed backend shares runs between machines purely by
    cache key, so the key derivation must be deterministic, collision-free
    across differing protocols, and identical across process boundaries."""

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        scenario=_SCENARIO_DRAWS,
        runner_settings=_SETTINGS_DRAWS,
        config=st.none() | _MIGRATION_CONFIG_DRAWS,
    )
    def test_key_is_stable_and_wellformed(self, seed, scenario, runner_settings, config):
        rule = StabilizationRule()
        first = RunCache.scenario_key(seed, scenario, runner_settings, config, rule)
        again = RunCache.scenario_key(seed, scenario, runner_settings, config, rule)
        assert first == again
        assert len(first) == 64 and set(first) <= set("0123456789abcdef")

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        scenario=_SCENARIO_DRAWS,
        a=_MIGRATION_CONFIG_DRAWS,
        b=_MIGRATION_CONFIG_DRAWS,
    )
    def test_injective_over_migration_config(self, seed, scenario, a, b):
        """Two protocol overrides share a key iff they are equal — a stale
        ablation run can never satisfy a different configuration."""
        rule = StabilizationRule()
        base = RunnerSettings()
        key_a = RunCache.scenario_key(seed, scenario, base, a, rule)
        key_b = RunCache.scenario_key(seed, scenario, base, b, rule)
        assert (key_a == key_b) == (a == b)

    @settings(max_examples=40, deadline=None)
    @given(
        scenario=_SCENARIO_DRAWS,
        a=_SETTINGS_DRAWS,
        b=_SETTINGS_DRAWS,
    )
    def test_injective_over_runner_settings(self, scenario, a, b):
        rule = StabilizationRule()
        key_a = RunCache.scenario_key(0, scenario, a, None, rule)
        key_b = RunCache.scenario_key(0, scenario, b, None, rule)
        assert (key_a == key_b) == (a == b)

    def test_key_stable_across_process_boundaries(self):
        """A worker on another machine must derive the same key from a
        round-tripped task spec that the coordinator hashed locally."""
        rule = StabilizationRule()
        combos = [
            (0, MigrationScenario("CPULOAD-SOURCE", "xproc/a", live=True),
             RunnerSettings(), None),
            (7, MigrationScenario("CPULOAD-SOURCE", "xproc/b", live=False,
                                  load_vm_count=3), RunnerSettings(min_runs=4), None),
            (20150901, MigrationScenario("MEMLOAD-VM", "xproc/c", live=True,
                                         dirty_percent=55.0),
             RunnerSettings(check_interval_s=2.0),
             MigrationConfig(max_iterations=10)),
        ]
        tasks = [
            RunTask(seed=seed, settings=cfg, migration_config=mig,
                    stabilization=rule, scenario=scn, run_index=0,
                    key=RunCache.scenario_key(seed, scn, cfg, mig, rule))
            for seed, scn, cfg, mig in combos
        ]
        script = (
            "import json, sys\n"
            "from repro.experiments.executor import RunCache\n"
            "from repro.io import task_spec_from_dict\n"
            "keys = []\n"
            "for payload in json.load(sys.stdin):\n"
            "    t = task_spec_from_dict(payload)\n"
            "    keys.append(RunCache.scenario_key(t.seed, t.scenario, t.settings,\n"
            "                                      t.migration_config, t.stabilization))\n"
            "print(json.dumps(keys))\n"
        )
        env = dict(os.environ)
        src_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([task_spec_to_dict(t) for t in tasks]),
            capture_output=True, text=True, env=env, check=True,
        )
        assert json.loads(proc.stdout) == [t.key for t in tasks]


class TestSeedBankProperties:
    """Bank partitioning invariants of the seed-bank batch interior.

    ``run_batch`` may receive any hole pattern a partially-warmed cache
    leaves behind and any ``seed_bank`` width; the bank must cover
    exactly those indices, in order, whatever the chunking — and a run
    forced out of the bank at an arbitrary tick must still reproduce the
    per-run scalar suffix bit for bit.
    """

    @settings(max_examples=80, deadline=None)
    @given(
        holes=st.lists(
            st.integers(min_value=0, max_value=200), min_size=2, max_size=40,
            unique=True,
        ),
        width=st.integers(min_value=2, max_value=12),
    )
    def test_bank_chunks_cover_exactly_the_holes_in_order(self, holes, width):
        """Chunks tile the index list: no index lost, duplicated or
        reordered, no chunk wider than the bank, results and ``on_run``
        deposits in ``indices`` order."""
        from repro.experiments import seedbank
        from repro.experiments.seedbank import SeedBank

        chunks = []
        fired = []

        class _FakeRun:
            def __init__(self, index):
                self.run_index = index

        def fake_chunk(self, chunk):
            chunks.append(list(chunk))
            yield from (_FakeRun(index) for index in chunk)

        bank = SeedBank(
            ScenarioRunner(seed=0),
            MigrationScenario("CPULOAD-SOURCE", "prop/bank", live=True),
            holes, width=width, on_run=lambda run: fired.append(run.run_index),
        )
        original = seedbank.SeedBank._run_chunk
        seedbank.SeedBank._run_chunk = fake_chunk
        try:
            results = bank.execute()
        finally:
            seedbank.SeedBank._run_chunk = original
        assert [r for chunk in chunks for r in chunk] == holes
        assert all(len(chunk) <= max(width, 2) for chunk in chunks)
        assert [r.run_index for r in results] == holes
        assert fired == holes

    @settings(max_examples=6, deadline=None)
    @given(
        victim=st.integers(min_value=0, max_value=2),
        event_time=st.floats(min_value=0.5, max_value=40.0, allow_nan=False),
    )
    def test_drop_out_at_any_tick_reproduces_the_scalar_suffix(
        self, victim, event_time
    ):
        """An extra heap event at an arbitrary tick forces one run out of
        the bank for that window (and solo through the engine from there
        to the boundary); its samples must still match ``run_once``."""
        from repro.experiments.runner import ScenarioRunner as Runner

        scenario = MigrationScenario(
            "CPULOAD-SOURCE", "prop/dropout", live=False, load_vm_count=0
        )
        fast = dict(
            min_warmup_s=2.0, max_warmup_s=6.0, min_post_s=2.0, max_post_s=6.0,
            check_interval_s=1.0,
        )
        banked_runner = Runner(
            seed=5, settings=RunnerSettings(seed_bank=8, **fast)
        )
        build = Runner.build_testbed

        def build_with_event(self, scn, run_index):
            bed = build(self, scn, run_index)
            if run_index == victim:
                bed.sim.schedule(event_time, lambda: None)
            return bed

        banked_runner.build_testbed = build_with_event.__get__(banked_runner)
        banked = banked_runner.run_batch(scenario, range(3))
        reference = Runner(
            seed=5, settings=RunnerSettings(seed_bank=0, **fast)
        ).run_batch(scenario, range(3))
        for a, b in zip(reference, banked):
            assert np.array_equal(a.source_trace.times, b.source_trace.times)
            assert np.array_equal(a.source_trace.watts, b.source_trace.watts)
            assert np.array_equal(a.target_trace.watts, b.target_trace.watts)
            assert np.array_equal(a.features.times, b.features.times)
            for column in a.features.columns:
                assert np.array_equal(
                    a.features.column(column), b.features.column(column)
                )

    @settings(max_examples=60, deadline=None)
    @given(
        master=st.integers(min_value=0, max_value=2**31),
        label=st.text(alphabet="abcdef0123456789/-", min_size=1, max_size=24),
        indices=st.lists(
            st.integers(min_value=0, max_value=500), min_size=2, max_size=30,
            unique=True,
        ),
    )
    def test_derived_seeds_independent_of_bank_shape(self, master, label, indices):
        """``derive_seed(master, "label#index")`` is a pure per-index
        function: the same seed whatever order or grouping the bank
        evaluates it in, and collision-free across the span."""
        from repro.simulator.rng import derive_seed

        in_order = [derive_seed(master, f"{label}#{i}") for i in indices]
        reordered = {
            i: derive_seed(master, f"{label}#{i}") for i in reversed(indices)
        }
        assert [reordered[i] for i in indices] == in_order
        assert len(set(in_order)) == len(indices)


@settings(max_examples=20, deadline=None)
@given(
    dirty_pct=st.floats(min_value=1.0, max_value=95.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_dirtier_guests_never_shrink_moved_data(dirty_pct, seed):
    """Monotone coupling: DR up ⇒ moved data not (meaningfully) down.

    Compares each sampled dirty percentage against a fixed low-DR anchor
    with the same seed; the pre-copy algorithm must move at least as much
    data for the dirtier guest (small jitter tolerance).
    """
    runner = ScenarioRunner(seed=seed)
    low = runner.run_once(
        MigrationScenario("MEMLOAD-VM", "prop/anchor", live=True, dirty_percent=1.0)
    )
    high = runner.run_once(
        MigrationScenario("MEMLOAD-VM", "prop/sweep", live=True, dirty_percent=dirty_pct)
    )
    assert high.timeline.bytes_total >= 0.95 * low.timeline.bytes_total
