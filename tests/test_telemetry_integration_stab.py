"""Energy integration and the stabilisation rule."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TraceError
from repro.telemetry import StabilizationRule, first_stable_index, integrate_power, is_stable
from repro.telemetry.integration import cumulative_energy


class TestIntegratePower:
    def test_constant_power(self):
        t = np.arange(0, 11, 1.0)
        w = np.full_like(t, 100.0)
        assert integrate_power(t, w, 0.0, 10.0) == pytest.approx(1000.0)

    def test_linear_ramp_exact(self):
        # Trapezoid is exact for piecewise-linear signals.
        t = np.arange(0, 11, 1.0)
        w = 10.0 * t
        assert integrate_power(t, w, 0.0, 10.0) == pytest.approx(500.0)

    def test_boundary_interpolation(self):
        t = np.array([0.0, 1.0])
        w = np.array([0.0, 100.0])
        # Integral over [0.25, 0.75] of a 0->100 ramp = 25 J.
        assert integrate_power(t, w, 0.25, 0.75) == pytest.approx(25.0)

    def test_zero_width(self):
        t = np.array([0.0, 1.0])
        w = np.array([50.0, 50.0])
        assert integrate_power(t, w, 0.5, 0.5) == 0.0

    def test_additive_over_subintervals(self):
        rng = np.random.default_rng(0)
        t = np.sort(rng.uniform(0, 10, 50))
        t[0], t[-1] = 0.0, 10.0
        w = rng.uniform(100, 900, 50)
        total = integrate_power(t, w, 0.0, 10.0)
        split = integrate_power(t, w, 0.0, 4.3) + integrate_power(t, w, 4.3, 10.0)
        assert split == pytest.approx(total)

    def test_out_of_span_rejected(self):
        t = np.array([0.0, 1.0])
        w = np.array([1.0, 1.0])
        with pytest.raises(TraceError):
            integrate_power(t, w, -1.0, 0.5)

    def test_reversed_bounds_rejected(self):
        t = np.array([0.0, 1.0])
        w = np.array([1.0, 1.0])
        with pytest.raises(TraceError):
            integrate_power(t, w, 0.8, 0.2)

    def test_non_monotone_times_rejected(self):
        with pytest.raises(TraceError):
            integrate_power(np.array([0.0, 0.0, 1.0]), np.ones(3), 0.0, 1.0)

    @given(st.floats(min_value=10.0, max_value=1000.0), st.floats(min_value=0.1, max_value=100.0))
    def test_constant_power_closed_form(self, watts, duration):
        t = np.linspace(0.0, duration, 23)
        w = np.full_like(t, watts)
        assert integrate_power(t, w, 0.0, duration) == pytest.approx(watts * duration)


class TestCumulativeEnergy:
    def test_starts_at_zero_monotone(self):
        t = np.arange(0, 5, 0.5)
        w = np.full_like(t, 200.0)
        cum = cumulative_energy(t, w)
        assert cum[0] == 0.0
        assert np.all(np.diff(cum) >= 0)
        assert cum[-1] == pytest.approx(200.0 * 4.5)

    def test_needs_two_samples(self):
        with pytest.raises(TraceError):
            cumulative_energy(np.array([1.0]), np.array([1.0]))


class TestStabilizationRule:
    def test_paper_default(self):
        rule = StabilizationRule()
        assert rule.n_readings == 20
        assert rule.rel_tolerance == 0.003

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            StabilizationRule(n_readings=1)
        with pytest.raises(ConfigurationError):
            StabilizationRule(rel_tolerance=0.0)

    def test_flat_signal_stable(self):
        assert is_stable(np.full(25, 500.0))

    def test_short_signal_unstable(self):
        assert not is_stable(np.full(10, 500.0))

    def test_spike_breaks_stability(self):
        signal = np.full(25, 500.0)
        signal[-5] = 600.0
        assert not is_stable(signal)

    def test_small_ripple_within_tolerance(self):
        rng = np.random.default_rng(1)
        signal = 500.0 + rng.normal(0, 0.2, 30)  # 0.04 % ripple
        assert is_stable(signal)

    def test_first_stable_index(self):
        noisy = np.concatenate([np.linspace(100, 500, 30), np.full(25, 500.0)])
        index = first_stable_index(noisy)
        assert index is not None
        assert 30 <= index < len(noisy)
        # The rule holds looking back n readings from the found index.
        assert is_stable(noisy[: index + 1][-20:])

    def test_never_stable_returns_none(self):
        alternating = np.array([100.0, 200.0] * 20)
        assert first_stable_index(alternating) is None

    def test_custom_rule(self):
        signal = np.full(6, 42.0)
        assert is_stable(signal, StabilizationRule(n_readings=5, rel_tolerance=0.01))
