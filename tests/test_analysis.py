"""Analysis layer: report rendering, tables, validation/comparison pipelines."""

import numpy as np
import pytest

from repro.analysis.comparison import compare_models
from repro.analysis.figures import build_figure_panels
from repro.analysis.report import format_table, format_value
from repro.analysis.tables import (
    render_table1,
    render_table2,
    render_table3_4,
    render_table6,
    render_table7,
)
from repro.analysis.validation import fit_wavm3_per_kind
from repro.errors import ExperimentError
from repro.models.features import HostRole


class TestReport:
    def test_basic_table(self):
        text = format_table(("a", "b"), [(1, 2.5), ("x", 0.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "|" in lines[1]
        assert len(lines) == 5  # title + header + separator + 2 rows

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a",), [(1, 2)])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table((), [])

    def test_float_formatting(self):
        assert format_value(1.5e-7) == "1.5e-07"
        assert format_value(2.400, precision=2) == "2.4"
        assert format_value(0.0) == "0"
        assert format_value(True) == "yes"

    def test_alignment(self):
        text = format_table(("col",), [(1,), (100,)])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])


class TestStaticTables:
    def test_table1_rows(self):
        table = render_table1()
        assert "multiple transfers of VM state" in table
        assert "no influence" in table

    def test_table2_content(self):
        table = render_table2()
        assert "matrixmult" in table and "migrating-cpu" in table
        assert "m01" in table and "o2" in table


class TestPipelines:
    def test_fit_per_kind(self, mini_campaign):
        train, _, _ = mini_campaign.train_test_split(training_fraction=0.34)
        models = fit_wavm3_per_kind(train)
        assert set(models) == {"non-live", "live"}
        assert all(m.fitted for m in models.values())

    def test_table3_4_render(self, mini_campaign):
        train, _, _ = mini_campaign.train_test_split(training_fraction=0.34)
        models = fit_wavm3_per_kind(train)
        text = render_table3_4(models["live"], live=True)
        assert "Table IV" in text and "gamma" in text
        text = render_table3_4(models["non-live"], live=False)
        assert "Table III" in text

    def test_compare_models_grid(self, mini_campaign):
        comparison = compare_models(result=mini_campaign, training_fraction=0.34)
        assert set(comparison.errors) == {"WAVM3", "HUANG", "LIU", "STRUNK"}
        for model_errors in comparison.errors.values():
            assert set(model_errors) == {"non-live", "live"}
            for kind_errors in model_errors.values():
                assert set(kind_errors) == {"source", "target"}
                for report in kind_errors.values():
                    assert report.n > 0 and np.isfinite(report.nrmse)

    def test_comparison_improvement_helper(self, mini_campaign):
        comparison = compare_models(result=mini_campaign, training_fraction=0.34)
        gain = comparison.improvement_over("LIU", "live", "source")
        assert np.isfinite(gain)

    def test_table6_table7_render(self, mini_campaign):
        comparison = compare_models(result=mini_campaign, training_fraction=0.34)
        t6 = render_table6(comparison)
        t7 = render_table7(comparison)
        assert "STRUNK" in t6 and "HUANG" in t6
        assert "NRMSE" in t7 and "WAVM3" in t7

    def test_subset_of_models(self, mini_campaign):
        comparison = compare_models(
            result=mini_campaign, model_names=("WAVM3", "HUANG"),
            training_fraction=0.34,
        )
        assert set(comparison.errors) == {"WAVM3", "HUANG"}


class TestFigureBuilders:
    def test_unknown_figure_rejected(self):
        with pytest.raises(ExperimentError):
            build_figure_panels("fig99")

    def test_panels_from_shared_campaign(self, mini_campaign):
        # The mini campaign carries CPULOAD-SOURCE scenarios; fig3 panels
        # built from it must only include those.
        panels = build_figure_panels("fig3", result=mini_campaign)
        assert len(panels) == 4
        for entries in panels.values():
            for label, series in entries:
                assert label.endswith("VM")
                assert series.times.size == series.watts.size
