"""The documentation suite stays healthy: links resolve, examples run.

Wraps ``tools/check_docs.py`` so the docs are part of tier-1: a broken
relative link in README/docs or a ``>>>`` example that no longer matches
the code fails the suite, not just the CI docs job.
"""

import importlib.util
import pathlib

import pytest

_TOOL = pathlib.Path(__file__).resolve().parents[1] / "tools" / "check_docs.py"
_spec = importlib.util.spec_from_file_location("check_docs", _TOOL)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_docs_exist():
    names = {path.name for path in check_docs.default_docs()}
    assert "README.md" in names
    assert "architecture.md" in names
    assert "parallel_campaigns.md" in names


@pytest.mark.parametrize("path", check_docs.default_docs(), ids=lambda p: p.name)
def test_links_resolve(path):
    assert check_docs.check_links(path) == []


@pytest.mark.parametrize("path", check_docs.default_docs(), ids=lambda p: p.name)
def test_doc_examples_run(path):
    failed, _attempted = check_docs.check_doctests(path)
    assert failed == 0


def test_doc_examples_are_actually_exercised():
    """The doctest pass must not silently go no-op: the suite contains
    at least the README and architecture examples."""
    total = sum(check_docs.check_doctests(p)[1] for p in check_docs.default_docs())
    assert total >= 4


def test_link_checker_catches_breakage(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [missing](no/such/file.md) and [ok](doc.md)", encoding="utf-8")
    problems = check_docs.check_links(doc)
    assert len(problems) == 1 and "no/such/file.md" in problems[0]
