"""CPU accountant: proportional sharing, multiplexing, invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import CpuAccountant
from repro.errors import CapacityError, ConfigurationError


class TestRegistration:
    def test_set_and_read(self):
        cpu = CpuAccountant(32)
        cpu.set_demand("vm:a", 4.0)
        assert cpu.demand("vm:a") == 4.0

    def test_unregistered_demand_zero(self):
        assert CpuAccountant(32).demand("ghost") == 0.0

    def test_remove(self):
        cpu = CpuAccountant(32)
        cpu.set_demand("vm:a", 4.0)
        cpu.remove("vm:a")
        assert cpu.total_demand() == 0.0

    def test_remove_missing_silent(self):
        CpuAccountant(32).remove("ghost")

    def test_add_demand_clamps_at_zero(self):
        cpu = CpuAccountant(32)
        cpu.set_demand("x", 1.0)
        cpu.add_demand("x", -5.0)
        assert cpu.demand("x") == 0.0

    def test_rejects_negative_demand(self):
        with pytest.raises(CapacityError):
            CpuAccountant(32).set_demand("x", -1.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            CpuAccountant(0)


class TestAggregates:
    def test_paper_load_levels(self):
        # CPULOAD-SOURCE: n load VMs x 4 vCPUs + migrating 4 vCPUs on 32
        # threads -> 12.5 % steps, multiplexed at 8 VMs.
        for n_vms, expected in [(0, 12.5), (1, 25.0), (3, 50.0), (5, 75.0), (7, 100.0), (8, 100.0)]:
            cpu = CpuAccountant(32)
            cpu.set_demand("vm:migrating", 4.0)
            for i in range(n_vms):
                cpu.set_demand(f"vm:load{i}", 4.0)
            assert cpu.utilisation_percent() == pytest.approx(expected)

    def test_multiplexing_flag(self):
        cpu = CpuAccountant(32)
        cpu.set_demand("a", 32.0)
        assert not cpu.multiplexing
        cpu.set_demand("b", 0.1)
        assert cpu.multiplexing

    def test_headroom(self):
        cpu = CpuAccountant(32)
        cpu.set_demand("a", 20.0)
        assert cpu.headroom_threads() == pytest.approx(12.0)
        cpu.set_demand("b", 20.0)
        assert cpu.headroom_threads() == 0.0

    def test_total_demand_excluding(self):
        cpu = CpuAccountant(32)
        cpu.set_demand("vm:a", 4.0)
        cpu.set_demand("migr:x", 1.5)
        assert cpu.total_demand_excluding("migr:x") == pytest.approx(4.0)


class TestProportionalSharing:
    def test_full_allocation_without_contention(self):
        cpu = CpuAccountant(32)
        cpu.set_demand("a", 10.0)
        assert cpu.allocation("a") == pytest.approx(10.0)
        assert cpu.allocation_fraction("a") == 1.0

    def test_scaled_allocation_under_multiplexing(self):
        cpu = CpuAccountant(32)
        cpu.set_demand("a", 24.0)
        cpu.set_demand("b", 24.0)
        assert cpu.allocation("a") == pytest.approx(16.0)
        assert cpu.allocation_fraction("a") == pytest.approx(2.0 / 3.0)

    def test_zero_demand_fraction_is_one(self):
        cpu = CpuAccountant(32)
        cpu.set_demand("a", 0.0)
        assert cpu.allocation_fraction("a") == 1.0

    @given(
        st.lists(st.floats(min_value=0.0, max_value=64.0), min_size=1, max_size=10),
        st.floats(min_value=1.0, max_value=128.0),
    )
    def test_allocations_never_exceed_capacity(self, demands, capacity):
        cpu = CpuAccountant(capacity)
        for i, d in enumerate(demands):
            cpu.set_demand(f"c{i}", d)
        total_alloc = sum(cpu.allocation(f"c{i}") for i in range(len(demands)))
        assert total_alloc <= capacity + 1e-9
        assert 0.0 <= cpu.utilisation_fraction() <= 1.0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=64.0), min_size=2, max_size=8)
    )
    def test_sharing_is_proportional(self, demands):
        cpu = CpuAccountant(8.0)
        for i, d in enumerate(demands):
            cpu.set_demand(f"c{i}", d)
        fractions = {cpu.allocation_fraction(f"c{i}") for i in range(len(demands))}
        # All entries are slowed by the same factor.
        assert max(fractions) - min(fractions) < 1e-9
