"""The distributed (file-based work queue) campaign backend.

Covers the spool claim protocol, the worker lifecycle, fault injection
(dead workers, corrupted cache entries, tampered specs) and the
end-to-end CLI path with real ``campaign-worker`` subprocesses.
"""

import json
import os
import pathlib
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro
from repro.errors import ExperimentError
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import (
    CampaignExecutor,
    RunBatchTask,
    RunCache,
    RunTask,
)
from repro.experiments.queue_backend import (
    QueueBackend,
    _claim_next_task,
    _Spool,
    run_worker,
    task_id_for,
)
from repro.experiments.results import ProgressEvent
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.io import (
    append_progress_event,
    load_progress_events,
    load_task_spec,
    save_samples_json,
    save_task_spec,
    task_spec_to_dict,
)
from repro.models.features import HostRole
from repro.telemetry.stabilization import StabilizationRule

SEED = 20150901

_SCENARIO = MigrationScenario("CPULOAD-SOURCE", "queue/lv/1vm", live=True, load_vm_count=1)


def _task(run_index: int = 0, seed: int = SEED, scenario: MigrationScenario = _SCENARIO) -> RunTask:
    settings = RunnerSettings()
    rule = StabilizationRule()
    key = RunCache.scenario_key(seed, scenario, settings, None, rule)
    return RunTask(
        seed=seed, settings=settings, migration_config=None,
        stabilization=rule, scenario=scenario, run_index=run_index, key=key,
    )


def _backend(tmp_path: pathlib.Path, **options) -> QueueBackend:
    options.setdefault("poll_interval", 0.02)
    return QueueBackend(tmp_path / "spool", RunCache(tmp_path / "cache"), **options)


def _start_workers(tmp_path: pathlib.Path, n: int = 1, **kwargs) -> list[threading.Thread]:
    """Worker loops in daemon threads (same claim/heartbeat protocol as
    separate processes; the subprocess path is covered by TestCliEndToEnd)."""
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("idle_exit_s", 60.0)
    threads = []
    for i in range(n):
        thread = threading.Thread(
            target=run_worker,
            args=(tmp_path / "spool", tmp_path / "cache"),
            kwargs={**kwargs, "worker_id": f"w{i}"},
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    return threads


class TestSpoolProtocol:
    def test_submit_writes_loadable_spec(self, tmp_path):
        backend = _backend(tmp_path)
        task = _task()
        backend.submit(task)
        spec_path = backend.spool.task_path(task_id_for(task))
        assert spec_path.exists()
        assert load_task_spec(spec_path) == task
        assert backend.stats.tasks_submitted == 1

    def test_task_id_requires_cache_key(self):
        keyless = RunTask(
            seed=SEED, settings=RunnerSettings(), migration_config=None,
            stabilization=StabilizationRule(), scenario=_SCENARIO, run_index=0,
        )
        with pytest.raises(ExperimentError):
            task_id_for(keyless)

    def test_claim_is_exclusive(self, tmp_path):
        backend = _backend(tmp_path)
        backend.submit(_task())
        first = _claim_next_task(backend.spool)
        assert first is not None and first.parent == backend.spool.claims
        assert _claim_next_task(backend.spool) is None  # nothing left to claim

    def test_claim_survives_utime_failure(self, tmp_path, monkeypatch):
        """Regression: a transient ``utime`` failure after a successful
        rename abandoned the claimed spec — stranded in ``claims/`` with
        no worker executing it — until the stale scan requeued it."""
        backend = _backend(tmp_path)
        backend.submit(_task())

        def _fail(path, *args, **kwargs):
            raise OSError("transient filesystem error")

        monkeypatch.setattr(os, "utime", _fail)
        claim = _claim_next_task(backend.spool)
        assert claim is not None and claim.exists()
        assert claim.parent == backend.spool.claims

    def test_claim_skipped_when_requeued_in_race_window(self, tmp_path, monkeypatch):
        """When the coordinator requeued the spec before the lease could
        be refreshed, the claim file is gone — the worker must move on."""
        backend = _backend(tmp_path)
        backend.submit(_task())

        def _fail_and_requeue(path, *args, **kwargs):
            target = pathlib.Path(path)
            target.rename(backend.spool.tasks / target.name)
            raise OSError("claim vanished underneath us")

        monkeypatch.setattr(os, "utime", _fail_and_requeue)
        assert _claim_next_task(backend.spool) is None

    def test_validation(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        with pytest.raises(ExperimentError):
            QueueBackend(tmp_path / "spool", cache, poll_interval=0.0)
        with pytest.raises(ExperimentError):
            QueueBackend(tmp_path / "spool", cache, stale_timeout=-1.0)

    def test_executor_requires_cache_and_spool(self, tmp_path):
        with pytest.raises(ExperimentError):
            CampaignExecutor(ScenarioRunner(seed=SEED), backend="queue",
                             spool_dir=tmp_path / "spool")
        with pytest.raises(ExperimentError):
            CampaignExecutor(ScenarioRunner(seed=SEED), backend="queue",
                             cache_dir=tmp_path / "cache")

    def test_runner_rejects_unknown_parallel_string(self):
        with pytest.raises(ExperimentError):
            ScenarioRunner(seed=SEED).run_campaign([_SCENARIO], parallel="cluster")


class TestCapacityIntrospection:
    def test_no_workers_means_unknown(self, tmp_path):
        backend = _backend(tmp_path)
        assert backend.active_workers() == 0
        assert backend.capacity is None

    def test_fresh_heartbeats_counted_stale_ignored(self, tmp_path):
        backend = _backend(tmp_path, worker_fresh_s=5.0)
        fresh = backend.spool.workers / "fresh.json"
        stale = backend.spool.workers / "stale.json"
        for beat in (fresh, stale):
            beat.write_text("{}", encoding="utf-8")
        os.utime(stale, (time.time() - 600, time.time() - 600))
        assert backend.active_workers() == 1
        assert backend.capacity == 1


class TestWorkerLifecycle:
    def test_worker_executes_and_deposits(self, tmp_path):
        backend = _backend(tmp_path)
        futures = [backend.submit(_task(i)) for i in range(2)]
        stats = run_worker(
            tmp_path / "spool", tmp_path / "cache",
            poll_interval=0.02, idle_exit_s=0.2,
        )
        assert stats.claimed == 2 and stats.executed == 2 and stats.failed == 0
        done = backend.wait(futures)
        assert done == set(futures)
        expected = ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=0)
        got = futures[0].result()
        assert np.array_equal(got.source_trace.watts, expected.source_trace.watts)

    def test_worker_short_circuits_cached_tasks(self, tmp_path):
        backend = _backend(tmp_path)
        task = _task()
        run = ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=0)
        backend.cache.put(task.key, run, key_payload=task.key_payload())
        backend.submit(task)
        stats = run_worker(
            tmp_path / "spool", tmp_path / "cache",
            poll_interval=0.02, idle_exit_s=0.2,
        )
        assert stats.claimed == 1 and stats.cached == 1 and stats.executed == 0

    def test_stop_sentinel_exits_immediately(self, tmp_path):
        spool = _Spool(tmp_path / "spool")
        spool.stop.touch()
        stats = run_worker(tmp_path / "spool", tmp_path / "cache")
        assert stats.claimed == 0

    def test_max_tasks_bounds_the_worker(self, tmp_path):
        backend = _backend(tmp_path)
        for i in range(3):
            backend.submit(_task(i))
        stats = run_worker(
            tmp_path / "spool", tmp_path / "cache",
            poll_interval=0.02, max_tasks=1,
        )
        assert stats.claimed == 1
        assert len(list(backend.spool.tasks.glob("*.json"))) == 2

    def test_idle_exit_without_work(self, tmp_path):
        started = time.monotonic()
        stats = run_worker(
            tmp_path / "spool", tmp_path / "cache",
            poll_interval=0.02, idle_exit_s=0.1,
        )
        assert stats.claimed == 0
        assert time.monotonic() - started < 10.0

    def test_heartbeat_file_removed_on_exit(self, tmp_path):
        run_worker(
            tmp_path / "spool", tmp_path / "cache",
            poll_interval=0.02, idle_exit_s=0.1, worker_id="wX",
        )
        assert not (tmp_path / "spool" / "workers" / "wX.json").exists()

    def test_shutdown_writes_stop_sentinel(self, tmp_path):
        backend = _backend(tmp_path, stop_workers_on_shutdown=True)
        backend.shutdown()
        assert backend.spool.stop.exists()


class TestFaultInjection:
    def test_stale_claim_requeued_and_completed(self, tmp_path):
        """A worker killed mid-task: its claim's heartbeat goes stale, the
        coordinator requeues it, and a live worker finishes the run."""
        backend = _backend(tmp_path, stale_timeout=0.5)
        future = backend.submit(_task())
        # Simulate the dead worker: the spec is claimed but never
        # heartbeated again (mtime frozen in the past).
        claim = _claim_next_task(backend.spool)
        assert claim is not None
        long_ago = time.time() - 60
        os.utime(claim, (long_ago, long_ago))

        workers = _start_workers(tmp_path, heartbeat_s=0.1)
        try:
            done = backend.wait([future])
        finally:
            backend.spool.stop.touch()
            for thread in workers:
                thread.join(timeout=30)
        assert done == {future}
        assert backend.stats.tasks_requeued == 1
        assert future.result().run_index == 0

    def test_fresh_claim_not_requeued(self, tmp_path):
        backend = _backend(tmp_path, stale_timeout=3600.0)
        backend.submit(_task())
        claim = _claim_next_task(backend.spool)
        backend._requeue_stale_claims()
        assert claim.exists()
        assert backend.stats.tasks_requeued == 0

    def test_corrupt_cache_result_recomputed(self, tmp_path):
        """A result file that fails validation is discarded and the task is
        respooled — garbage must never resolve a future."""
        backend = _backend(tmp_path)
        task = _task()
        future = backend.submit(task)
        # The spec vanishes (as after a claim) and a corrupt result appears.
        backend.spool.task_path(task_id_for(task)).unlink()
        run_path = backend.cache._run_path(task.key, task.run_index)
        run_path.parent.mkdir(parents=True, exist_ok=True)
        run_path.write_bytes(b"not a pickle")

        workers = _start_workers(tmp_path)
        try:
            done = backend.wait([future])
        finally:
            backend.spool.stop.touch()
            for thread in workers:
                thread.join(timeout=30)
        assert done == {future}
        assert backend.stats.corrupt_results == 1
        assert backend.stats.tasks_resubmitted == 1
        expected = ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=0)
        assert np.array_equal(future.result().source_trace.watts,
                              expected.source_trace.watts)

    def test_tampered_spec_fails_the_task(self, tmp_path):
        """A spec whose embedded key does not hash back to its contents is
        refused by the worker and surfaces as a campaign error."""
        backend = _backend(tmp_path)
        task = _task()
        future = backend.submit(task)
        tampered = RunTask(
            seed=task.seed + 1,  # contents no longer match task.key
            settings=task.settings, migration_config=None,
            stabilization=task.stabilization, scenario=task.scenario,
            run_index=task.run_index, key=task.key,
        )
        save_task_spec(tampered, backend.spool.task_path(task_id_for(task)))

        stats = run_worker(
            tmp_path / "spool", tmp_path / "cache",
            poll_interval=0.02, idle_exit_s=0.2,
        )
        assert stats.failed == 1
        done = backend.wait([future])
        assert done == {future}
        with pytest.raises(ExperimentError, match="does not match"):
            future.result()

    def test_unreadable_spec_fails_the_task(self, tmp_path):
        backend = _backend(tmp_path)
        task = _task()
        future = backend.submit(task)
        backend.spool.task_path(task_id_for(task)).write_text("{", encoding="utf-8")
        stats = run_worker(
            tmp_path / "spool", tmp_path / "cache",
            poll_interval=0.02, idle_exit_s=0.2,
        )
        assert stats.failed == 1
        backend.wait([future])
        with pytest.raises(ExperimentError):
            future.result()

    def test_resubmission_clears_stale_failure_record(self, tmp_path):
        """A failure record from a previous campaign must not poison a
        fresh submission of the same task."""
        backend = _backend(tmp_path)
        task = _task()
        backend.spool.failure_path(task_id_for(task)).write_text(
            json.dumps({"error": "old failure"}), encoding="utf-8"
        )
        future = backend.submit(task)
        run_worker(tmp_path / "spool", tmp_path / "cache",
                   poll_interval=0.02, idle_exit_s=0.2)
        done = backend.wait([future])
        assert done == {future}
        assert future.exception() is None

    def test_corrupted_cache_entry_recomputed_in_campaign(self, tmp_path):
        """Acceptance: hash-mismatching cache bytes are recomputed, and the
        campaign result is still bit-identical to the serial path."""
        scenarios = [_SCENARIO]
        serial = ScenarioRunner(seed=SEED).run_campaign(scenarios, min_runs=2, max_runs=2)

        def queue_campaign():
            executor = CampaignExecutor(
                ScenarioRunner(seed=SEED), backend="queue",
                cache_dir=tmp_path / "cache", spool_dir=tmp_path / "spool",
                queue_options={"poll_interval": 0.02, "stop_workers_on_shutdown": True},
            )
            workers = _start_workers(tmp_path)
            try:
                result = executor.run_campaign(scenarios, min_runs=2, max_runs=2)
            finally:
                executor._backend.shutdown()
                for thread in workers:
                    thread.join(timeout=30)
            return executor, result

        first_executor, _ = queue_campaign()
        assert first_executor.stats.runs_executed == 2
        for path in (tmp_path / "cache").rglob("run-*.pkl"):
            path.write_bytes(b"\x80\x04corrupted")
        (tmp_path / "spool" / "stop").unlink()

        second_executor, result = queue_campaign()
        assert second_executor.stats.runs_cached == 0
        assert second_executor.stats.runs_executed == 2  # recomputed, not returned
        for sa, sb in zip(serial.scenario_results, result.scenario_results):
            assert np.array_equal(
                sa.total_energies_j(HostRole.SOURCE),
                sb.total_energies_j(HostRole.SOURCE),
            )


class TestSeedBankFaultInjection:
    """A worker dies mid-bank: deposits survive, only the holes recompute."""

    _FAST = dict(
        min_warmup_s=2.0, max_warmup_s=6.0, min_post_s=2.0, max_post_s=6.0,
        check_interval_s=1.0,
    )
    _BANK_SCENARIO = MigrationScenario(
        "CPULOAD-SOURCE", "queue/bank/nl", live=False, load_vm_count=0
    )

    def _bank_task(self, run_count: int = 5) -> RunBatchTask:
        settings = RunnerSettings(seed_bank=8, **self._FAST)
        rule = StabilizationRule()
        key = RunCache.scenario_key(SEED, self._BANK_SCENARIO, settings, None, rule)
        return RunBatchTask(
            seed=SEED, settings=settings, migration_config=None,
            stabilization=rule, scenario=self._BANK_SCENARIO,
            run_start=0, run_count=run_count, key=key,
        )

    def _serve_one(self, tmp_path, worker_id: str) -> tuple:
        """A worker thread whose WorkerStats survive the join."""
        box = {}

        def serve():
            box["stats"] = run_worker(
                tmp_path / "spool", tmp_path / "cache",
                poll_interval=0.02, heartbeat_s=0.1,
                idle_exit_s=60.0, worker_id=worker_id,
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return thread, box

    def test_worker_killed_mid_bank_preserves_deposits_and_refills_holes(
        self, tmp_path
    ):
        """Acceptance: kill a queue worker mid-bank.  The per-run cache
        entries and progress lines it already flushed survive the requeue,
        the rescuing worker recomputes only the holes (banked), the final
        results are bit-identical to the per-run interior, and a warm
        rerun performs zero runs."""
        task = self._bank_task(run_count=5)
        backend = _backend(tmp_path, stale_timeout=0.5)
        future = backend.submit(task)

        # The doomed worker claims the bank and deposits runs 0 and 1 —
        # cache entries and progress lines hit the spool per run, not per
        # bank, so a mid-bank death loses only the unfinished tail.  Then
        # it dies: the claim's heartbeat freezes in the past.
        claim = _claim_next_task(backend.spool)
        assert claim is not None
        cache = RunCache(tmp_path / "cache")
        runner = ScenarioRunner(seed=task.seed, settings=task.settings)
        deposited = runner.run_batch(task.scenario, [0, 1])
        for run in deposited:
            cache.put(task.key, run, key_payload=task.key_payload())
            append_progress_event(
                ProgressEvent(
                    task_id=f"{task.key[:16]}-{run.run_index:04d}",
                    scenario=task.scenario.label, run_index=run.run_index,
                    worker="doomed", runs_completed=run.run_index + 1,
                    samples=1, wall_s=1.0, samples_per_s=1.0, at=time.time(),
                ),
                backend.spool.progress / "doomed.ndjson",
            )
        long_ago = time.time() - 60
        os.utime(claim, (long_ago, long_ago))

        rescue, box = self._serve_one(tmp_path, "rescue")
        try:
            done = backend.wait([future])
        finally:
            backend.spool.stop.touch()
            rescue.join(timeout=60)
        assert done == {future}
        assert backend.stats.tasks_requeued == 1

        # The rescuer served the dead worker's deposits from cache and
        # simulated only the three holes.  (The cached count can exceed 2
        # by a multiple of 5: a coordinator poll that starts before the
        # last deposit and finishes after the claim unlinks resubmits the
        # spec, and the worker serves the extra copy entirely from cache —
        # nothing re-executes either way.)
        stats = box["stats"]
        assert stats.executed == 3
        assert stats.cached % 5 == 2
        results = future.result()
        assert [run.run_index for run in results] == [0, 1, 2, 3, 4]

        # Banked recovery is bit-identical to the per-run interior.
        reference = ScenarioRunner(
            seed=SEED, settings=RunnerSettings(seed_bank=0, **self._FAST)
        ).run_batch(task.scenario, range(5))
        for expected, actual in zip(reference, results):
            assert expected.timeline.ms == actual.timeline.ms
            assert expected.timeline.bytes_total == actual.timeline.bytes_total
            assert np.array_equal(
                expected.source_trace.watts, actual.source_trace.watts
            )
            assert np.array_equal(
                expected.features.times, actual.features.times
            )

        # The dead worker's progress lines survived in its sidecar, and
        # the drained stream counts each run exactly once (the rescuer's
        # re-announcements supersede, never duplicate).
        survived = load_progress_events(backend.spool.progress / "doomed.ndjson")
        assert [event.run_index for event in survived] == [0, 1]
        drained = backend.drain_progress()
        assert sorted(event.run_index for event in drained) == [0, 1, 2, 3, 4]

        # Warm rerun: every index is already deposited, so the whole bank
        # short-circuits to cache hits and zero runs execute.  The worker
        # runs synchronously (max_tasks=1) before the coordinator polls,
        # otherwise the coordinator resolves straight from the cache and
        # the spec is never claimed at all.
        backend.spool.stop.unlink()
        warm_future = backend.submit(task)
        warm_stats = run_worker(
            tmp_path / "spool", tmp_path / "cache",
            poll_interval=0.02, heartbeat_s=0.1, max_tasks=1, worker_id="warm",
        )
        assert warm_stats.executed == 0
        assert warm_stats.cached == 5
        done = backend.wait([warm_future])
        assert done == {warm_future}
        assert [run.run_index for run in warm_future.result()] == [0, 1, 2, 3, 4]


class TestCliEndToEnd:
    def _spawn_worker(self, tmp_path, idx: int) -> subprocess.Popen:
        src_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "--cache-dir", str(tmp_path / "cache"),
                "campaign-worker",
                "--spool-dir", str(tmp_path / "spool"),
                "--poll-interval", "0.05",
                "--idle-exit", "60",
                "--worker-id", f"cli-w{idx}",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def test_two_worker_processes_bit_identical_then_all_cache_hits(self, tmp_path):
        """Acceptance: a queue campaign served by >= 2 real worker
        processes is byte-identical to serial, and a rerun performs zero
        new simulation runs."""
        scenarios = [
            _SCENARIO,
            MigrationScenario("MEMLOAD-VM", "queue/lv/dr55", live=True, dirty_percent=55.0),
        ]
        serial = ScenarioRunner(seed=SEED).run_campaign(scenarios, min_runs=2, max_runs=2)

        workers = [self._spawn_worker(tmp_path, i) for i in range(2)]
        runner = ScenarioRunner(seed=SEED)
        try:
            result = runner.run_campaign(
                scenarios, min_runs=2, max_runs=2, parallel="queue",
                cache_dir=tmp_path / "cache", spool_dir=tmp_path / "spool",
                queue_options={"poll_interval": 0.05, "stop_workers_on_shutdown": True},
            )
        finally:
            for proc in workers:
                try:
                    proc.wait(timeout=120)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        assert all(proc.returncode == 0 for proc in workers), [
            proc.stdout.read() for proc in workers
        ]
        assert runner.last_executor_stats.runs_executed == 4
        for sa, sb in zip(serial.scenario_results, result.scenario_results):
            assert sa.scenario == sb.scenario
            for role in (HostRole.SOURCE, HostRole.TARGET):
                assert np.array_equal(
                    sa.total_energies_j(role), sb.total_energies_j(role)
                )
            for ra, rb in zip(sa.runs, sb.runs):
                assert np.array_equal(ra.source_trace.watts, rb.source_trace.watts)
                assert ra.timeline.bytes_total == rb.timeline.bytes_total

        # Warm rerun: all cache hits, zero new simulation runs, no workers.
        rerun_runner = ScenarioRunner(seed=SEED)
        rerun = rerun_runner.run_campaign(
            scenarios, min_runs=2, max_runs=2, parallel="queue",
            cache_dir=tmp_path / "cache", spool_dir=tmp_path / "spool",
            queue_options={"poll_interval": 0.05},
        )
        assert rerun_runner.last_executor_stats.runs_executed == 0
        assert rerun_runner.last_executor_stats.runs_cached == 4
        for sa, sb in zip(result.scenario_results, rerun.scenario_results):
            assert np.array_equal(
                sa.total_energies_j(HostRole.SOURCE),
                sb.total_energies_j(HostRole.SOURCE),
            )


class TestClockSkew:
    """Spool freshness must be judged on the *file server's* clock.

    When the coordinator's clock disagrees with the filesystem serving the
    spool (NFS server, container host), naive ``time.time() - mtime`` ages
    are wrong by the skew: a coordinator running ahead sees every fresh
    claim as stale (requeue storms, duplicated work) and every live worker
    as dead.  The backend measures the skew with a probe file once per
    poll interval and offsets all ages, clamping negatives to zero.
    """

    def _fake_clock(self, monkeypatch, offset: float) -> None:
        real = time.time
        monkeypatch.setattr(time, "time", lambda: real() + offset)

    def test_coordinator_ahead_keeps_fresh_claims(self, tmp_path, monkeypatch):
        backend = _backend(tmp_path, stale_timeout=60.0)
        backend.submit(_task())
        claim = _claim_next_task(backend.spool)
        assert claim is not None
        # Coordinator clock jumps an hour ahead of the file server.
        self._fake_clock(monkeypatch, 3600.0)
        backend._skew_measured_at = None  # force a re-probe under the skew
        backend._requeue_stale_claims()
        assert claim.exists()
        assert backend.stats.tasks_requeued == 0

    def test_coordinator_ahead_still_sees_live_workers(self, tmp_path, monkeypatch):
        backend = _backend(tmp_path, worker_fresh_s=5.0)
        beat = backend.spool.workers / "w0.json"
        beat.write_text("{}", encoding="utf-8")
        self._fake_clock(monkeypatch, 3600.0)
        backend._skew_measured_at = None
        assert backend.active_workers() == 1
        assert backend.capacity == 1

    def test_genuine_staleness_detected_despite_skew(self, tmp_path, monkeypatch):
        """The skew offset must not mask claims that really are dead."""
        backend = _backend(tmp_path, stale_timeout=0.5)
        backend.submit(_task())
        claim = _claim_next_task(backend.spool)
        long_ago = time.time() - 60
        os.utime(claim, (long_ago, long_ago))
        self._fake_clock(monkeypatch, 3600.0)
        backend._skew_measured_at = None
        backend._requeue_stale_claims()
        assert not claim.exists()
        assert backend.stats.tasks_requeued == 1

    def test_coordinator_behind_clamps_negative_ages(self, tmp_path, monkeypatch):
        """File-server mtimes in the coordinator's future age as zero."""
        backend = _backend(tmp_path, stale_timeout=60.0, worker_fresh_s=5.0)
        backend.submit(_task())
        claim = _claim_next_task(backend.spool)
        beat = backend.spool.workers / "w0.json"
        beat.write_text("{}", encoding="utf-8")
        self._fake_clock(monkeypatch, -3600.0)
        backend._skew_measured_at = None
        backend._requeue_stale_claims()
        assert claim.exists()
        assert backend.stats.tasks_requeued == 0
        assert backend.active_workers() == 1

    def test_probe_memoized_per_poll_interval(self, tmp_path, monkeypatch):
        import repro.experiments.queue_backend as qb

        backend = _backend(tmp_path, poll_interval=60.0)
        probes = []
        real_measure = qb._measure_spool_skew
        monkeypatch.setattr(
            qb, "_measure_spool_skew",
            lambda root: (probes.append(root), real_measure(root))[1],
        )
        backend._spool_now()
        backend._spool_now()
        backend._spool_now()
        assert len(probes) == 1  # one probe per poll interval, not per call

    def test_probe_failure_degrades_to_zero_skew(self, tmp_path):
        from repro.experiments.queue_backend import _measure_spool_skew

        assert _measure_spool_skew(tmp_path / "does-not-exist") == 0.0

    def test_spool_gc_honours_file_server_clock(self, tmp_path, monkeypatch):
        from repro.experiments.queue_backend import spool_gc

        backend = _backend(tmp_path)
        backend.submit(_task())  # fresh spec, mtime = file-server now
        stale = backend.spool.failed / "old.json"
        stale.write_text("{}", encoding="utf-8")
        long_ago = time.time() - 7200
        os.utime(stale, (long_ago, long_ago))
        # An hour of coordinator skew must not make the fresh spec eligible.
        self._fake_clock(monkeypatch, 3600.0)
        report = spool_gc(tmp_path / "spool", max_age_s=3600.0)
        assert report["files"] == ["failed/old.json"]
        assert report["failures"] == 1
        assert list(backend.spool.tasks.glob("*.json"))  # fresh spec survived


class TestDuplicatePublication:
    """Two workers finishing the same speculated batch: the adaptive
    scheduler may re-submit a straggling chunk, so a second worker can
    legitimately execute and publish a task that already completed.  The
    cache deposit must be idempotent, progress accounting must stay
    single per run, and both publications must serialise byte-identical
    samples."""

    def _batch_task(self, run_count: int = 2) -> RunBatchTask:
        settings = RunnerSettings()
        rule = StabilizationRule()
        key = RunCache.scenario_key(SEED, _SCENARIO, settings, None, rule)
        return RunBatchTask(
            seed=SEED, settings=settings, migration_config=None,
            stabilization=rule, scenario=_SCENARIO,
            run_start=0, run_count=run_count, key=key,
        )

    def test_speculated_batch_finished_by_two_workers(self, tmp_path):
        backend = _backend(tmp_path)
        task = self._batch_task(run_count=2)

        first = backend.submit(task)
        stats1 = run_worker(
            tmp_path / "spool", tmp_path / "cache",
            poll_interval=0.02, max_tasks=1, idle_exit_s=60.0, worker_id="w1",
        )
        assert stats1.claimed == 1 and stats1.executed == 2

        # The speculative clone: the coordinator re-submits the same
        # chunk (same task id, same cache key) to another lane.
        second = backend.submit(task)
        stats2 = run_worker(
            tmp_path / "spool", tmp_path / "cache",
            poll_interval=0.02, max_tasks=1, idle_exit_s=60.0, worker_id="w2",
        )
        # Idempotent deposit: w2 short-circuits from the cache entries
        # w1 already wrote — nothing is simulated twice.
        assert stats2.claimed == 1 and stats2.executed == 0
        assert stats2.cached > 0

        done = backend.wait([first, second])
        assert done == {first, second}
        runs1, runs2 = first.result(), second.result()
        assert [r.run_index for r in runs1] == [0, 1]

        # Byte-identical samples JSON from either publication.
        roles = (HostRole.SOURCE, HostRole.TARGET)
        save_samples_json(
            [run.sample_for(role) for run in runs1 for role in roles],
            tmp_path / "first.json",
        )
        save_samples_json(
            [run.sample_for(role) for run in runs2 for role in roles],
            tmp_path / "second.json",
        )
        assert (tmp_path / "first.json").read_bytes() == (
            tmp_path / "second.json"
        ).read_bytes()

        # Single progress accounting: both workers announced the same
        # per-run progress ids; the drain keeps the latest per task id.
        events = backend.drain_progress()
        ids = [event.task_id for event in events]
        assert len(ids) == len(set(ids)) == 2
        assert sorted(event.run_index for event in events) == [0, 1]
