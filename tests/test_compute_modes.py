"""The ``compute=`` kernel axis: bit-identity and its building blocks.

The tentpole guarantee: ``RunnerSettings(compute="python")`` (the
all-scalar reference), ``"numpy"`` (the vectorized default) and
``"numba"`` (the JIT-compiled hybrid, where numba is installed) produce
**byte-identical** campaign samples JSON — same RNG stream consumption,
same float operations, on every scenario archetype and on serial and
distributed backends alike.  The unit tests pin the equivalences the
array kernels rest on: the vectorized sampler tick grid, the contiguous
noise tick grids, the SoA arena's view stability, the host/VM kernels
against their scalar counterparts, and the dirty-counter slot binding.
"""

import threading

import numpy as np
import pytest

from repro.cluster import PhysicalHost, machine_spec
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import CampaignExecutor, RunCache
from repro.experiments.queue_backend import run_worker
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.hypervisor import VirtualMachine
from repro.hypervisor.memory import VmMemory
from repro.io import save_samples_json
from repro.simulator.kernels import (
    COMPUTE_MODES,
    HAVE_NUMBA,
    HOST_DTYPE,
    VM_DTYPE,
    KernelArena,
    NoiseTickGrid,
    resolve_compute,
    sampler_tick_grid,
    validate_compute,
)
from repro.simulator.noise import hash_normal_unit, hash_normal_unit_fill
from repro.telemetry.stabilization import StabilizationRule
from repro.workloads import MatrixMultWorkload

#: Fast protocol settings for cross-mode sweeps (shape preserved: warmup,
#: stabilisation checks, migration wait, post-measurement all exercised).
FAST = dict(
    min_warmup_s=2.0, max_warmup_s=6.0, min_post_s=2.0, max_post_s=6.0,
    check_interval_s=1.0,
)

#: One scenario per archetype of the Table IIa design.
ARCHETYPES = [
    MigrationScenario("CPULOAD-SOURCE", "comp/lv/1vm", live=True, load_vm_count=1),
    MigrationScenario("CPULOAD-SOURCE", "comp/nl/0vm", live=False, load_vm_count=0),
    MigrationScenario(
        "CPULOAD-TARGET", "comp/lv/tgt3", live=True, load_vm_count=3, load_on="target"
    ),
    MigrationScenario("MEMLOAD-VM", "comp/lv/dr55", live=True, dirty_percent=55.0),
    MigrationScenario(
        "MEMLOAD-SOURCE", "comp/lv/mem", live=True, load_vm_count=1,
        dirty_percent=95.0,
    ),
]

#: Every mode testable in this environment ("numba" covered in its CI lane).
MODES = ["python", "numpy"] + (["numba"] if HAVE_NUMBA else [])


def _runner(mode: str, seed: int, **overrides) -> ScenarioRunner:
    settings = RunnerSettings(compute=mode, **{**FAST, **overrides})
    return ScenarioRunner(seed=seed, settings=settings)


class TestGoldenCrossMode:
    """python vs numpy (vs numba): the same bits, per sample, per artifact."""

    @pytest.mark.parametrize("seed", [0, 20150901])
    def test_campaign_samples_json_byte_identical(self, tmp_path, seed):
        """Acceptance: the campaign samples JSON is byte-identical."""
        blobs = {}
        for mode in MODES:
            result = _runner(mode, seed).run_campaign(
                ARCHETYPES, min_runs=2, max_runs=2
            )
            path = tmp_path / f"{mode}-{seed}.json"
            save_samples_json(result.samples(), path)
            blobs[mode] = path.read_bytes()
        reference = blobs["python"]
        for mode in MODES[1:]:
            assert blobs[mode] == reference, f"compute={mode!r} diverged"

    @pytest.mark.parametrize("scenario", ARCHETYPES, ids=lambda s: s.label)
    def test_every_trace_bit_identical(self, scenario):
        """Beyond the JSON: every recorded array matches to the last bit."""
        a = _runner("python", 7).run_once(scenario, 0)
        b = _runner("numpy", 7).run_once(scenario, 0)
        assert np.array_equal(a.source_trace.times, b.source_trace.times)
        assert np.array_equal(a.source_trace.watts, b.source_trace.watts)
        assert np.array_equal(a.target_trace.times, b.target_trace.times)
        assert np.array_equal(a.target_trace.watts, b.target_trace.watts)
        assert np.array_equal(a.features.times, b.features.times)
        for column in a.features.columns:
            assert np.array_equal(a.features.column(column), b.features.column(column))
        assert a.timeline.ms == b.timeline.ms
        assert a.timeline.me == b.timeline.me
        assert a.timeline.bytes_total == b.timeline.bytes_total

    def test_dstat_traces_bit_identical(self):
        from repro.experiments.testbed import Testbed

        beds = {}
        for mode in MODES:
            bed = Testbed(seed=11, compute=mode)
            bed.start_instrumentation()
            for _ in range(10):
                bed.sim.run_for(2.5)
            bed.stop_instrumentation()
            beds[mode] = bed
        for attr in ("source_dstat", "target_dstat"):
            ref = getattr(beds["python"], attr).trace
            for mode in MODES[1:]:
                other = getattr(beds[mode], attr).trace
                assert np.array_equal(ref.times, other.times)
                for column in ref.columns:
                    assert np.array_equal(ref.column(column), other.column(column))

    def test_distributed_queue_backend_matches_serial_reference(self, tmp_path):
        """Acceptance: byte-identity holds across a distributed backend.

        A queue-backed campaign computing in the vectorized default mode
        must reproduce the serial all-scalar reference byte for byte.
        """
        scenario = ARCHETYPES[0]
        serial = _runner("python", 3).run_campaign([scenario], min_runs=2, max_runs=2)
        spool, cache = tmp_path / "spool", tmp_path / "cache"
        executor = CampaignExecutor(
            _runner("numpy", 3), backend="queue", cache_dir=cache, spool_dir=spool,
            queue_options={"poll_interval": 0.02, "stop_workers_on_shutdown": True},
        )
        worker = threading.Thread(
            target=run_worker, args=(spool, cache),
            kwargs={"poll_interval": 0.02, "worker_id": "cm0", "idle_exit_s": 60.0},
        )
        worker.start()
        try:
            queued = executor.run_campaign([scenario], min_runs=2, max_runs=2)
        finally:
            worker.join()
        blobs = {}
        for name, result in (("serial", serial), ("queued", queued)):
            path = tmp_path / f"{name}.json"
            save_samples_json(result.samples(), path)
            blobs[name] = path.read_bytes()
        assert blobs["serial"] == blobs["queued"]

    def test_compute_mode_does_not_split_the_cache_key(self):
        scenario = ARCHETYPES[0]
        keys = {
            mode: RunCache.scenario_key(
                1, scenario, RunnerSettings(compute=mode), None, StabilizationRule()
            )
            for mode in COMPUTE_MODES
        }
        assert len(set(keys.values())) == 1


class TestModeSelection:
    def test_validate_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            validate_compute("cython")
        assert validate_compute("python") == "python"

    def test_resolve_applies_numba_fallback(self):
        assert resolve_compute("python") == "python"
        assert resolve_compute("numpy") == "numpy"
        assert resolve_compute("numba") == ("numba" if HAVE_NUMBA else "numpy")
        with pytest.raises(ConfigurationError):
            resolve_compute("fortran")

    def test_testbed_rejects_unknown_mode(self):
        from repro.experiments.testbed import Testbed

        with pytest.raises(ConfigurationError):
            Testbed(seed=0, compute="fortran")

    def test_runner_settings_reject_unknown_mode(self):
        with pytest.raises(ExperimentError):
            RunnerSettings(compute="fortran")

    def test_cli_exposes_compute_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["--compute", "python", "scenarios"])
        assert args.compute == "python"
        assert build_parser().parse_args(["scenarios"]).compute == "numpy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--compute", "fortran", "scenarios"])


class TestSamplerTickGrid:
    def _scalar_ticks(self, base, k0, period, t1):
        """The scalar generation loop sampler_tick_grid must replay."""
        ticks, k = [], k0
        while True:
            t = base + k * period
            if t > t1:
                break
            ticks.append(t)
            k += 1
        return ticks, k

    @pytest.mark.parametrize(
        "base,k0,period,t1",
        [
            (0.25, 1, 0.5, 30.0),
            (0.25, 7, 0.5, 3.6),
            (0.1, 0, 1.0, 0.05),       # no tick in the interval
            (1.0 / 3.0, 2, 0.1, 7.77),  # awkward binary fractions
            (0.0, 5, 0.5, 2.5),         # boundary tick exactly at t1
            (123456.75, 10, 0.5, 123500.0),
        ],
    )
    def test_matches_scalar_loop(self, base, k0, period, t1):
        expected_ticks, expected_k = self._scalar_ticks(base, k0, period, t1)
        grid, next_k = sampler_tick_grid(base, k0, period, t1)
        assert next_k == expected_k
        if not expected_ticks:
            assert grid is None
        else:
            assert grid.tolist() == expected_ticks  # exact float equality

    def test_matches_scalar_loop_swept(self):
        for k0 in range(0, 40, 3):
            for n1000 in range(0, 5000, 171):
                t1 = n1000 / 1000.0
                expected_ticks, expected_k = self._scalar_ticks(0.25, k0, 0.5, t1)
                grid, next_k = sampler_tick_grid(0.25, k0, 0.5, t1)
                assert next_k == expected_k
                assert (grid.tolist() if grid is not None else []) == expected_ticks


class TestNoiseTickGrid:
    def test_fill_matches_scalar_draws(self):
        values = hash_normal_unit_fill(9, "cpu:m01", -3, 17)
        assert values.shape == (20,)
        for i, tick in enumerate(range(-3, 17)):
            assert values[i] == hash_normal_unit(9, "cpu:m01", tick)

    def test_grid_extends_without_changing_values(self):
        grid = NoiseTickGrid(5, "cpu:m01")
        first = grid.value(10)
        assert grid.size == 1
        before = grid.value(2)   # extends at the front
        after = grid.value(20)   # extends at the back
        assert grid.size == 19
        assert grid.value(10) == first == hash_normal_unit(5, "cpu:m01", 10)
        assert before == hash_normal_unit(5, "cpu:m01", 2)
        assert after == hash_normal_unit(5, "cpu:m01", 20)

    def test_gather_pair_matches_scalar_draws(self):
        grid = NoiseTickGrid(5, "cpu:m01")
        cur = np.arange(4, 12, dtype=np.int64)
        prv = cur - 1
        cur_v, prv_v = grid.gather_pair(cur, prv)
        for i in range(cur.size):
            assert cur_v[i] == hash_normal_unit(5, "cpu:m01", int(cur[i]))
            assert prv_v[i] == hash_normal_unit(5, "cpu:m01", int(prv[i]))


class TestKernelArena:
    def test_rows_are_zeroed_length_one_views(self):
        arena = KernelArena(chunk=4)
        row = arena.alloc(HOST_DTYPE)
        assert row.shape == (1,) and row.dtype == HOST_DTYPE
        assert row["idle_w"][0] == 0.0
        assert arena.count(HOST_DTYPE) == 1

    def test_growth_preserves_existing_views(self):
        arena = KernelArena(chunk=2)
        rows = [arena.alloc(VM_DTYPE) for _ in range(5)]
        for i, row in enumerate(rows):
            row["dirty_logged"] = 100 + i
        # Growth appended chunks; earlier views must still see their slot.
        assert [int(r["dirty_logged"][0]) for r in rows] == [100, 101, 102, 103, 104]
        assert arena.count(VM_DTYPE) == 5
        assert arena.count(HOST_DTYPE) == 0

    def test_rejects_bad_chunk(self):
        with pytest.raises(ConfigurationError):
            KernelArena(chunk=0)


class TestKernelVsScalar:
    """Direct array-kernel vs scalar-kernel equality on live state."""

    def _bed(self):
        from repro.experiments.testbed import Testbed

        bed = Testbed(seed=3, compute="numpy")
        bed.sim.run_for(1.0)  # move off t=0 so prev ticks are in range
        return bed

    def test_power_block_matches_scalar_kernel(self):
        bed = self._bed()
        times_list = [1.0 + 0.5 * k for k in range(1, 40)]
        times = np.asarray(times_list, dtype=np.float64)
        kernel = bed.source.attach_kernel(mode="numpy")
        vec = kernel.power_block(times, times_list)
        scalar = bed.source.instantaneous_power_values(times_list)
        assert vec.tolist() == scalar  # exact float equality

    def test_util_block_matches_published_memo(self):
        bed = self._bed()
        times_list = [1.0 + 0.5 * k for k in range(1, 40)]
        times = np.asarray(times_list, dtype=np.float64)
        kernel = bed.target.attach_kernel(mode="numpy")
        u = kernel.util_block(times, times_list)
        # The block published every read into the host's per-timestamp
        # memo, which the scalar short-block readers consume.
        for t, value in zip(times_list, u.tolist()):
            assert bed.target.cpu_utilisation_fraction_cached(t) == value
        # A second read serves fully from the memo — identical bits.
        assert kernel.util_block(times, times_list).tolist() == u.tolist()

    def test_vm_cpu_percent_block_matches_scalar_kernel(self):
        vm = VirtualMachine(
            "kern", 4, 512, MatrixMultWorkload(vm_ram_mb=512), noise_seed=17
        )
        vm.mark_running()
        kernel = vm.attach_kernel()
        times_list = [1.0 + 0.5 * k for k in range(1, 40)]
        times = np.asarray(times_list, dtype=np.float64)
        vec = kernel.cpu_percent_block(times, times_list)
        scalar = vm.cpu_percent_values(times_list)
        assert vec.tolist() == scalar

    def test_stopped_vm_reads_zero(self):
        vm = VirtualMachine("idle", 1, 512, noise_seed=1)
        kernel = vm.attach_kernel()
        times_list = [0.5, 1.0, 1.5]
        times = np.asarray(times_list, dtype=np.float64)
        assert kernel.cpu_percent_block(times, times_list).tolist() == [0.0, 0.0, 0.0]
        assert int(kernel.row["running"][0]) == 0


class TestDirtySlotBinding:
    def test_counter_rides_the_bound_row(self):
        mem = VmMemory(64)
        mem.enable_logging()
        mem._dirty_logged = 7
        row = KernelArena(chunk=1).alloc(VM_DTYPE)
        mem.bind_dirty_slot(row)
        # The bind carried the count over; reads and writes go through
        # the row's int64 slot from now on.
        assert int(row["dirty_logged"][0]) == 7
        assert mem._dirty_logged == 7
        mem._dirty_logged += 5
        assert int(row["dirty_logged"][0]) == 12
        assert mem.dirty_count() == 12

    def test_vm_attach_binds_the_slot(self):
        vm = VirtualMachine("dsb", 1, 64, noise_seed=2)
        vm.memory.enable_logging()
        vm.memory._dirty_logged = 3
        kernel = vm.attach_kernel()
        assert int(kernel.row["dirty_logged"][0]) == 3
        vm.memory._dirty_logged = 9
        assert int(kernel.row["dirty_logged"][0]) == 9

    def test_unbound_counter_still_local(self):
        mem = VmMemory(64)
        mem.enable_logging()
        mem._dirty_logged = 4
        assert mem.dirty_count() == 4


class TestHostKernelRefresh:
    def test_static_envelope_mirrors_power_params(self):
        host = PhysicalHost(machine_spec("m01"), noise_seed=3)
        kernel = host.attach_kernel(mode="numpy")
        params = host.power_model.params
        row = kernel.row
        assert row["idle_w"][0] == params.idle_w
        assert row["memory_w"][0] == params.memory_w
        assert row["nic_w"][0] == params.nic_w
        assert row["drift_sigma_w"][0] == params.drift_sigma_w

    def test_attach_is_idempotent(self):
        host = PhysicalHost(machine_spec("m01"), noise_seed=3)
        assert host.attach_kernel(mode="numpy") is host.attach_kernel(mode="numpy")

    def test_refresh_tracks_cpu_version(self):
        host = PhysicalHost(machine_spec("m01"), noise_seed=3)
        kernel = host.attach_kernel(mode="numpy")
        kernel.refresh()
        idle_base = kernel._base
        host.cpu.set_demand("load", 4.0)
        kernel.refresh()
        assert kernel._base > idle_base
        assert kernel._base == host.cpu.utilisation_fraction()
        assert int(kernel.row["cpu_version"][0]) == host.cpu._version
