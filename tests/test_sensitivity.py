"""The D5 sensitivity-analysis module."""

import pytest

from repro.analysis.sensitivity import KNOBS, sweep_precopy_knob
from repro.errors import ExperimentError


class TestSweepValidation:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ExperimentError):
            sweep_precopy_knob("page_size", (1, 2))

    def test_empty_values_rejected(self):
        with pytest.raises(ExperimentError):
            sweep_precopy_knob("max_iterations", ())

    def test_knob_catalogue(self):
        assert set(KNOBS) == {
            "max_iterations", "dirty_threshold_pages", "max_transfer_factor"
        }


class TestSweepBehaviour:
    @pytest.fixture(scope="class")
    def iteration_study(self):
        return sweep_precopy_knob("max_iterations", (2, 29), seed=5, runs=2)

    def test_points_carry_knob_values(self, iteration_study):
        assert [p.value for p in iteration_study.points] == [2.0, 29.0]
        assert all(p.knob == "max_iterations" for p in iteration_study.points)

    def test_more_iterations_more_rounds(self, iteration_study):
        low, high = iteration_study.points
        assert high.rounds >= low.rounds

    def test_observables_positive(self, iteration_study):
        for point in iteration_study.points:
            assert point.transfer_s > 0
            assert point.data_gib > 0
            assert point.source_energy_kj > 0

    def test_column_and_monotone_helpers(self, iteration_study):
        rounds = iteration_study.column("rounds")
        assert rounds.shape == (2,)
        assert iteration_study.monotone_response("rounds")

    def test_cap_limits_data(self):
        study = sweep_precopy_knob("max_transfer_factor", (1.2, 3.0), seed=5, runs=2)
        tight, loose = study.points
        assert tight.data_gib <= loose.data_gib
        # 4 GB VM: data bounded by cap x RAM + the final stop-and-copy.
        assert tight.data_gib <= 1.2 * 4.0 + 4.0
