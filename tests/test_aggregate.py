"""Streaming columnar campaign aggregation (``wavm3-columnar/1``).

Covers the online moment accumulators against numpy, the sharded
columnar store round-trip (order, arrays, scalars, notes), the manifest
summary, and the acceptance contract that matters most: samples routed
through the columnar store — or through the streaming JSON writer —
serialise to **byte-identical** JSON as the in-memory
``save_samples_json`` path.
"""

import json
import math

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.aggregate import (
    ColumnarStore,
    OnlineMoments,
    iter_columnar_samples,
    load_columnar_summary,
    write_samples_json_streaming,
)
from repro.experiments.design import MigrationScenario
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.io import COLUMNAR_SCHEMA, save_samples_json
from repro.models.features import HostRole, MigrationSample

SEED = 20150901

FAST = dict(
    min_warmup_s=2.0, max_warmup_s=6.0, min_post_s=2.0, max_post_s=6.0,
    check_interval_s=1.0,
)


def _synth_samples(count: int = 10, readings: int = 8, seed: int = 7):
    rng = np.random.default_rng(seed)
    samples = []
    for index in range(count):
        samples.append(MigrationSample(
            scenario=f"agg/synth/{index}",
            experiment="CPULOAD-SOURCE",
            live=bool(index % 2),
            family="m",
            role=HostRole.SOURCE if index % 2 else HostRole.TARGET,
            run_index=index,
            times=np.arange(1, readings + 1, dtype=np.float64),
            power_w=rng.uniform(40.0, 90.0, readings),
            phase=rng.integers(0, 4, readings).astype(np.int64),
            cpu_host_pct=rng.uniform(0.0, 100.0, readings),
            cpu_vm_pct=rng.uniform(0.0, 100.0, readings),
            bw_bps=rng.uniform(0.0, 1.18e9, readings),
            dr_pct=rng.uniform(0.0, 30.0, readings),
            data_bytes=float(rng.integers(1, 1 << 33)),
            mem_mb=4096.0,
            mean_bw_bps=9.0e8,
            energy_initiation_j=float(rng.uniform(1.0, 10.0)),
            energy_transfer_j=float(rng.uniform(10.0, 400.0)),
            energy_activation_j=float(rng.uniform(1.0, 10.0)),
            downtime_s=float(rng.uniform(0.0, 3.0)),
            notes={"lane": f"l{index % 3}"} if index % 4 == 0 else {},
        ))
    return samples


class TestOnlineMoments:
    def test_push_matches_numpy(self):
        values = np.random.default_rng(0).normal(50.0, 12.0, 257)
        moments = OnlineMoments()
        for value in values:
            moments.push(float(value))
        assert moments.count == values.size
        assert moments.mean == pytest.approx(float(values.mean()), rel=1e-12)
        assert moments.variance == pytest.approx(
            float(values.var(ddof=1)), rel=1e-10
        )
        assert moments.std == pytest.approx(float(values.std(ddof=1)), rel=1e-10)

    def test_push_many_merge_matches_numpy(self):
        rng = np.random.default_rng(1)
        chunks = [rng.uniform(0.0, 1e6, n) for n in (1, 17, 0, 256, 3)]
        moments = OnlineMoments()
        for chunk in chunks:
            moments.push_many(chunk)
        everything = np.concatenate(chunks)
        assert moments.count == everything.size
        assert moments.mean == pytest.approx(float(everything.mean()), rel=1e-12)
        assert moments.variance == pytest.approx(
            float(everything.var(ddof=1)), rel=1e-9
        )

    def test_below_two_observations(self):
        moments = OnlineMoments()
        assert math.isnan(moments.variance) and math.isnan(moments.std)
        assert moments.as_dict() == {"count": 0, "mean": None, "var": None}
        moments.push(3.5)
        assert math.isnan(moments.variance)
        as_dict = moments.as_dict()
        assert as_dict == {"count": 1, "mean": 3.5, "var": None}
        json.dumps(as_dict)  # strictly JSON-ready: no NaN leaks


class TestColumnarStore:
    def test_flush_window_validated(self, tmp_path):
        with pytest.raises(ExperimentError, match="flush_window"):
            ColumnarStore(tmp_path / "c", flush_window=0)

    def test_refuses_existing_store(self, tmp_path):
        ColumnarStore(tmp_path / "c")
        with pytest.raises(ExperimentError, match="already holds"):
            ColumnarStore(tmp_path / "c")

    def test_round_trip_preserves_order_arrays_and_scalars(self, tmp_path):
        samples = _synth_samples(count=10)
        store = ColumnarStore(tmp_path / "c", flush_window=4)
        store.extend(samples)
        summary = store.finalize()
        assert summary["samples"] == 10
        assert summary["shards"] == 3  # 4 + 4 + 2
        assert len(list((tmp_path / "c").glob("shard-*.npz"))) == 3

        loaded = list(iter_columnar_samples(tmp_path / "c"))
        assert len(loaded) == len(samples)
        for out, ref in zip(loaded, samples):
            assert out.scenario == ref.scenario
            assert out.role == ref.role
            assert out.live == ref.live
            assert out.run_index == ref.run_index
            assert out.notes == ref.notes
            assert out.data_bytes == ref.data_bytes
            assert out.downtime_s == ref.downtime_s
            np.testing.assert_array_equal(out.times, ref.times)
            np.testing.assert_array_equal(out.power_w, ref.power_w)
            np.testing.assert_array_equal(out.phase, ref.phase)
            np.testing.assert_array_equal(out.bw_bps, ref.bw_bps)
            np.testing.assert_array_equal(out.dr_pct, ref.dr_pct)

    def test_summary_moments_match_numpy(self, tmp_path):
        samples = _synth_samples(count=6)
        store = ColumnarStore(tmp_path / "c", flush_window=256)
        store.extend(samples)
        summary = store.finalize()
        power = np.concatenate([s.power_w for s in samples])
        column = summary["columns"]["power_w"]
        assert column["count"] == power.size
        assert column["mean"] == pytest.approx(float(power.mean()), rel=1e-10)
        assert column["var"] == pytest.approx(float(power.var(ddof=1)), rel=1e-8)
        downtimes = np.array([s.downtime_s for s in samples])
        column = summary["columns"]["downtime_s"]
        assert column["count"] == len(samples)
        assert column["mean"] == pytest.approx(float(downtimes.mean()), rel=1e-10)

    def test_append_after_finalize_rejected(self, tmp_path):
        store = ColumnarStore(tmp_path / "c")
        store.extend(_synth_samples(count=1))
        store.finalize()
        with pytest.raises(ExperimentError, match="finalized"):
            store.append(_synth_samples(count=1)[0])
        with pytest.raises(ExperimentError, match="finalized"):
            store.finalize()

    def test_summary_loader(self, tmp_path):
        store = ColumnarStore(tmp_path / "c", flush_window=2)
        store.extend(_synth_samples(count=3))
        assert load_columnar_summary(tmp_path / "c") is None  # not finalized yet
        store.finalize()
        summary = load_columnar_summary(tmp_path / "c")
        assert summary is not None
        assert summary["samples"] == 3 and summary["shards"] == 2

    def test_manifest_header_carries_schema(self, tmp_path):
        store = ColumnarStore(tmp_path / "c")
        store.finalize()
        first = (tmp_path / "c" / ColumnarStore.MANIFEST).read_text(
            encoding="utf-8"
        ).splitlines()[0]
        assert json.loads(first)["schema"] == COLUMNAR_SCHEMA

    def test_empty_store_round_trips(self, tmp_path):
        store = ColumnarStore(tmp_path / "c")
        summary = store.finalize()
        assert summary["samples"] == 0 and summary["shards"] == 0
        assert list(iter_columnar_samples(tmp_path / "c")) == []


class TestByteIdentity:
    """The acceptance contract: whichever path samples take — in-memory
    list, streaming generator, or a columnar store round-trip — the JSON
    artifact must come out byte for byte identical."""

    def _assert_all_paths_identical(self, samples, tmp_path):
        reference = tmp_path / "reference.json"
        save_samples_json(samples, reference)

        streamed = tmp_path / "streamed.json"
        count = write_samples_json_streaming(iter(samples), streamed)
        assert count == len(samples)
        assert streamed.read_bytes() == reference.read_bytes()

        store = ColumnarStore(tmp_path / "columnar", flush_window=3)
        store.extend(samples)
        store.finalize()
        round_tripped = tmp_path / "columnar.json"
        count = write_samples_json_streaming(
            iter_columnar_samples(tmp_path / "columnar"), round_tripped
        )
        assert count == len(samples)
        assert round_tripped.read_bytes() == reference.read_bytes()

    def test_synthetic_samples(self, tmp_path):
        self._assert_all_paths_identical(_synth_samples(count=7), tmp_path)

    def test_empty_sample_set(self, tmp_path):
        self._assert_all_paths_identical([], tmp_path)

    def test_real_campaign_samples(self, tmp_path):
        """Samples produced by an actual (fast) campaign — both live and
        non-live archetypes — survive every aggregation path bit-exactly."""
        runner = ScenarioRunner(seed=SEED, settings=RunnerSettings(**FAST))
        result = runner.run_campaign(
            [
                MigrationScenario(
                    "CPULOAD-SOURCE", "agg/nl/0vm", live=False, load_vm_count=0
                ),
                MigrationScenario(
                    "CPULOAD-SOURCE", "agg/lv/1vm", live=True, load_vm_count=1
                ),
            ],
            min_runs=2,
            max_runs=2,
        )
        samples = list(result.iter_samples())
        assert samples
        self._assert_all_paths_identical(samples, tmp_path)
