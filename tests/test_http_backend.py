"""The network (HTTP task handoff) campaign backend.

Covers the wire protocol (claim/heartbeat/result/status), the worker
lifecycle, fault injection (killed workers, malformed result uploads,
tampered specs) and the end-to-end CLI path with real
``campaign-worker --connect`` subprocesses.
"""

import json
import pathlib
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.errors import ExperimentError
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import CampaignExecutor, RunCache, RunTask
from repro.experiments.http_backend import (
    HttpBackend,
    fetch_status,
    parse_address,
    run_http_worker,
)
from repro.experiments.queue_backend import task_id_for
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.io import dump_run_result_bytes, save_samples_json
from repro.models.features import HostRole
from repro.telemetry.stabilization import StabilizationRule

SEED = 20150901

_SCENARIO = MigrationScenario("CPULOAD-SOURCE", "http/lv/1vm", live=True, load_vm_count=1)


def _task(run_index: int = 0, seed: int = SEED) -> RunTask:
    settings = RunnerSettings()
    rule = StabilizationRule()
    key = RunCache.scenario_key(seed, _SCENARIO, settings, None, rule)
    return RunTask(
        seed=seed, settings=settings, migration_config=None,
        stabilization=rule, scenario=_SCENARIO, run_index=run_index, key=key,
    )


@pytest.fixture
def backend(tmp_path):
    instance = HttpBackend("127.0.0.1:0", RunCache(tmp_path / "cache"))
    yield instance
    instance.shutdown()


def _post(url: str, path: str, data: bytes, content_type: str, headers=None) -> dict:
    request = urllib.request.Request(
        url + path,
        data=data,
        headers={"Content-Type": content_type, **(headers or {})},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _claim(url: str, worker: str = "t") -> dict:
    return _post(url, "/claim", json.dumps({"worker": worker}).encode(),
                 "application/json")


def _start_workers(url: str, n: int = 1, **kwargs) -> list:
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("offline_grace_s", 10.0)
    kwargs.setdefault("idle_exit_s", 60.0)
    threads = []
    for i in range(n):
        thread = threading.Thread(
            target=run_http_worker, args=(url,),
            kwargs={**kwargs, "worker_id": f"w{i}"}, daemon=True,
        )
        thread.start()
        threads.append(thread)
    return threads


class TestAddressParsing:
    def test_host_port(self):
        assert parse_address("127.0.0.1:8765") == ("127.0.0.1", 8765)
        assert parse_address(("localhost", 80)) == ("localhost", 80)

    @pytest.mark.parametrize("bad", ["8765", "host:", ":-1", "host:eight", "", "host:99999"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ExperimentError, match="HOST:PORT"):
            parse_address(bad)


class TestWireProtocol:
    def test_claim_empty_queue(self, backend):
        reply = _claim(backend.url)
        assert reply == {"task_id": None, "stop": False}

    def test_claim_leases_oldest_task(self, backend):
        tasks = [_task(0), _task(1)]
        for task in tasks:
            backend.submit(task)
        reply = _claim(backend.url)
        assert reply["task_id"] == task_id_for(tasks[0])
        assert reply["spec"]["run_index"] == 0
        assert reply["lease_timeout_s"] == backend.stale_timeout
        # The second claim gets the second task; the third gets nothing.
        assert _claim(backend.url)["task_id"] == task_id_for(tasks[1])
        assert _claim(backend.url)["task_id"] is None

    def test_heartbeat_renews_only_own_lease(self, backend):
        backend.submit(_task())
        reply = _claim(backend.url, worker="holder")
        beat = lambda worker: _post(  # noqa: E731
            backend.url, "/heartbeat",
            json.dumps({"worker": worker, "task_id": reply["task_id"]}).encode(),
            "application/json",
        )
        assert beat("holder")["ok"] is True
        assert beat("impostor")["ok"] is False

    def test_status_counts(self, backend):
        for index in range(2):
            backend.submit(_task(index))
        _claim(backend.url, worker="wA")
        status = fetch_status(backend.url)
        assert status["tasks_open"] == 1
        assert status["tasks_leased"] == 1
        assert status["tasks_submitted"] == 2
        assert status["workers_live"] == 1
        assert status["workers"][0]["worker"] == "wA"
        assert backend.capacity == 1

    def test_unknown_endpoint_404(self, backend):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(backend.url, "/nope", b"{}", "application/json")
        assert info.value.code == 404

    def test_claim_without_worker_id_400(self, backend):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(backend.url, "/claim", b"{}", "application/json")
        assert info.value.code == 400

    def test_result_for_unknown_task_404(self, backend):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(backend.url, "/result", b"x", "application/octet-stream",
                  headers={"X-Wavm3-Task-Id": "nope-0000", "X-Wavm3-Worker": "t"})
        assert info.value.code == 404

    def test_validation(self, tmp_path):
        with pytest.raises(ExperimentError):
            HttpBackend("127.0.0.1:0", RunCache(tmp_path / "c"), stale_timeout=0.0)

    def test_executor_requires_cache_and_serve(self, tmp_path):
        with pytest.raises(ExperimentError, match="cache_dir"):
            CampaignExecutor(ScenarioRunner(seed=SEED), backend="http",
                             serve="127.0.0.1:0")
        with pytest.raises(ExperimentError, match="serve address"):
            CampaignExecutor(ScenarioRunner(seed=SEED), backend="http",
                             cache_dir=tmp_path / "cache")

    def test_runner_rejects_unknown_parallel_string(self):
        with pytest.raises(ExperimentError):
            ScenarioRunner(seed=SEED).run_campaign([_SCENARIO], parallel="grpc")


class TestWorkerLifecycle:
    def test_worker_executes_and_uploads(self, backend):
        futures = [backend.submit(_task(i)) for i in range(2)]
        stats = run_http_worker(
            backend.url, poll_interval=0.02, idle_exit_s=0.2, worker_id="w0",
        )
        assert stats.claimed == 2 and stats.executed == 2 and stats.failed == 0
        done = backend.wait(futures)
        assert done == set(futures)
        expected = ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=0)
        got = futures[0].result()
        assert np.array_equal(got.source_trace.watts, expected.source_trace.watts)
        # The coordinator deposited the upload into its own cache.
        task = futures[0].task
        assert backend.cache.get(task.key, task.scenario, 0) is not None

    def test_worker_stops_on_stop_signal(self, backend):
        backend.stop_workers_on_shutdown = True
        backend._state.stopping = True
        stats = run_http_worker(backend.url, poll_interval=0.02, worker_id="w0")
        assert stats.claimed == 0
        backend.stop_workers_on_shutdown = False  # let the fixture shut down fast

    def test_worker_exits_when_coordinator_goes_away(self, tmp_path):
        backend = HttpBackend("127.0.0.1:0", RunCache(tmp_path / "cache"))
        url = backend.url
        threads = _start_workers(url, offline_grace_s=0.2)
        deadline = time.monotonic() + 30
        while backend.active_workers() < 1 and time.monotonic() < deadline:
            time.sleep(0.02)  # let the worker make first contact
        backend.shutdown()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)

    def test_worker_rejects_wrong_url_immediately(self, backend):
        with pytest.raises(ExperimentError, match="campaign status"):
            run_http_worker(backend.url.rsplit(":", 1)[0] + ":1", worker_id="w0")

    def test_max_tasks_bounds_the_worker(self, backend):
        for index in range(3):
            backend.submit(_task(index))
        stats = run_http_worker(
            backend.url, poll_interval=0.02, max_tasks=1, worker_id="w0",
        )
        assert stats.claimed == 1
        assert fetch_status(backend.url)["tasks_open"] == 2


class TestFaultInjection:
    def test_stale_lease_requeued_and_completed(self, tmp_path):
        """A worker killed mid-task: its lease's heartbeat goes stale, the
        coordinator requeues the task, and a live worker finishes it."""
        backend = HttpBackend(
            "127.0.0.1:0", RunCache(tmp_path / "cache"), stale_timeout=0.3,
        )
        workers = []
        try:
            future = backend.submit(_task())
            # Simulate the dead worker: claim the task, never heartbeat.
            assert _claim(backend.url, worker="dead")["task_id"] is not None
            workers = _start_workers(backend.url, heartbeat_s=0.1)
            done = backend.wait([future])
            assert done == {future}
            assert backend.stats.tasks_requeued >= 1
            assert future.result().run_index == 0
        finally:
            backend.stop_workers_on_shutdown = True
            backend.shutdown()
            for thread in workers:
                thread.join(timeout=30)

    def test_malformed_result_upload_rejected_and_recomputed(self, tmp_path):
        """Garbage POSTed to /result must never resolve a future: the
        coordinator answers 400, requeues the task, and a real worker
        recomputes the correct result."""
        backend = HttpBackend("127.0.0.1:0", RunCache(tmp_path / "cache"))
        workers = []
        try:
            task = _task()
            future = backend.submit(task)
            reply = _claim(backend.url, worker="liar")
            with pytest.raises(urllib.error.HTTPError) as info:
                _post(backend.url, "/result", b"not a pickle",
                      "application/octet-stream",
                      headers={"X-Wavm3-Task-Id": reply["task_id"],
                               "X-Wavm3-Worker": "liar"})
            assert info.value.code == 400
            assert backend.stats.corrupt_results == 1
            assert not future.done()
            assert fetch_status(backend.url)["tasks_open"] == 1  # requeued

            workers = _start_workers(backend.url)
            done = backend.wait([future])
            assert done == {future}
            expected = ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=0)
            assert np.array_equal(future.result().source_trace.watts,
                                  expected.source_trace.watts)
        finally:
            backend.stop_workers_on_shutdown = True
            backend.shutdown()
            for thread in workers:
                thread.join(timeout=30)

    def test_mismatched_result_upload_rejected(self, backend):
        """An upload whose run is for a different task is refused even
        though it is a perfectly valid pickle."""
        task = _task(run_index=0)
        backend.submit(task)
        reply = _claim(backend.url)
        wrong = ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=1)
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(backend.url, "/result", dump_run_result_bytes(wrong),
                  "application/octet-stream",
                  headers={"X-Wavm3-Task-Id": reply["task_id"],
                           "X-Wavm3-Worker": "t"})
        assert info.value.code == 400
        assert backend.stats.corrupt_results == 1

    def test_failure_report_surfaces_centrally(self, backend):
        future = backend.submit(_task())
        reply = _claim(backend.url)
        _post(backend.url, "/result",
              json.dumps({"error": "boom", "traceback": "tb"}).encode(),
              "application/json",
              headers={"X-Wavm3-Task-Id": reply["task_id"], "X-Wavm3-Worker": "t"})
        done = backend.wait([future])
        assert done == {future}
        with pytest.raises(ExperimentError, match="boom"):
            future.result()
        assert fetch_status(backend.url)["tasks_failed"] == 1

    def test_late_valid_result_after_requeue_retires_the_task(self, tmp_path):
        """A slow (not dead) worker whose lease expired still delivers the
        identical bytes: the upload resolves the future AND removes the
        requeued task from the open queue — no redundant re-execution."""
        backend = HttpBackend(
            "127.0.0.1:0", RunCache(tmp_path / "cache"), stale_timeout=0.1,
        )
        try:
            future = backend.submit(_task())
            reply = _claim(backend.url, worker="slow")
            time.sleep(0.3)
            # /status is read-only: it reports the expired lease but must
            # not requeue it.
            probe = fetch_status(backend.url)
            assert probe["leases_stale"] == 1 and probe["tasks_open"] == 0
            with backend._state.lock:
                backend._requeue_stale_locked()  # the sweep /claim would run
            assert fetch_status(backend.url)["tasks_open"] == 1  # requeued
            run = ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=0)
            _post(backend.url, "/result", dump_run_result_bytes(run),
                  "application/octet-stream",
                  headers={"X-Wavm3-Task-Id": reply["task_id"],
                           "X-Wavm3-Worker": "slow"})
            assert future.done() and future.result().run_index == 0
            status = fetch_status(backend.url)
            assert status["tasks_open"] == 0 and status["tasks_completed"] == 1
            # A fresh claim must not be handed the completed task.
            assert _claim(backend.url, worker="next")["task_id"] is None
        finally:
            backend.shutdown()

    def test_zombie_failure_report_ignored_after_requeue(self, tmp_path):
        """A worker that lost its lease reporting failure must not abort a
        campaign whose task was requeued to someone else."""
        backend = HttpBackend(
            "127.0.0.1:0", RunCache(tmp_path / "cache"), stale_timeout=0.1,
        )
        try:
            future = backend.submit(_task())
            reply = _claim(backend.url, worker="zombie")
            time.sleep(0.3)
            with backend._state.lock:
                backend._requeue_stale_locked()
            assert fetch_status(backend.url)["tasks_open"] == 1  # requeued
            ignored = _post(backend.url, "/result",
                            json.dumps({"error": "OOM-killed"}).encode(),
                            "application/json",
                            headers={"X-Wavm3-Task-Id": reply["task_id"],
                                     "X-Wavm3-Worker": "zombie"})
            assert ignored.get("ignored") is True
            assert not future.done()
            # The healthy re-execution path still works (freeze the sweep
            # so B's fresh lease cannot itself expire mid-assertion).
            backend.stale_timeout = 3600.0
            assert _claim(backend.url, worker="B")["task_id"] == reply["task_id"]
        finally:
            backend.shutdown()

    def test_zombie_garbage_upload_does_not_evict_live_lease(self, tmp_path):
        """Garbage from a worker that lost its lease answers 400 without
        re-opening the task or evicting the live holder's lease."""
        backend = HttpBackend(
            "127.0.0.1:0", RunCache(tmp_path / "cache"), stale_timeout=0.1,
        )
        try:
            backend.submit(_task())
            reply = _claim(backend.url, worker="zombie")
            time.sleep(0.3)
            with backend._state.lock:
                backend._requeue_stale_locked()  # requeue the stale lease
            backend.stale_timeout = 3600.0  # keep B's lease alive below
            assert _claim(backend.url, worker="B")["task_id"] == reply["task_id"]
            with pytest.raises(urllib.error.HTTPError) as info:
                _post(backend.url, "/result", b"garbage",
                      "application/octet-stream",
                      headers={"X-Wavm3-Task-Id": reply["task_id"],
                               "X-Wavm3-Worker": "zombie"})
            assert info.value.code == 400
            status = fetch_status(backend.url)
            assert status["tasks_leased"] == 1  # B's lease survives
            assert status["tasks_open"] == 0
        finally:
            backend.shutdown()

    def test_tampered_spec_fails_the_task(self, tmp_path):
        """A spec whose embedded key does not hash back to its contents is
        refused by the worker and surfaces as a campaign error."""
        backend = HttpBackend("127.0.0.1:0", RunCache(tmp_path / "cache"))
        try:
            task = _task()
            tampered = RunTask(
                seed=task.seed + 1,  # contents no longer match task.key
                settings=task.settings, migration_config=None,
                stabilization=task.stabilization, scenario=task.scenario,
                run_index=task.run_index, key=task.key,
            )
            future = backend.submit(tampered)
            stats = run_http_worker(
                backend.url, poll_interval=0.02, idle_exit_s=0.2, worker_id="w0",
            )
            assert stats.failed == 1
            backend.wait([future])
            with pytest.raises(ExperimentError, match="does not match"):
                future.result()
        finally:
            backend.shutdown()


class TestCampaignBitIdentity:
    def test_http_campaign_matches_serial(self, tmp_path):
        scenarios = [_SCENARIO]
        serial = ScenarioRunner(seed=SEED).run_campaign(scenarios, min_runs=2, max_runs=2)

        runner = ScenarioRunner(seed=SEED)
        executor = CampaignExecutor(
            runner, backend="http", cache_dir=tmp_path / "cache",
            serve="127.0.0.1:0",
            http_options={"stop_workers_on_shutdown": True, "stop_grace_s": 5.0},
        )
        workers = _start_workers(executor.serve_url, n=2)
        result = executor.run_campaign(scenarios, min_runs=2, max_runs=2)
        for thread in workers:
            thread.join(timeout=30)
        assert executor.stats.runs_executed == 2
        for sa, sb in zip(serial.scenario_results, result.scenario_results):
            for role in (HostRole.SOURCE, HostRole.TARGET):
                assert np.array_equal(
                    sa.total_energies_j(role), sb.total_energies_j(role)
                )
            for ra, rb in zip(sa.runs, sb.runs):
                assert np.array_equal(ra.source_trace.watts, rb.source_trace.watts)

        # Warm rerun against the coordinator's cache: zero simulation
        # runs, no workers needed.
        second = CampaignExecutor(
            ScenarioRunner(seed=SEED), backend="http",
            cache_dir=tmp_path / "cache", serve="127.0.0.1:0",
        )
        rerun = second.run_campaign(scenarios, min_runs=2, max_runs=2)
        assert second.stats.runs_executed == 0
        assert second.stats.runs_cached == 2
        for sa, sb in zip(result.scenario_results, rerun.scenario_results):
            assert np.array_equal(
                sa.total_energies_j(HostRole.SOURCE),
                sb.total_energies_j(HostRole.SOURCE),
            )


class TestCliEndToEnd:
    def _popen(self, args: list) -> subprocess.Popen:
        src_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *args],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )

    def test_serve_plus_two_worker_subprocesses(self, tmp_path):
        """Acceptance: `campaign --serve` + two `campaign-worker --connect`
        subprocesses produce results byte-identical to the serial backend,
        and a warm rerun against the coordinator's cache performs zero
        simulation runs."""
        from repro.experiments.design import memload_vm_scenarios

        coordinator = self._popen([
            "--seed", str(SEED), "--cache-dir", str(tmp_path / "cache"),
            "campaign", "--serve", "127.0.0.1:0", "--stop-workers",
            "--experiment", "memload-vm", "--runs", "2",
        ])
        first_line = coordinator.stdout.readline()
        assert "serving campaign tasks on http://" in first_line, first_line
        url = first_line.strip().rsplit(" ", 1)[-1]

        workers = [
            self._popen(["campaign-worker", "--connect", url,
                         "--poll-interval", "0.05", "--worker-id", f"cli-w{i}"])
            for i in range(2)
        ]
        assert coordinator.wait(timeout=600) == 0
        for proc in workers:
            try:
                assert proc.wait(timeout=120) == 0, proc.stdout.read()
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        out = coordinator.stdout.read()
        assert "backend=http" in out
        assert "12 runs kept (12 executed, 0 from cache" in out

        # Byte-identity: the wire-transported runs in the coordinator's
        # cache replay exactly what the serial path computes.
        scenario = memload_vm_scenarios("m")[0]
        serial = ScenarioRunner(seed=SEED).run_campaign([scenario], min_runs=2, max_runs=2)
        runner = ScenarioRunner(seed=SEED)
        cached = runner.run_campaign(
            [scenario], min_runs=2, max_runs=2, cache_dir=tmp_path / "cache",
        )
        assert runner.last_executor_stats.runs_executed == 0
        assert runner.last_executor_stats.runs_cached == 2
        for sa, sb in zip(serial.scenario_results, cached.scenario_results):
            assert sa.scenario == sb.scenario
            for role in (HostRole.SOURCE, HostRole.TARGET):
                assert np.array_equal(
                    sa.total_energies_j(role), sb.total_energies_j(role)
                )
            for ra, rb in zip(sa.runs, sb.runs):
                assert np.array_equal(ra.source_trace.watts, rb.source_trace.watts)
                assert ra.timeline.bytes_total == rb.timeline.bytes_total

        # Warm rerun through the HTTP backend itself: all cache hits,
        # zero simulation runs, no workers needed.
        warm = self._popen([
            "--seed", str(SEED), "--cache-dir", str(tmp_path / "cache"),
            "campaign", "--serve", "127.0.0.1:0",
            "--experiment", "memload-vm", "--runs", "2",
        ])
        assert warm.wait(timeout=600) == 0
        assert "(0 executed, 12 from cache" in warm.stdout.read()


class TestDuplicatePublication:
    """Two workers racing one speculated task over the wire: the first
    valid upload resolves the future, the identical second upload is
    acknowledged as a duplicate, and the cache deposit is idempotent."""

    def test_second_valid_upload_acknowledged_as_duplicate(self, backend, tmp_path):
        task = _task(run_index=0)
        future = backend.submit(task)
        reply = _claim(backend.url, worker="w1")
        expected = ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=0)
        body = dump_run_result_bytes(expected)

        # A worker that lost the race to claim still holds the right
        # bytes (runs are deterministic): its upload wins the task.
        first = _post(backend.url, "/result", body, "application/octet-stream",
                      headers={"X-Wavm3-Task-Id": reply["task_id"],
                               "X-Wavm3-Worker": "w2"})
        assert first == {"ok": True}
        assert future.done() and future.worker == "w2"

        # The lease holder finishes later and publishes the same result.
        second = _post(backend.url, "/result", body, "application/octet-stream",
                       headers={"X-Wavm3-Task-Id": reply["task_id"],
                                "X-Wavm3-Worker": "w1"})
        assert second == {"ok": True, "duplicate": True}

        # One completion, one (idempotent) cache deposit.
        status = fetch_status(backend.url)
        assert status["tasks_completed"] == 1
        assert status["tasks_open"] == 0 and status["tasks_leased"] == 0
        cached = backend.cache.get(task.key, _SCENARIO, 0)
        assert cached is not None

        # Whichever publication served a consumer, the samples JSON is
        # byte-identical to the locally computed run's.
        roles = (HostRole.SOURCE, HostRole.TARGET)
        paths = []
        for tag, run in (
            ("expected", expected), ("cached", cached), ("future", future.result()),
        ):
            path = tmp_path / f"{tag}.json"
            save_samples_json([run.sample_for(role) for role in roles], path)
            paths.append(path)
        reference = paths[0].read_bytes()
        assert all(path.read_bytes() == reference for path in paths[1:])

    def test_status_surfaces_cache_counters(self, backend):
        task = _task(run_index=0)
        backend.submit(task)
        reply = _claim(backend.url, worker="w1")
        body = dump_run_result_bytes(
            ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=0)
        )
        _post(backend.url, "/result", body, "application/octet-stream",
              headers={"X-Wavm3-Task-Id": reply["task_id"],
                       "X-Wavm3-Worker": "w1"})
        cache = fetch_status(backend.url)["cache"]
        assert cache == backend.cache.counters()
        assert cache["bytes_written"] > 0
