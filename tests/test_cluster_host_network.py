"""Physical host registrations and the CPU-coupled network path."""

import pytest

from repro.cluster import PhysicalHost, NetworkPath, machine_pair, machine_spec, switch_spec
from repro.cluster.network import BandwidthDegradation
from repro.errors import CapacityError, ConfigurationError


@pytest.fixture()
def host():
    return PhysicalHost(machine_spec("m01"), noise_seed=5)


@pytest.fixture()
def pair():
    src_spec, tgt_spec = machine_pair("m")
    src = PhysicalHost(src_spec, noise_seed=1)
    tgt = PhysicalHost(tgt_spec, noise_seed=2)
    return src, tgt, NetworkPath(src, tgt, switch_spec("m"), jitter_seed=3)


class TestHostNic:
    def test_flows_aggregate(self, host):
        host.set_nic_flow("a", tx_bps=1e7)
        host.set_nic_flow("b", tx_bps=2e7, rx_bps=5e6)
        assert host.nic_tx_bps() == pytest.approx(3e7)
        assert host.nic_rx_bps() == pytest.approx(5e6)

    def test_flows_clamped_to_goodput(self, host):
        host.set_nic_flow("x", tx_bps=1e12)
        assert host.nic_tx_bps() == host.spec.nic.goodput_bps

    def test_clear_flow(self, host):
        host.set_nic_flow("a", tx_bps=1e7)
        host.clear_nic_flow("a")
        assert host.nic_tx_bps() == 0.0

    def test_rejects_negative_flow(self, host):
        with pytest.raises(CapacityError):
            host.set_nic_flow("a", tx_bps=-1.0)

    def test_utilisation_fraction(self, host):
        host.set_nic_flow("a", tx_bps=host.spec.nic.goodput_bps / 2)
        assert host.nic_utilisation_fraction() == pytest.approx(0.5)


class TestHostMemoryActivity:
    def test_activities_sum_and_clamp(self, host):
        host.set_memory_activity("a", 0.6)
        host.set_memory_activity("b", 0.7)
        assert host.memory_activity_fraction() == 1.0

    def test_clear(self, host):
        host.set_memory_activity("a", 0.4)
        host.clear_memory_activity("a")
        assert host.memory_activity_fraction() == 0.0

    def test_rejects_negative(self, host):
        with pytest.raises(CapacityError):
            host.set_memory_activity("a", -0.1)


class TestHostUtilisationAndPower:
    def test_noise_free_read(self, host):
        host.cpu.set_demand("vm:a", 16.0)
        assert host.cpu_utilisation_fraction() == pytest.approx(0.5)

    def test_jittered_read_consistent_at_instant(self, host):
        host.cpu.set_demand("vm:a", 16.0)
        assert host.cpu_utilisation_fraction(10.0) == host.cpu_utilisation_fraction(10.0)

    def test_jitter_bounded(self, host):
        host.cpu.set_demand("vm:a", 16.0)
        for t in range(200):
            value = host.cpu_utilisation_fraction(float(t))
            assert 0.0 <= value <= 1.0
            assert abs(value - 0.5) < 0.15

    def test_power_increases_with_load(self, host):
        idle_power = host.instantaneous_power(0.0)
        host.cpu.set_demand("vm:a", 32.0)
        assert host.instantaneous_power(0.0) > idle_power + 100.0

    def test_thermal_factor_is_run_constant(self):
        a = PhysicalHost(machine_spec("m01"), noise_seed=10)
        b = PhysicalHost(machine_spec("m01"), noise_seed=11)
        # Different runs (seeds) see different thermal states.
        a.cpu.set_demand("x", 32.0)
        b.cpu.set_demand("x", 32.0)
        assert a.instantaneous_power(0.0) != b.instantaneous_power(0.0)


class TestBandwidthDegradation:
    def test_full_below_knee(self):
        deg = BandwidthDegradation(knee_utilisation=0.85, floor_factor=0.6)
        assert deg.factor(0.5) == 1.0
        assert deg.factor(0.85) == 1.0

    def test_floor_at_saturation(self):
        deg = BandwidthDegradation(knee_utilisation=0.85, floor_factor=0.6)
        assert deg.factor(1.0) == pytest.approx(0.6)

    def test_linear_between(self):
        deg = BandwidthDegradation(knee_utilisation=0.8, floor_factor=0.5)
        assert deg.factor(0.9) == pytest.approx(0.75)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            BandwidthDegradation(knee_utilisation=0.0)
        with pytest.raises(ConfigurationError):
            BandwidthDegradation(floor_factor=1.5)


class TestNetworkPath:
    def test_nominal_is_min_of_parts(self, pair):
        _, _, path = pair
        assert path.nominal_goodput_bps <= path.source.spec.nic.goodput_bps
        assert path.nominal_goodput_bps <= path.switch.goodput_bps

    def test_idle_hosts_full_bandwidth(self, pair):
        _, _, path = pair
        bw = path.effective_bandwidth_bps(0.0, with_jitter=False)
        assert bw == pytest.approx(path.nominal_goodput_bps)

    def test_saturated_source_degrades(self, pair):
        src, _, path = pair
        src.cpu.set_demand("vm:load", 32.0)
        bw = path.effective_bandwidth_bps(0.0, with_jitter=False)
        assert bw == pytest.approx(path.nominal_goodput_bps * path.degradation.floor_factor)

    def test_multiplexed_source_hits_floor(self, pair):
        src, _, path = pair
        src.cpu.set_demand("vm:load", 64.0)
        bw = path.effective_bandwidth_bps(0.0, with_jitter=False)
        assert bw == pytest.approx(path.nominal_goodput_bps * path.degradation.floor_factor)

    def test_saturated_target_also_degrades(self, pair):
        _, tgt, path = pair
        tgt.cpu.set_demand("vm:load", 40.0)
        bw = path.effective_bandwidth_bps(0.0, with_jitter=False)
        assert bw < path.nominal_goodput_bps

    def test_migration_keys_excluded(self, pair):
        src, _, path = pair
        src.cpu.set_demand("migr:vm:daemon", 32.0)
        bw = path.effective_bandwidth_bps(
            0.0, migration_keys=("migr:vm:daemon",), with_jitter=False
        )
        assert bw == pytest.approx(path.nominal_goodput_bps)

    def test_jitter_bounded(self, pair):
        _, _, path = pair
        for t in range(100):
            bw = path.effective_bandwidth_bps(float(t))
            assert 0.5 * path.nominal_goodput_bps <= bw <= 1.2 * path.nominal_goodput_bps
