"""Adaptive campaign scheduling: throughput model, speculation policy,
wave planning, and the straggler re-dispatch path end to end.

Covers the EWMA :class:`ThroughputModel` (cold-start parity with the
legacy even split, proportional warm plans, drain dedup), the
:class:`SpeculationPolicy` gates, the executor's wave planner (explicit
batch sizes and cache holes keep the legacy dispatch shape bit for bit;
warm plans carve across holes without bridging them) and a full
campaign against a backend with a permanently stalled lane — the
speculative clone must win, duplicates must dedup idempotently, and the
results must stay byte-identical to the serial path.
"""

import math
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import (
    CampaignExecutor,
    ExecutorBackend,
    RunCache,
    _execute_task,
    _SerialFuture,
)
from repro.experiments.results import ProgressEvent
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.experiments.scheduler import SpeculationPolicy, ThroughputModel
from repro.models.features import HostRole

SEED = 20150901

FAST = dict(
    min_warmup_s=2.0, max_warmup_s=6.0, min_post_s=2.0, max_post_s=6.0,
    check_interval_s=1.0,
)

_SCENARIO = MigrationScenario(
    "CPULOAD-SOURCE", "sched/nl/0vm", live=False, load_vm_count=0
)


def _event(task_id="t-0", worker="w0", wall_s=1.0, at=1.0, **overrides):
    base = dict(
        task_id=task_id, scenario="s", run_index=0, worker=worker,
        runs_completed=1, samples=100, wall_s=wall_s,
        samples_per_s=(100.0 / wall_s) if wall_s else 0.0, at=at,
    )
    base.update(overrides)
    return ProgressEvent(**base)


def _runner(seed: int = SEED) -> ScenarioRunner:
    return ScenarioRunner(seed=seed, settings=RunnerSettings(**FAST))


class TestThroughputModel:
    def test_parameter_validation(self):
        with pytest.raises(ExperimentError, match="alpha"):
            ThroughputModel(alpha=0.0)
        with pytest.raises(ExperimentError, match="alpha"):
            ThroughputModel(alpha=1.5)
        with pytest.raises(ExperimentError, match="window"):
            ThroughputModel(window=0)

    def test_cold_plan_matches_legacy_even_split(self):
        model = ThroughputModel()
        assert model.plan_spans(6, 2) == [3, 3]
        assert model.plan_spans(5, 2) == [3, 2]
        assert model.plan_spans(3, 4) == [1, 1, 1]
        assert model.plan_spans(0, 2) == []
        assert model.plan_spans(-1, 2) == []

    def test_lanes_validated(self):
        with pytest.raises(ExperimentError, match="lanes"):
            ThroughputModel().plan_spans(4, 0)

    def test_duplicate_announcements_folded_once(self):
        model = ThroughputModel()
        event = _event(at=7.0)
        assert model.observe(event) is True
        assert model.observe(event) is False
        assert model.observe_all([event, _event(at=8.0)]) == 1
        assert model.observations == 2

    def test_degenerate_walls_skipped(self):
        model = ThroughputModel()
        assert model.observe(_event(wall_s=0.0, at=1.0)) is False
        assert model.observe(_event(wall_s=-1.0, at=2.0)) is False
        assert model.observe(_event(wall_s=math.inf, at=3.0)) is False
        assert model.observe(_event(wall_s=math.nan, at=4.0)) is False
        assert model.observations == 0
        assert model.run_rate("w0") is None
        assert model.median_run_wall() is None

    def test_ewma_blends_old_and_new(self):
        model = ThroughputModel(alpha=0.5)
        model.observe(_event(wall_s=1.0, at=1.0))  # rate 1.0
        model.observe(_event(wall_s=0.5, at=2.0))  # rate 2.0
        assert model.run_rate("w0") == pytest.approx(0.5 * 2.0 + 0.5 * 1.0)
        assert model.sample_rate("w0") == pytest.approx(0.5 * 200.0 + 0.5 * 100.0)

    def test_workers_sorted_fastest_first(self):
        model = ThroughputModel()
        model.observe(_event(worker="slow", wall_s=2.0, at=1.0))
        model.observe(_event(worker="fast", wall_s=0.2, at=2.0))
        model.observe(_event(worker="mid", wall_s=1.0, at=3.0))
        assert model.workers() == ["fast", "mid", "slow"]

    def test_median_run_wall(self):
        model = ThroughputModel()
        for i, wall in enumerate([3.0, 1.0, 2.0]):
            model.observe(_event(wall_s=wall, at=float(i)))
        assert model.median_run_wall() == 2.0
        model.observe(_event(wall_s=4.0, at=9.0))
        assert model.median_run_wall() == 2.5

    def test_median_window_keeps_recent_walls_only(self):
        model = ThroughputModel(window=2)
        for i, wall in enumerate([10.0, 1.0, 3.0]):
            model.observe(_event(wall_s=wall, at=float(i)))
        assert model.median_run_wall() == 2.0  # [1.0, 3.0]; the 10.0 aged out

    def test_warm_plan_proportional_to_rates(self):
        model = ThroughputModel()
        model.observe(_event(worker="fast", wall_s=1.0 / 9.0, at=1.0))
        model.observe(_event(worker="slow", wall_s=1.0, at=2.0))
        assert model.plan_spans(10, 2) == [9, 1]

    def test_unseen_lanes_assume_mean_observed_rate(self):
        model = ThroughputModel()
        model.observe(_event(worker="only", wall_s=0.5, at=1.0))
        assert model.plan_spans(9, 3) == [3, 3, 3]

    def test_small_wave_keeps_even_split_even_when_warm(self):
        model = ThroughputModel()
        model.observe(_event(worker="fast", wall_s=0.1, at=1.0))
        model.observe(_event(worker="slow", wall_s=1.0, at=2.0))
        assert model.plan_spans(2, 2) == [1, 1]

    def test_warm_plan_conserves_runs(self):
        model = ThroughputModel()
        for i, wall in enumerate([0.3, 0.7, 0.11]):
            model.observe(_event(worker=f"w{i}", wall_s=wall, at=float(i)))
        for missing in (7, 13, 100):
            sizes = model.plan_spans(missing, 3)
            assert sum(sizes) == missing
            assert all(size >= 1 for size in sizes)


class TestSpeculationPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(wave_fraction=-0.1),
            dict(wave_fraction=1.1),
            dict(slowdown=0.0),
            dict(slowdown=-1.0),
            dict(min_elapsed_s=-0.1),
        ],
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(ExperimentError):
            SpeculationPolicy(**kwargs)

    def test_gates(self):
        policy = SpeculationPolicy(wave_fraction=0.5, slowdown=2.0, min_elapsed_s=0.05)
        # No observed walls yet: never speculate.
        assert not policy.is_straggler(10.0, 1, None, 1.0)
        # Wave not far enough along.
        assert not policy.is_straggler(10.0, 1, 1.0, 0.4)
        # Outstanding, but within the expected envelope (2x of 1 run x 1s).
        assert not policy.is_straggler(1.9, 1, 1.0, 0.9)
        assert policy.is_straggler(2.0, 1, 1.0, 0.9)
        # Batch chunks scale the envelope by their run count.
        assert not policy.is_straggler(5.0, 3, 1.0, 0.9)
        assert policy.is_straggler(6.0, 3, 1.0, 0.9)

    def test_min_elapsed_floor_suppresses_trivial_waves(self):
        policy = SpeculationPolicy(min_elapsed_s=0.05)
        # 2x the (tiny) expected wall has passed, but not the floor.
        assert not policy.is_straggler(0.01, 1, 0.001, 1.0)
        assert policy.is_straggler(0.05, 1, 0.001, 1.0)

    def test_disabled_policy_never_fires(self):
        policy = SpeculationPolicy(enabled=False)
        assert not policy.is_straggler(100.0, 1, 1.0, 1.0)


class TestWavePlanning:
    """``CampaignExecutor._plan_wave_chunks``: dispatch shape only — the
    process pool is lazy, so no worker ever spawns here."""

    def test_cold_auto_mode_is_legacy_even_split(self):
        executor = CampaignExecutor(_runner(), jobs=2, batch_size=None)
        assert executor._plan_wave_chunks([0, 1, 2, 3, 4, 5]) == [
            (0, 1, 2),
            (3, 4, 5),
        ]
        assert executor._plan_wave_chunks([]) == []

    def test_default_batch_size_keeps_per_run_dispatch(self):
        executor = CampaignExecutor(_runner(), jobs=2)
        assert executor._plan_wave_chunks([0, 1, 2]) == [(0,), (1,), (2,)]

    def test_cold_auto_mode_cache_hole_keeps_legacy_shape(self):
        # chunk size comes from the TOTAL missing count, then is chopped
        # per contiguous span: [0] and [2, 3] with 2 lanes must dispatch
        # as a single run plus one 2-run batch.
        executor = CampaignExecutor(_runner(), jobs=2, batch_size=None)
        assert executor._plan_wave_chunks([0, 2, 3]) == [(0,), (2, 3)]

    def test_explicit_batch_size_chops_each_span(self):
        executor = CampaignExecutor(_runner(), jobs=2, batch_size=2)
        assert executor._plan_wave_chunks([0, 2, 3, 4, 5, 6]) == [
            (0,),
            (2, 3),
            (4, 5),
            (6,),
        ]

    def test_warm_model_plans_proportional_chunks(self):
        model = ThroughputModel()
        model.observe(_event(worker="fast", wall_s=0.5, at=1.0))  # 2 runs/s
        model.observe(_event(worker="slow", wall_s=1.0, at=2.0))  # 1 run/s
        executor = CampaignExecutor(
            _runner(), jobs=2, batch_size=None, throughput=model
        )
        assert executor._plan_wave_chunks([0, 1, 2, 3, 4, 5]) == [
            (0, 1, 2, 3),
            (4, 5),
        ]

    def test_warm_plan_is_cut_at_cache_holes(self):
        # The proportional plan [4, 2] carves across spans (0,1,2) and
        # (4,5,6) with carry: chunks never bridge a hole.
        model = ThroughputModel()
        model.observe(_event(worker="fast", wall_s=0.5, at=1.0))
        model.observe(_event(worker="slow", wall_s=1.0, at=2.0))
        executor = CampaignExecutor(
            _runner(), jobs=2, batch_size=None, throughput=model
        )
        assert executor._plan_wave_chunks([0, 1, 2, 4, 5, 6]) == [
            (0, 1, 2),
            (4,),
            (5, 6),
        ]

    def test_explicit_batch_size_ignores_warm_model(self):
        model = ThroughputModel()
        model.observe(_event(worker="fast", wall_s=0.5, at=1.0))
        model.observe(_event(worker="slow", wall_s=1.0, at=2.0))
        executor = CampaignExecutor(_runner(), jobs=2, batch_size=3, throughput=model)
        assert executor._plan_wave_chunks([0, 1, 2, 3, 4, 5]) == [
            (0, 1, 2),
            (3, 4, 5),
        ]


class _OneStallBackend(ExecutorBackend):
    """Two-lane inline backend whose *first* dispatch covering a chosen
    run index returns a future that never resolves — a permanently hung
    lane.  Any later dispatch of that index (the speculative clone)
    executes inline, so only speculation can finish the campaign."""

    name = "one-stall"

    def __init__(self, stall_index: int) -> None:
        self._stall_index = stall_index
        self.stalled_future = None

    @property
    def capacity(self):
        return 2

    def submit(self, task):
        run_index = getattr(task, "run_index", None)
        if run_index is not None:
            indices = [run_index]
        else:
            indices = list(task.run_indices)
        if self.stalled_future is None and self._stall_index in indices:
            self.stalled_future = Future()  # never resolves
            return self.stalled_future
        future = _SerialFuture(_execute_task, task, None)
        future.worker = "spare-lane"
        return future

    def wait(self, pending, timeout=None):
        done = {future for future in pending if future.done()}
        if not done and timeout:
            time.sleep(min(timeout, 0.05))
        return done


class TestSpeculativeRedispatch:
    def test_clone_rescues_stalled_chunk_and_dedups(self):
        """A hung lane holds the last run of the wave forever.  The
        speculation policy clones the chunk to the idle lane, the clone's
        result wins, the hung future is discarded idempotently, and the
        campaign bytes match the serial path exactly."""
        backend = _OneStallBackend(stall_index=3)
        executor = CampaignExecutor(
            _runner(),
            jobs=2,
            backend=backend,
            batch_size=1,
            speculation=SpeculationPolicy(
                wave_fraction=0.5, slowdown=0.1, min_elapsed_s=0.0
            ),
        )
        result = executor.run_campaign([_SCENARIO], min_runs=4, max_runs=4)

        assert executor.stats.tasks_speculated == 1
        assert executor.stats.runs_deduped == 1
        assert backend.stalled_future is not None
        assert not backend.stalled_future.done()

        serial = _runner().run_campaign([_SCENARIO], min_runs=4, max_runs=4)
        assert len(result.scenario_results) == 1
        speculated, expected = result.scenario_results[0], serial.scenario_results[0]
        assert speculated.n_runs == expected.n_runs == 4
        assert np.array_equal(
            speculated.total_energies_j(HostRole.SOURCE),
            expected.total_energies_j(HostRole.SOURCE),
        )
        for run, ref in zip(speculated.runs, expected.runs):
            assert run.run_index == ref.run_index
            assert np.array_equal(run.source_trace.watts, ref.source_trace.watts)

        # Progress accounting stays single: one event per run index even
        # though two futures covered index 3.
        indices = [event.run_index for event in executor.progress_events]
        assert sorted(indices) == [0, 1, 2, 3]

    def test_speculation_off_by_default(self):
        executor = CampaignExecutor(_runner(), jobs=2)
        assert executor.speculation is None
        result = executor.run_campaign([_SCENARIO], min_runs=2, max_runs=2)
        assert executor.stats.tasks_speculated == 0
        assert executor.stats.runs_deduped == 0
        assert result.scenario_results[0].n_runs == 2


class TestRunCacheCounters:
    def test_counters_track_hits_misses_and_bytes(self, tmp_path):
        executor = CampaignExecutor(_runner(), jobs=1, cache_dir=tmp_path / "cache")
        cache = executor.cache
        assert cache.counters() == {
            "hits": 0, "misses": 0, "bytes_read": 0, "bytes_written": 0,
        }
        executor.run_campaign([_SCENARIO], min_runs=2, max_runs=2)
        counters = cache.counters()
        assert counters["misses"] == 2  # the cold pre-dispatch lookups
        assert counters["hits"] == 0
        assert counters["bytes_written"] > 0

        # A warm rerun serves every run from disk: hits and bytes move.
        executor.run_campaign([_SCENARIO], min_runs=2, max_runs=2)
        counters = cache.counters()
        assert counters["hits"] == 2
        assert counters["bytes_read"] > 0
