"""VM state machine and hypervisor registration plumbing (Eq. 2)."""

import pytest

from repro.cluster import PhysicalHost, machine_spec
from repro.errors import CapacityError, HypervisorError, VMStateError
from repro.hypervisor import VirtualMachine, VmState, XenHypervisor
from repro.hypervisor.vmm import VMM_KEY
from repro.workloads import IdleWorkload, MatrixMultWorkload, PageDirtierWorkload


@pytest.fixture()
def xen():
    return XenHypervisor(PhysicalHost(machine_spec("m01"), noise_seed=3))


def make_vm(name="vm", vcpus=4, ram=512, workload=None):
    return VirtualMachine(name, vcpus, ram, workload or MatrixMultWorkload(vm_ram_mb=ram))


class TestVmStateMachine:
    def test_initial_state(self):
        assert make_vm().state is VmState.DEFINED

    def test_legal_cycle(self):
        vm = make_vm()
        vm.mark_running()
        vm.mark_suspended()
        vm.mark_running()
        vm.mark_destroyed()
        assert vm.state is VmState.DESTROYED

    def test_cannot_suspend_defined(self):
        with pytest.raises(VMStateError):
            make_vm().mark_suspended()

    def test_cannot_revive_destroyed(self):
        vm = make_vm()
        vm.mark_destroyed()
        with pytest.raises(VMStateError):
            vm.mark_running()

    def test_rejects_zero_vcpus(self):
        with pytest.raises(VMStateError):
            VirtualMachine("x", 0, 512)


class TestVmFeatures:
    def test_defined_vm_has_zero_features(self):
        vm = make_vm()
        assert vm.cpu_percent() == 0.0
        assert vm.dirtying_ratio_percent() == 0.0

    def test_running_cpu_percent(self):
        vm = make_vm()
        vm.mark_running()
        assert vm.cpu_percent() == pytest.approx(97.0, abs=2.0)

    def test_suspension_zeroes_features(self):
        # Section IV-B: idle or suspended => CPU(v,t) = DR(v,t) = 0.
        vm = make_vm(workload=PageDirtierWorkload(75.0, vm_ram_mb=512, allocation_mb=512))
        vm.mark_running()
        assert vm.dirtying_ratio_percent() > 0
        vm.mark_suspended()
        assert vm.cpu_percent() == 0.0
        assert vm.dirtying_ratio_percent() == 0.0

    def test_cpu_demand_threads(self):
        vm = make_vm(vcpus=4)
        vm.mark_running()
        assert vm.cpu_demand_threads() == pytest.approx(4 * 0.97)

    def test_workload_swap_updates_dirty_process(self):
        vm = make_vm(ram=4096)
        vm.mark_running()
        vm.set_workload(PageDirtierWorkload(95.0))
        assert vm.dirtying_ratio_percent() > 50.0


class TestHypervisorLifecycle:
    def test_create_and_start(self, xen):
        vm = xen.create_vm(make_vm())
        xen.start_vm(vm.name)
        assert vm.running
        assert xen.host.cpu.demand(f"vm:{vm.name}") > 0

    def test_duplicate_name_rejected(self, xen):
        xen.create_vm(make_vm("a"))
        with pytest.raises(HypervisorError):
            xen.create_vm(make_vm("a"))

    def test_ram_capacity_enforced(self, xen):
        with pytest.raises(CapacityError):
            xen.create_vm(make_vm("big", ram=64 * 1024))

    def test_suspend_removes_demand(self, xen):
        vm = xen.create_vm(make_vm())
        xen.start_vm(vm.name)
        xen.suspend_vm(vm.name)
        assert xen.host.cpu.demand(f"vm:{vm.name}") == 0.0

    def test_destroy_frees_everything(self, xen):
        vm = xen.create_vm(make_vm())
        xen.start_vm(vm.name)
        xen.destroy_vm(vm.name)
        assert vm.host is None
        assert not xen.vms

    def test_unknown_vm(self, xen):
        with pytest.raises(HypervisorError):
            xen.vm("ghost")


class TestEq2Composition:
    def test_vmm_overhead_grows_with_vms(self, xen):
        base = xen.vmm_overhead_threads()
        for i in range(3):
            xen.create_vm(make_vm(f"v{i}"))
            xen.start_vm(f"v{i}")
        assert xen.vmm_overhead_threads() > base

    def test_host_demand_is_eq2_sum(self, xen):
        # CPU(h,t) = CPUVMM + sum CPU(v,t)  (CPUmigr registered by jobs).
        for i in range(2):
            xen.create_vm(make_vm(f"v{i}"))
            xen.start_vm(f"v{i}")
        total = xen.host.cpu.total_demand()
        expected = xen.vmm_overhead_threads() + sum(
            vm.cpu_demand_threads() for vm in xen.running_vms()
        )
        assert total == pytest.approx(expected)

    def test_vmm_key_registered(self, xen):
        assert xen.host.cpu.demand(VMM_KEY) > 0


class TestEvictAdopt:
    def test_evict_then_adopt(self):
        src = XenHypervisor(PhysicalHost(machine_spec("m01"), noise_seed=1))
        tgt = XenHypervisor(PhysicalHost(machine_spec("m02"), noise_seed=2))
        vm = src.create_vm(make_vm())
        src.start_vm(vm.name)
        src.suspend_vm(vm.name)
        moved = src.evict_vm(vm.name)
        assert moved is vm and vm.host is None
        tgt.adopt_vm(vm)
        tgt.resume_vm(vm.name)
        assert vm.host is tgt.host and vm.running

    def test_idle_vm_workload_default(self):
        vm = VirtualMachine("plain", 1, 256)
        assert isinstance(vm.workload, IdleWorkload)
