"""The campaign fault-tolerance layer: taxonomy, ledger, retry budgets,
quarantine and watchdogs.

Covers the ``repro.experiments.faults`` primitives, the ``wavm3-failure/1``
wire format, the executor's retry/quarantine state machine (with fake
backends so failures are deterministic and instant), the queue backend's
quarantine/stale-budget semantics, and the watchdog paths.
"""

import json
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import (
    CampaignExecutor,
    ExecutorBackend,
    RunCache,
    SerialBackend,
    _execute_task,
)
from repro.experiments.faults import (
    EXIT_DEGRADED,
    FailureLedger,
    RetryPolicy,
    RunFailure,
    RunTimeoutError,
    TaskFailure,
    failure_from_exception,
    run_with_deadline,
    stable_unit_interval,
    traceback_digest,
)
from repro.experiments.queue_backend import QueueBackend, _claim_next_task, spool_gc, spool_status
from repro.experiments.runner import ScenarioRunner
from repro.io import (
    PersistenceError,
    append_failure_record,
    load_failure_records,
    run_failure_from_dict,
    run_failure_to_dict,
)
from repro.models.features import HostRole

SEED = 20150901
_HEALTHY = MigrationScenario("CPULOAD-SOURCE", "faults/lv/1vm", live=True, load_vm_count=1)
_POISON = MigrationScenario("CPULOAD-SOURCE", "faults/lv/0vm", live=True, load_vm_count=0)

#: Instant backoff for tests: no sleeping between retries.
_FAST_RETRY = RetryPolicy(base_s=1e-6, cap_s=1e-5, jitter=0.0)


def _failure(**overrides) -> RunFailure:
    base = dict(
        task_id="abcd-0000", scenario="faults/lv/1vm", run_indices=(0,),
        attempt=1, worker="w0", kind="ValueError", message="boom",
        traceback_digest="0123456789ab", wall_s=1.5, at=123.0, fate="retried",
    )
    base.update(overrides)
    return RunFailure(**base)


class TestPrimitives:
    def test_stable_unit_interval_deterministic_and_in_range(self):
        draws = [stable_unit_interval(f"tok:{i}") for i in range(256)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert draws == [stable_unit_interval(f"tok:{i}") for i in range(256)]
        assert len(set(draws)) > 200  # actually spread out, not collapsed

    def test_traceback_digest_stable_and_none_for_empty(self):
        assert traceback_digest(None) is None
        assert traceback_digest("") is None
        digest = traceback_digest("Traceback ...")
        assert digest == traceback_digest("Traceback ...")
        assert len(digest) == 12

    def test_run_failure_rejects_unknown_fate(self):
        with pytest.raises(ExperimentError, match="unknown failure fate"):
            _failure(fate="vanished")

    def test_with_fate_returns_updated_copy(self):
        failure = _failure()
        assert failure.with_fate("quarantined").fate == "quarantined"
        assert failure.fate == "retried"  # frozen original untouched

    def test_failure_from_exception_unwraps_task_failure(self):
        inner = _failure(worker="remote-w3", attempt=1)
        exc = TaskFailure("queue task abcd-0000 failed: boom", failure=inner)
        rebuilt = failure_from_exception(
            exc, task_id="ignored", scenario="ignored", run_indices=(9,),
            attempt=3, worker="coordinator",
        )
        assert rebuilt.worker == "remote-w3"  # backend's record wins...
        assert rebuilt.attempt == 3           # ...except the attempt count

    def test_failure_from_exception_builds_from_bare_exception(self):
        failure = failure_from_exception(
            ValueError("nope"), task_id="t", scenario="s", run_indices=(1, 2),
            attempt=2, worker="serial", traceback_text="tb", at=7.0,
        )
        assert failure.kind == "ValueError"
        assert failure.message == "nope"
        assert failure.run_indices == (1, 2)
        assert failure.at == 7.0
        assert failure.traceback_digest == traceback_digest("tb")


class TestRetryPolicy:
    def test_delays_deterministic_and_capped(self):
        policy = RetryPolicy(base_s=0.1, cap_s=1.0, jitter=0.25)
        delays = [policy.delay_s(a, "task-x") for a in range(1, 8)]
        assert delays == [policy.delay_s(a, "task-x") for a in range(1, 8)]
        assert all(d <= 1.0 * 1.25 for d in delays)
        assert all(d >= 0 for d in delays)

    def test_no_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_s=0.5, cap_s=30.0, jitter=0.0)
        assert [policy.delay_s(a) for a in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 4.0]
        assert policy.delay_s(10) == 30.0  # capped

    def test_jitter_decorrelates_tasks(self):
        policy = RetryPolicy(base_s=1.0, cap_s=8.0, jitter=0.5)
        assert policy.delay_s(1, "task-a") != policy.delay_s(1, "task-b")

    def test_validation(self):
        with pytest.raises(ExperimentError):
            RetryPolicy(base_s=0.0)
        with pytest.raises(ExperimentError):
            RetryPolicy(base_s=2.0, cap_s=1.0)
        with pytest.raises(ExperimentError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ExperimentError):
            RetryPolicy().delay_s(0)


class TestWireFormat:
    def test_round_trip(self):
        failure = _failure()
        assert run_failure_from_dict(run_failure_to_dict(failure)) == failure

    def test_round_trip_nullable_fields(self):
        failure = _failure(traceback_digest=None, wall_s=None)
        assert run_failure_from_dict(run_failure_to_dict(failure)) == failure

    def test_wrong_schema_rejected(self):
        payload = run_failure_to_dict(_failure())
        payload["schema"] = "wavm3-failure/999"
        with pytest.raises(PersistenceError, match="schema"):
            run_failure_from_dict(payload)

    def test_malformed_fate_becomes_persistence_error(self):
        payload = run_failure_to_dict(_failure())
        payload["fate"] = "vanished"
        with pytest.raises(PersistenceError):
            run_failure_from_dict(payload)

    def test_ndjson_append_and_load(self, tmp_path):
        path = tmp_path / "deep" / "failures.ndjson"
        first, second = _failure(), _failure(attempt=2, fate="quarantined")
        append_failure_record(first, path)
        append_failure_record(second, path)
        assert load_failure_records(path) == [first, second]

    def test_load_tolerates_torn_tail_and_missing_file(self, tmp_path):
        path = tmp_path / "failures.ndjson"
        assert load_failure_records(path) == []
        append_failure_record(_failure(), path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema": "wavm3-fail')  # writer died mid-line
        assert len(load_failure_records(path)) == 1


class TestFailureLedger:
    def test_records_persist_and_reset_truncates(self, tmp_path):
        path = tmp_path / "failures.ndjson"
        ledger = FailureLedger(path=path)
        ledger.record(_failure())
        ledger.record(_failure(attempt=2, fate="quarantined"))
        assert len(ledger) == 2
        assert len(load_failure_records(path)) == 2
        ledger.reset()
        assert len(ledger) == 0
        assert not path.exists()

    def test_memory_only_without_path(self):
        ledger = FailureLedger()
        ledger.record(_failure())
        assert ledger.counts_by_fate() == {"retried": 1}

    def test_summary_line(self, tmp_path):
        ledger = FailureLedger(path=tmp_path / "failures.ndjson")
        assert ledger.summary_line() == "failures: none"
        ledger.record(_failure())
        ledger.record(_failure(attempt=2))
        ledger.record(_failure(attempt=3, fate="quarantined"))
        line = ledger.summary_line()
        assert line.startswith("failures: 3 recorded (1 quarantined, 2 retried)")
        assert "failures.ndjson" in line


class TestWatchdog:
    def test_returns_value_inside_deadline(self):
        assert run_with_deadline(lambda: 42, 5.0) == 42
        assert run_with_deadline(lambda: 42, None) == 42  # no thread either

    def test_times_out(self):
        with pytest.raises(RunTimeoutError, match="wall-clock deadline"):
            run_with_deadline(lambda: time.sleep(5.0), 0.05, label="sleepy")

    def test_inner_exception_propagates(self):
        def _boom():
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            run_with_deadline(_boom, 5.0)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ExperimentError):
            run_with_deadline(lambda: 1, 0.0)

    def test_execute_task_watchdog_trips_on_slow_task(self):
        class _SlowTask:
            scenario = _HEALTHY
            run_index = 0

            def execute(self):
                time.sleep(5.0)

        with pytest.raises(RunTimeoutError):
            _execute_task(_SlowTask(), run_timeout=0.05)


class _PoisonBackend(SerialBackend):
    """Serial execution, except tasks of one scenario fail their first
    ``fail_times`` attempts (``None`` = always)."""

    name = "poison"

    def __init__(self, poison_label: str, fail_times=None, exc_factory=None):
        super().__init__()
        self.poison_label = poison_label
        self.fail_times = fail_times
        self.exc_factory = exc_factory or (lambda: ExperimentError("injected failure"))
        self.attempts: dict = {}
        self.quarantined: list = []

    def submit(self, task) -> Future:
        if task.scenario.label == self.poison_label:
            token = f"{task.scenario.label}#{task.run_index}"
            self.attempts[token] = self.attempts.get(token, 0) + 1
            if self.fail_times is None or self.attempts[token] <= self.fail_times:
                future = Future()
                future.set_exception(self.exc_factory())
                return future
        return super().submit(task)

    def quarantine(self, task, task_id: str) -> bool:
        self.quarantined.append(task_id)
        return True


class _HangBackend(ExecutorBackend):
    """Futures that never resolve: forces the campaign deadline path."""

    name = "hang"

    def submit(self, task) -> Future:
        return Future()

    def shutdown(self) -> None:
        pass


class TestExecutorRetries:
    def _executor(self, backend, **kwargs) -> CampaignExecutor:
        kwargs.setdefault("retry_policy", _FAST_RETRY)
        return CampaignExecutor(
            ScenarioRunner(seed=SEED), backend=backend, **kwargs
        )

    def test_transient_failure_retried_to_success_bit_identical(self):
        backend = _PoisonBackend(_POISON.label, fail_times=1)
        executor = self._executor(backend, max_retries=3)
        result = executor.run_campaign([_POISON, _HEALTHY], min_runs=2, max_runs=2)

        assert not executor.stats.degraded
        assert executor.stats.tasks_retried == 2  # one retry per poisoned run
        assert executor.ledger.counts_by_fate() == {"retried": 2}
        assert backend.attempts == {f"{_POISON.label}#0": 2, f"{_POISON.label}#1": 2}

        # Retried runs are byte-identical to the never-failed path.
        serial = ScenarioRunner(seed=SEED).run_campaign(
            [_POISON, _HEALTHY], min_runs=2, max_runs=2
        )
        for sa, sb in zip(serial.scenario_results, result.scenario_results):
            assert np.array_equal(
                sa.total_energies_j(HostRole.SOURCE),
                sb.total_energies_j(HostRole.SOURCE),
            )

    def test_default_budget_raises_original_exception(self):
        backend = _PoisonBackend(_POISON.label)
        executor = self._executor(backend)  # max_retries=1, on_failure="raise"
        with pytest.raises(ExperimentError, match="injected failure"):
            executor.run_campaign([_POISON], min_runs=2, max_runs=2)
        assert backend.attempts[f"{_POISON.label}#0"] == 1  # no silent retry
        assert executor.ledger.counts_by_fate() == {"fatal": 1}

    def test_quarantine_after_exactly_max_retries_attempts(self):
        backend = _PoisonBackend(_POISON.label)  # deterministic failure
        executor = self._executor(backend, max_retries=3, on_failure="quarantine")
        result = executor.run_campaign([_POISON, _HEALTHY], min_runs=2, max_runs=2)

        # Exactly max_retries attempts per task — no infinite requeue.
        assert backend.attempts == {f"{_POISON.label}#0": 3, f"{_POISON.label}#1": 3}
        assert len(backend.quarantined) == 2
        assert executor.stats.tasks_quarantined == 2
        assert executor.stats.runs_abandoned == 2
        assert executor.stats.scenarios_dropped == 1
        assert executor.stats.degraded
        assert executor.ledger.counts_by_fate() == {"retried": 4, "quarantined": 2}
        # The healthy scenario still resolved normally.
        assert [sr.scenario.label for sr in result.scenario_results] == [_HEALTHY.label]

    def test_skip_mode_abandons_without_quarantine(self):
        backend = _PoisonBackend(_POISON.label)
        executor = self._executor(backend, max_retries=2, on_failure="skip")
        result = executor.run_campaign([_POISON, _HEALTHY], min_runs=2, max_runs=2)
        assert backend.quarantined == []
        assert executor.stats.tasks_quarantined == 0
        assert executor.stats.degraded
        assert executor.ledger.counts_by_fate() == {"retried": 2, "skipped": 2}
        assert len(result.scenario_results) == 1

    def test_all_scenarios_lost_raises(self):
        backend = _PoisonBackend(_POISON.label)
        executor = self._executor(backend, max_retries=2, on_failure="skip")
        with pytest.raises(ExperimentError, match="every scenario lost"):
            executor.run_campaign([_POISON], min_runs=2, max_runs=2)

    def test_partial_prefix_kept_when_later_runs_fail(self):
        """Only run #1 fails terminally: the contiguous prefix (run #0)
        survives in a degraded scenario result."""

        class _TailPoison(_PoisonBackend):
            def submit(self, task):
                if task.scenario.label == self.poison_label and task.run_index == 1:
                    return super().submit(task)
                return SerialBackend.submit(self, task)

        backend = _TailPoison(_POISON.label)
        executor = self._executor(backend, max_retries=1, on_failure="skip")
        result = executor.run_campaign([_POISON], min_runs=2, max_runs=2)
        (sr,) = result.scenario_results
        assert sr.n_runs == 1
        assert executor.stats.degraded
        assert executor.stats.runs_abandoned == 1

    def test_watchdog_timeout_lands_in_ledger(self):
        backend = _PoisonBackend(
            _POISON.label, exc_factory=lambda: RunTimeoutError("run exceeded 1s")
        )
        executor = self._executor(backend, max_retries=1, on_failure="skip")
        executor.run_campaign([_POISON, _HEALTHY], min_runs=2, max_runs=2)
        kinds = {record.kind for record in executor.ledger.records}
        assert kinds == {"RunTimeoutError"}

    def test_non_retryable_failure_skips_remaining_budget(self):
        backend = _PoisonBackend(
            _POISON.label,
            exc_factory=lambda: TaskFailure(
                "lease budget exhausted",
                failure=_failure(kind="StaleLease"),
                retryable=False,
            ),
        )
        executor = self._executor(backend, max_retries=5, on_failure="skip")
        executor.run_campaign([_POISON, _HEALTHY], min_runs=2, max_runs=2)
        assert backend.attempts[f"{_POISON.label}#0"] == 1  # no futile retries
        assert executor.stats.tasks_retried == 0

    def test_ledger_persisted_next_to_cache(self, tmp_path):
        backend = _PoisonBackend(_POISON.label)
        executor = self._executor(
            backend, max_retries=2, on_failure="quarantine",
            cache_dir=tmp_path / "cache",
        )
        executor.run_campaign([_POISON, _HEALTHY], min_runs=2, max_runs=2)
        records = load_failure_records(tmp_path / "cache" / "failures.ndjson")
        assert len(records) == len(executor.ledger.records) > 0
        assert {r.fate for r in records} == {"retried", "quarantined"}
        # A fresh campaign truncates the previous ledger file.
        backend2 = _PoisonBackend("none-poisoned")
        executor2 = self._executor(backend2, cache_dir=tmp_path / "cache")
        executor2.run_campaign([_HEALTHY], min_runs=2, max_runs=2)
        assert load_failure_records(tmp_path / "cache" / "failures.ndjson") == []

    def test_campaign_deadline_aborts_with_ledger_records(self):
        executor = self._executor(_HangBackend(), campaign_timeout=0.3)
        started = time.monotonic()
        with pytest.raises(ExperimentError, match="campaign deadline"):
            executor.run_campaign([_HEALTHY], min_runs=2, max_runs=2)
        assert time.monotonic() - started < 10.0  # aborted, not hung
        assert len(executor.ledger.records) == 2  # both in-flight tasks
        assert {r.kind for r in executor.ledger.records} == {"CampaignTimeout"}
        assert {r.fate for r in executor.ledger.records} == {"fatal"}

    def test_invalid_knobs_rejected(self):
        runner = ScenarioRunner(seed=SEED)
        with pytest.raises(ExperimentError):
            CampaignExecutor(runner, max_retries=0)
        with pytest.raises(ExperimentError):
            CampaignExecutor(runner, on_failure="explode")
        with pytest.raises(ExperimentError):
            CampaignExecutor(runner, run_timeout=0.0)
        with pytest.raises(ExperimentError):
            CampaignExecutor(runner, campaign_timeout=-1.0)

    def test_exit_degraded_constant(self):
        from repro.cli import _EXIT_DEGRADED

        assert EXIT_DEGRADED == _EXIT_DEGRADED == 3


class TestQueueQuarantine:
    def _task(self, run_index: int = 0):
        from repro.experiments.executor import RunTask
        from repro.experiments.runner import RunnerSettings
        from repro.telemetry.stabilization import StabilizationRule

        settings = RunnerSettings()
        rule = StabilizationRule()
        key = RunCache.scenario_key(SEED, _HEALTHY, settings, None, rule)
        return RunTask(
            seed=SEED, settings=settings, migration_config=None,
            stabilization=rule, scenario=_HEALTHY, run_index=run_index, key=key,
        )

    def test_quarantine_moves_spec_and_status_reports_it(self, tmp_path):
        backend = QueueBackend(
            tmp_path / "spool", RunCache(tmp_path / "cache"), poll_interval=0.02
        )
        task = self._task()
        future = backend.submit(task)
        assert backend.quarantine(task, future.task_id) is True
        spec_path = backend.spool.quarantine / f"{future.task_id}.json"
        assert spec_path.is_file()
        assert not (backend.spool.tasks / f"{future.task_id}.json").exists()
        assert backend.stats.tasks_quarantined == 1

        status = spool_status(tmp_path / "spool")
        assert status["tasks_quarantined"] == 1
        assert status["quarantined"] == [future.task_id]
        assert status["tasks_open"] == 0

    def test_spool_gc_sweeps_aged_quarantine(self, tmp_path):
        import os

        backend = QueueBackend(
            tmp_path / "spool", RunCache(tmp_path / "cache"), poll_interval=0.02
        )
        task = self._task()
        future = backend.submit(task)
        backend.quarantine(task, future.task_id)
        spec_path = backend.spool.quarantine / f"{future.task_id}.json"
        long_ago = time.time() - 7200
        os.utime(spec_path, (long_ago, long_ago))

        dry = spool_gc(tmp_path / "spool", max_age_s=3600.0, dry_run=True)
        assert dry["quarantine"] == 1
        assert spec_path.exists()  # dry run touches nothing

        report = spool_gc(tmp_path / "spool", max_age_s=3600.0)
        assert report["quarantine"] == 1
        assert f"quarantine/{future.task_id}.json" in report["files"]
        assert not spec_path.exists()

        # Young quarantined specs survive the sweep.
        future2 = backend.submit(self._task(1))
        backend.quarantine(self._task(1), future2.task_id)
        report = spool_gc(tmp_path / "spool", max_age_s=3600.0)
        assert report["quarantine"] == 0

    def test_stale_lease_budget_fails_future_non_retryable(self, tmp_path):
        import os

        backend = QueueBackend(
            tmp_path / "spool", RunCache(tmp_path / "cache"),
            poll_interval=0.02, stale_timeout=0.5, max_requeues=0,
        )
        future = backend.submit(self._task())
        claim = _claim_next_task(backend.spool)
        assert claim is not None
        long_ago = time.time() - 60
        os.utime(claim, (long_ago, long_ago))

        done = backend.wait([future], timeout=30.0)
        assert done == {future}
        exc = future.exception()
        assert isinstance(exc, TaskFailure)
        assert exc.retryable is False
        assert exc.failure.kind == "StaleLease"
        assert backend.stats.leases_failed == 1
        assert backend.stats.tasks_requeued == 0

    def test_stale_lease_budget_allows_bounded_requeues(self, tmp_path):
        import os

        backend = QueueBackend(
            tmp_path / "spool", RunCache(tmp_path / "cache"),
            poll_interval=0.02, stale_timeout=0.5, max_requeues=1,
        )
        future = backend.submit(self._task())
        # First expiry: requeued (budget 1).
        claim = _claim_next_task(backend.spool)
        long_ago = time.time() - 60
        os.utime(claim, (long_ago, long_ago))
        deadline = time.monotonic() + 30.0
        while not (backend.spool.tasks / claim.name).exists():
            backend.wait([future], timeout=0.05)
            assert time.monotonic() < deadline
        assert backend.stats.tasks_requeued == 1
        # Second expiry: budget exhausted, future fails.
        claim = _claim_next_task(backend.spool)
        os.utime(claim, (long_ago, long_ago))
        done = backend.wait([future], timeout=30.0)
        assert done == {future}
        assert isinstance(future.exception(), TaskFailure)
        assert backend.stats.leases_failed == 1
