"""Seed-batched run execution: RunBatchTask, the wavm3-taskspec/2 wire
format, worker-side execute_batch, and golden byte-identity between
batched and per-run dispatch on every backend.
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import (
    CampaignExecutor,
    RunBatchTask,
    RunCache,
    RunTask,
    _contiguous_spans,
    execute_batch,
)
from repro.experiments.http_backend import run_http_worker
from repro.experiments.queue_backend import (
    QueueBackend,
    run_worker,
    task_id_for,
)
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.io import (
    PersistenceError,
    dump_run_batch_bytes,
    load_run_batch_bytes,
    save_samples_json,
    task_spec_from_dict,
    task_spec_to_dict,
)
from repro.telemetry.stabilization import StabilizationRule

SEED = 20150901
_SCENARIO = MigrationScenario("CPULOAD-SOURCE", "batch/nl/0vm", live=False, load_vm_count=0)


def _batch_task(run_start=0, run_count=3, scenario=_SCENARIO, with_key=True):
    settings = RunnerSettings()
    rule = StabilizationRule()
    key = (
        RunCache.scenario_key(SEED, scenario, settings, None, rule)
        if with_key
        else None
    )
    return RunBatchTask(
        seed=SEED, settings=settings, migration_config=None,
        stabilization=rule, scenario=scenario,
        run_start=run_start, run_count=run_count, key=key,
    )


def _assert_runs_identical(a, b):
    assert a.run_index == b.run_index
    assert a.scenario == b.scenario
    assert a.timeline.ms == b.timeline.ms
    assert a.timeline.me == b.timeline.me
    assert a.timeline.bytes_total == b.timeline.bytes_total
    assert np.array_equal(a.source_trace.times, b.source_trace.times)
    assert np.array_equal(a.source_trace.watts, b.source_trace.watts)
    assert np.array_equal(a.target_trace.watts, b.target_trace.watts)


class TestRunBatchTask:
    def test_run_indices_cover_the_range(self):
        task = _batch_task(run_start=2, run_count=3)
        assert list(task.run_indices) == [2, 3, 4]

    @pytest.mark.parametrize("start,count", [(-1, 2), (0, 0), (3, -1)])
    def test_invalid_range_rejected(self, start, count):
        with pytest.raises(ExperimentError, match="invalid batch range"):
            _batch_task(run_start=start, run_count=count)

    def test_execute_is_bit_identical_to_run_once(self):
        runner = ScenarioRunner(seed=SEED)
        singles = [runner.run_once(_SCENARIO, run_index=i) for i in range(3)]
        batched = _batch_task(run_start=0, run_count=3).execute()
        assert [r.run_index for r in batched] == [0, 1, 2]
        for single, from_batch in zip(singles, batched):
            _assert_runs_identical(single, from_batch)

    def test_on_run_callback_sees_every_run_in_order(self):
        seen = []
        runs = _batch_task(run_count=2).execute(on_run=lambda r: seen.append(r.run_index))
        assert seen == [0, 1]
        assert [r.run_index for r in runs] == [0, 1]

    def test_key_payload_matches_single_run_task(self):
        batch = _batch_task()
        single = RunTask(
            seed=batch.seed, settings=batch.settings, migration_config=None,
            stabilization=batch.stabilization, scenario=batch.scenario,
            run_index=0, key=batch.key,
        )
        assert batch.key_payload() == single.key_payload()

    def test_run_batch_rejects_empty_and_negative_indices(self):
        runner = ScenarioRunner(seed=SEED)
        with pytest.raises(ExperimentError, match="at least one run index"):
            runner.run_batch(_SCENARIO, [])
        with pytest.raises(ExperimentError, match="non-negative integers"):
            runner.run_batch(_SCENARIO, [0, -2])

    def test_execute_batch_validates_scenario_upfront(self, monkeypatch):
        import repro.experiments.instances as instances

        monkeypatch.setattr(instances, "INSTANCE_CATALOG", {})
        with pytest.raises(ExperimentError, match="unknown instance"):
            execute_batch(
                SEED, RunnerSettings(), None, StabilizationRule(), _SCENARIO, [0, 1]
            )


class TestContiguousSpans:
    def test_gaps_force_span_breaks(self):
        assert _contiguous_spans([0, 1, 2, 5, 6, 9]) == [[0, 1, 2], [5, 6], [9]]

    def test_empty_and_single(self):
        assert _contiguous_spans([]) == []
        assert _contiguous_spans([4]) == [[4]]


class TestTaskSpecWireFormat:
    def test_batch_spec_round_trips_as_taskspec_2(self):
        task = _batch_task(run_start=1, run_count=4)
        spec = task_spec_to_dict(task)
        assert spec["schema"] == "wavm3-taskspec/2"
        assert spec["run_start"] == 1 and spec["run_count"] == 4
        assert "run_index" not in spec
        rebuilt = task_spec_from_dict(spec)
        assert isinstance(rebuilt, RunBatchTask)
        assert rebuilt == task

    def test_single_spec_still_taskspec_1(self):
        task = RunTask(
            seed=SEED, settings=RunnerSettings(), migration_config=None,
            stabilization=StabilizationRule(), scenario=_SCENARIO,
            run_index=2, key="ab" * 32,
        )
        spec = task_spec_to_dict(task)
        assert spec["schema"] == "wavm3-taskspec/1"
        assert spec["run_index"] == 2
        assert task_spec_from_dict(spec) == task

    def test_unknown_schema_rejected(self):
        spec = task_spec_to_dict(_batch_task())
        spec["schema"] = "wavm3-taskspec/99"
        with pytest.raises(PersistenceError, match="unexpected task-spec schema"):
            task_spec_from_dict(spec)

    def test_batch_task_id_encodes_range(self):
        task = _batch_task(run_start=3, run_count=5)
        assert task_id_for(task) == f"{task.key[:16]}-0003x5"

    def test_run_batch_envelope_round_trips(self):
        runs = _batch_task(run_count=2).execute()
        payload = dump_run_batch_bytes(runs)
        loaded = load_run_batch_bytes(payload)
        assert [r.run_index for r in loaded] == [0, 1]
        for original, rebuilt in zip(runs, loaded):
            _assert_runs_identical(original, rebuilt)

    def test_run_batch_envelope_rejects_garbage(self):
        with pytest.raises(PersistenceError, match="not a readable run batch"):
            load_run_batch_bytes(b"not a pickle")
        import pickle

        empty = pickle.dumps({"schema": "wavm3-runbatch/1", "runs": []})
        with pytest.raises(PersistenceError, match="no runs"):
            load_run_batch_bytes(empty)
        wrong = pickle.dumps({"schema": "wavm3-runbatch/1", "runs": ["x"]})
        with pytest.raises(PersistenceError, match="not a RunResult"):
            load_run_batch_bytes(wrong)


class TestGoldenByteIdentity:
    """Acceptance: byte-identical campaign samples JSON between
    --batch-size 1 (per-run) and batched dispatch on every backend."""

    RUNS = 3

    def _samples_bytes(self, result, path):
        save_samples_json(result.samples(), path)
        return path.read_bytes()

    def _local(self, tmp_path, jobs, batch_size, tag):
        executor = CampaignExecutor(
            ScenarioRunner(seed=SEED), jobs=jobs,
            cache_dir=tmp_path / f"cache-{tag}", batch_size=batch_size,
        )
        result = executor.run_campaign([_SCENARIO], min_runs=self.RUNS, max_runs=self.RUNS)
        return executor, result

    def test_serial_backend(self, tmp_path):
        ex1, r1 = self._local(tmp_path, 1, 1, "s1")
        exN, rN = self._local(tmp_path, 1, None, "sN")
        assert ex1.backend == exN.backend == "serial"
        assert self._samples_bytes(r1, tmp_path / "s1.json") == self._samples_bytes(
            rN, tmp_path / "sN.json"
        )
        assert exN.stats.runs_executed == self.RUNS

    def test_process_backend(self, tmp_path):
        ex1, r1 = self._local(tmp_path, 2, 1, "p1")
        exN, rN = self._local(tmp_path, 2, 2, "pN")
        assert ex1.backend == exN.backend == "process"
        assert self._samples_bytes(r1, tmp_path / "p1.json") == self._samples_bytes(
            rN, tmp_path / "pN.json"
        )

    def test_queue_backend(self, tmp_path):
        def campaign(batch_size, tag):
            spool = tmp_path / f"spool-{tag}"
            cache = tmp_path / f"qcache-{tag}"
            executor = CampaignExecutor(
                ScenarioRunner(seed=SEED), backend="queue", cache_dir=cache,
                spool_dir=spool, batch_size=batch_size,
                queue_options={"poll_interval": 0.02, "stop_workers_on_shutdown": True},
            )
            worker = threading.Thread(
                target=run_worker, args=(spool, cache),
                kwargs={"poll_interval": 0.02, "worker_id": f"w-{tag}"},
                daemon=True,
            )
            worker.start()
            result = executor.run_campaign(
                [_SCENARIO], min_runs=self.RUNS, max_runs=self.RUNS
            )
            worker.join(timeout=30)
            return executor, result

        ex1, r1 = campaign(1, "q1")
        exN, rN = campaign(self.RUNS, "qN")
        assert self._samples_bytes(r1, tmp_path / "q1.json") == self._samples_bytes(
            rN, tmp_path / "qN.json"
        )
        # The whole wave went out as one spool spec.
        assert ex1.queue_stats.tasks_submitted == self.RUNS
        assert exN.queue_stats.tasks_submitted == 1
        # Progress stays per-run regardless of batching.
        assert len(exN.progress_events) == self.RUNS
        assert sorted(e.run_index for e in exN.progress_events) == list(range(self.RUNS))

    def test_http_backend(self, tmp_path):
        def campaign(batch_size, tag):
            executor = CampaignExecutor(
                ScenarioRunner(seed=SEED), backend="http",
                cache_dir=tmp_path / f"hcache-{tag}", serve="127.0.0.1:0",
                batch_size=batch_size,
                http_options={"stop_workers_on_shutdown": True, "stop_grace_s": 2.0},
            )
            worker = threading.Thread(
                target=run_http_worker, args=(executor.serve_url,),
                kwargs={"poll_interval": 0.01, "worker_id": f"hw-{tag}"},
                daemon=True,
            )
            worker.start()
            result = executor.run_campaign(
                [_SCENARIO], min_runs=self.RUNS, max_runs=self.RUNS
            )
            worker.join(timeout=30)
            return executor, result

        ex1, r1 = campaign(1, "h1")
        exN, rN = campaign(self.RUNS, "hN")
        assert self._samples_bytes(r1, tmp_path / "h1.json") == self._samples_bytes(
            rN, tmp_path / "hN.json"
        )
        assert exN.queue_stats.tasks_submitted == 1
        assert len(exN.progress_events) == self.RUNS
        assert all(e.worker == "hw-hN" for e in exN.progress_events)

    def test_batched_warm_rerun_performs_zero_runs(self, tmp_path):
        self._local(tmp_path, 1, None, "warm")
        executor, _ = self._local(tmp_path, 1, None, "warm")
        assert executor.stats.runs_executed == 0
        assert executor.stats.runs_cached == self.RUNS


class TestChunkedDispatch:
    def test_cache_hole_splits_contiguous_spans(self, tmp_path):
        """A cache hit mid-wave must break the batch into spans around it."""
        cache_dir = tmp_path / "cache"
        executor = CampaignExecutor(
            ScenarioRunner(seed=SEED), cache_dir=cache_dir, batch_size=None
        )
        key = RunCache.scenario_key(
            SEED, _SCENARIO, executor.runner.settings, None, executor.runner.stabilization
        )
        warm = ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=1)
        executor.cache.put(key, warm, key_payload=RunCache._key_payload(
            SEED, _SCENARIO, executor.runner.settings, None, executor.runner.stabilization,
        ))

        submitted = []
        original = executor._backend.submit
        executor._backend.submit = lambda task: (submitted.append(task), original(task))[1]
        result = executor.run_campaign([_SCENARIO], min_runs=4, max_runs=4)

        assert executor.stats.runs_cached == 1
        assert executor.stats.runs_executed == 3
        kinds = sorted(
            (type(task).__name__, getattr(task, "run_index", None),
             getattr(task, "run_start", None), getattr(task, "run_count", None))
            for task in submitted
        )
        # Index 1 came from cache: span [0] dispatches as a single task,
        # span [2, 3] as one batch.
        assert kinds == [
            ("RunBatchTask", None, 2, 2),
            ("RunTask", 0, None, None),
        ]
        serial = ScenarioRunner(seed=SEED).run_campaign([_SCENARIO], min_runs=4, max_runs=4)
        for a, b in zip(serial.scenario_results[0].runs, result.scenario_results[0].runs):
            _assert_runs_identical(a, b)

    def test_explicit_batch_size_chunks_waves(self, tmp_path):
        executor = CampaignExecutor(
            ScenarioRunner(seed=SEED), cache_dir=tmp_path / "cache", batch_size=2
        )
        submitted = []
        original = executor._backend.submit
        executor._backend.submit = lambda task: (submitted.append(task), original(task))[1]
        executor.run_campaign([_SCENARIO], min_runs=5, max_runs=5)
        shapes = sorted(
            (getattr(task, "run_start", getattr(task, "run_index", None)),
             getattr(task, "run_count", 1))
            for task in submitted
        )
        assert shapes == [(0, 2), (2, 2), (4, 1)]

    def test_batch_size_validation(self):
        with pytest.raises(ExperimentError, match="batch_size"):
            CampaignExecutor(ScenarioRunner(seed=SEED), batch_size=0)


class TestQueueWorkerBatch:
    def test_partial_cache_short_circuits_per_run(self, tmp_path):
        """A batch claim re-simulates only the runs missing from the cache."""
        spool = tmp_path / "spool"
        cache_dir = tmp_path / "cache"
        cache = RunCache(cache_dir)
        task = _batch_task(run_start=0, run_count=3)
        warm = ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=1)
        cache.put(task.key, warm, key_payload=task.key_payload())

        backend = QueueBackend(spool, cache, poll_interval=0.02)
        future = backend.submit(task)
        stats = run_worker(
            spool, cache_dir, poll_interval=0.02, max_tasks=1, worker_id="w-partial"
        )
        assert stats.claimed == 1
        assert stats.cached == 1
        assert stats.executed == 2
        assert stats.failed == 0
        done = backend.wait([future])
        assert future in done
        runs = future.result()
        assert [r.run_index for r in runs] == [0, 1, 2]
        singles = [ScenarioRunner(seed=SEED).run_once(_SCENARIO, run_index=i) for i in range(3)]
        for a, b in zip(singles, runs):
            _assert_runs_identical(a, b)

    def test_late_joining_worker_drains_spooled_batch(self, tmp_path):
        """Satellite: capacity is None until a worker heartbeats, so the
        first wave is spooled cold (sized from jobs); a worker that joins
        afterwards must drain it and complete the campaign."""
        spool = tmp_path / "spool"
        cache_dir = tmp_path / "cache"
        executor = CampaignExecutor(
            ScenarioRunner(seed=SEED), backend="queue", cache_dir=cache_dir,
            spool_dir=spool, batch_size=None,
            queue_options={"poll_interval": 0.02, "stop_workers_on_shutdown": True},
        )
        assert executor._backend.capacity is None  # nobody has heartbeat yet

        def late_worker():
            time.sleep(0.3)
            run_worker(spool, cache_dir, poll_interval=0.02, worker_id="w-late")

        worker = threading.Thread(target=late_worker, daemon=True)
        worker.start()
        result = executor.run_campaign([_SCENARIO], min_runs=2, max_runs=2)
        worker.join(timeout=30)
        assert executor.stats.runs_executed == 2
        # Cold start fell back to jobs=1: the whole wave left as one batch.
        assert executor.queue_stats.tasks_submitted == 1
        serial = ScenarioRunner(seed=SEED).run_campaign([_SCENARIO], min_runs=2, max_runs=2)
        for a, b in zip(serial.scenario_results[0].runs, result.scenario_results[0].runs):
            _assert_runs_identical(a, b)


class TestBenchBatch:
    def test_bench_batch_shape(self):
        from repro.bench import bench_batch

        out = bench_batch(runs=2, repeats=1)
        assert set(out) == {
            "serial", "per_run", "batched", "overhead_x", "speedup", "runs", "scenario",
        }
        assert out["runs"] == 2
        for arm in ("serial", "per_run", "batched"):
            assert out[arm]["wall_s"] > 0
        assert out["overhead_x"] > 0 and out["speedup"] > 0


class TestCliBatchSize:
    @pytest.mark.parametrize("value", ["0", "-2", "maybe"])
    def test_invalid_batch_size_rejected(self, value):
        from repro.cli import main

        with pytest.raises(SystemExit) as info:
            main(["campaign", "--batch-size", value])
        assert info.value.code == 2

    def test_auto_and_integer_accepted(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["campaign", "--batch-size", "auto"])
        assert args.batch_size is None
        args = build_parser().parse_args(["campaign", "--batch-size", "4"])
        assert args.batch_size == 4
