"""The telemetry control plane, engine half: ControlLoop + consolidation.

Pins the tentpole guarantees of the unified control plane:

* the engine's two-phase control-hook protocol (bound → advance → fire)
  truncates event-free intervals exactly at acting ticks, moves the clock
  there, and lets actions schedule events;
* :class:`~repro.simulator.control.ControlLoop` takes bit-identical
  actions at bit-identical tick times in ``batched`` and ``events`` mode;
* the consolidation manager — riding that loop — issues the same
  migrations at the same instants in both telemetry modes;
* the consolidation scenario archetypes produce **byte-identical**
  campaign samples JSON across ``RunnerSettings(telemetry=...)``
  (seed-sweep golden test, mirroring ``tests/test_telemetry_batched.py``).
"""

import numpy as np
import pytest

from repro.consolidation import (
    ConsolidationManager,
    DataCenter,
    EnergyAwarePolicy,
    FirstFitPolicy,
    Wavm3PlanningEstimator,
)
from repro.errors import ConfigurationError
from repro.experiments.design import MigrationScenario, consolidation_scenarios
from repro.experiments.executor import RunCache
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.hypervisor import VirtualMachine
from repro.io import save_samples_json
from repro.models.coefficients import paper_wavm3_coefficients
from repro.simulator import ControlLoop, PeriodicSampler, Simulator
from repro.telemetry.stabilization import StabilizationRule
from repro.workloads import MatrixMultWorkload

#: Fast protocol settings shared with the telemetry golden tests.
FAST = dict(
    min_warmup_s=2.0, max_warmup_s=6.0, min_post_s=2.0, max_post_s=6.0,
    check_interval_s=1.0,
)

#: The consolidation archetypes (manager-driven drains).
CONSOLIDATION_ARCHETYPES = consolidation_scenarios()


def _runner(mode: str, seed: int) -> ScenarioRunner:
    return ScenarioRunner(seed=seed, settings=RunnerSettings(telemetry=mode, **FAST))


class TestControlLoop:
    """The shared cadence abstraction, mode for mode."""

    def _drive(self, batched: bool, act_every: int = 3):
        """A loop that acts on every ``act_every``-th tick; returns the log."""
        sim = Simulator()
        acted = []
        evaluated = set()

        def decide(t):
            evaluated.add(t)
            k = round(t / 0.7)
            return "go" if k % act_every == 0 else None

        loop = ControlLoop(
            sim, 0.7, decide=decide, act=lambda t, d: acted.append((t, d)),
            batched=batched,
        )
        loop.start()
        sim.schedule(3.3, lambda: None)  # a state-free event mid-way
        for _ in range(4):
            sim.run_for(2.5)
        loop.stop()
        return acted, evaluated, loop

    def test_actions_bit_identical_across_modes(self):
        events, _, _ = self._drive(batched=False)
        batched, _, _ = self._drive(batched=True)
        assert events == batched
        assert events  # non-empty

    def test_noop_ticks_are_consumed_in_both_modes(self):
        _, _, loop_events = self._drive(batched=False)
        _, _, loop_batched = self._drive(batched=True)
        assert loop_events.samples_taken == loop_batched.samples_taken

    def test_action_sees_clock_at_tick_time(self):
        for batched in (False, True):
            sim = Simulator()
            seen = []
            loop = ControlLoop(
                sim, 1.3, decide=lambda t: "x",
                act=lambda t, d: seen.append((t, sim.now)),
                batched=batched,
            )
            loop.start()
            sim.run_for(5.0)
            loop.stop()
            assert seen, batched
            assert all(t == now for t, now in seen), batched

    def test_action_may_schedule_events(self):
        """Control actions schedule events; observers still see every tick."""
        for batched in (False, True):
            sim = Simulator()
            fired = []
            ticks = []
            sampler = PeriodicSampler(sim, 0.5, ticks.append, batched=batched)
            loop = ControlLoop(
                sim, 2.0, decide=lambda t: True,
                act=lambda t, d: sim.schedule(0.25, fired.append, t),
                batched=batched,
            )
            sampler.start()
            loop.start()
            sim.run_for(10.0)
            loop.stop()
            sampler.stop()
            assert fired == [2.0, 4.0, 6.0, 8.0]
            assert ticks == [0.5 * k for k in range(1, 21)]

    def test_stop_drops_future_actions(self):
        sim = Simulator()
        acted = []
        loop = ControlLoop(
            sim, 1.0, decide=lambda t: "x", act=lambda t, d: acted.append(t),
            batched=True,
        )
        loop.start()
        sim.run_for(2.0)
        loop.stop()
        assert not loop.running
        sim.run_for(5.0)
        assert acted == [1.0, 2.0]

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ControlLoop(sim, 0.0, decide=lambda t: None)
        with pytest.raises(ConfigurationError):
            ControlLoop(sim, 1.0, decide=lambda t: None, phase=-1.0)

    def test_observer_sampler_never_bounds(self):
        """PeriodicSampler disables the control protocol it inherits."""
        sampler = PeriodicSampler(Simulator(), 0.5, lambda t: None, batched=True)
        assert sampler.bound_advance is None
        assert sampler.fire_control is None

    def test_action_cancelling_a_same_time_event(self):
        """An action at exactly the head event's timestamp may cancel it.

        In batched mode the control protocol orders the action *before*
        the same-instant event, so the victim never fires — and crucially
        the engine must re-read the heap instead of firing the
        just-cancelled head (which would also corrupt the pending
        counter).  Event mode orders the exact tie by scheduling history
        instead (the victim was scheduled first, so it fires) — the
        documented divergence that shipped control loops avoid with
        off-grid phases.
        """
        for batched, expect_fired in ((False, ["victim"]), (True, [])):
            sim = Simulator()
            fired = []
            victim = sim.schedule(2.0, fired.append, "victim")
            loop = ControlLoop(
                sim, 2.0, decide=lambda t: True,
                act=lambda t, d: victim.cancel(),
                batched=batched,
            )
            loop.start()
            sim.run_for(5.0)
            loop.stop()
            assert fired == expect_fired, batched
            assert sim.pending_events == 0, batched

    def test_decision_memo_does_not_leak_across_intervals(self):
        """decide() verdicts cached during one interval's scan must not
        survive into the next interval (state may have changed)."""
        sim = Simulator()
        gate = {"open": False}
        acted = []

        def decide(t):
            return "go" if gate["open"] else None

        loop = ControlLoop(sim, 1.0, decide=decide, act=lambda t, d: acted.append(t),
                           batched=True)
        loop.start()
        sim.run_for(3.25)          # scans ticks 1..3 as no-ops
        sim.schedule(0.25, lambda: gate.update(open=True))
        sim.run_for(2.0)           # state flips at 3.5; ticks 4, 5 must act
        loop.stop()
        assert acted == [4.0, 5.0]

    def test_action_exactly_at_run_bound(self):
        """An acting tick landing exactly on run(until=...) still fires,
        in both modes, including events it schedules at that instant."""
        for batched in (False, True):
            sim = Simulator()
            fired = []
            loop = ControlLoop(
                sim, 2.0, decide=lambda t: True,
                act=lambda t, d: sim.schedule(0.0, fired.append, t),
                batched=batched,
            )
            loop.start()
            sim.run_for(4.0)  # bound lands exactly on the second tick
            loop.stop()
            assert fired == [2.0, 4.0], batched


class TestManagerCrossMode:
    """The consolidation manager under both telemetry modes."""

    def _dc(self, seed: int = 3):
        sim = Simulator()
        dc = DataCenter(sim, ["m01", "m02", "m01"], seed=seed)
        dc.place("m01", VirtualMachine("light", 1, 1024, MatrixMultWorkload(vm_ram_mb=1024)))
        return dc

    def test_same_decisions_and_issue_times(self):
        logs = {}
        for mode in ("events", "batched"):
            dc = self._dc()
            manager = ConsolidationManager(
                dc,
                EnergyAwarePolicy(Wavm3PlanningEstimator(paper_wavm3_coefficients(live=True))),
                underload_threshold=0.5, period_s=5.0, telemetry=mode,
            )
            manager.start()
            dc.sim.run_for(400.0)
            manager.stop()
            logs[mode] = [
                (d.at, d.move.vm_name, d.move.source, d.move.target, d.move.score)
                for d in manager.decisions
            ]
            assert manager.migrations_issued >= 1
        assert logs["events"] == logs["batched"]

    def test_busy_guard_holds_in_batched_mode(self):
        dc = self._dc()
        dc.place("m02", VirtualMachine("b", 1, 1024, MatrixMultWorkload(vm_ram_mb=1024)))
        manager = ConsolidationManager(
            dc, FirstFitPolicy(), underload_threshold=0.5, period_s=2.0,
            telemetry="batched",
        )
        manager.start()
        dc.sim.run_for(20.0)  # migration takes ~45 s; ticks keep arriving
        assert manager.migrations_issued == 1

    def test_active_job_exposed(self):
        dc = self._dc()
        manager = ConsolidationManager(
            dc, FirstFitPolicy(), underload_threshold=0.5, period_s=2.0,
        )
        manager.start()
        dc.sim.run_for(10.0)
        assert manager.active_job is not None
        assert manager.busy

    def test_invalid_telemetry_rejected(self):
        with pytest.raises(ConfigurationError):
            ConsolidationManager(self._dc(), FirstFitPolicy(), telemetry="turbo")


class TestConsolidationGoldenCrossPath:
    """events vs batched over the consolidation archetypes: the same bits."""

    @pytest.mark.parametrize("seed", [0, 20150901])
    def test_campaign_samples_json_byte_identical(self, tmp_path, seed):
        """Acceptance: byte-identical campaign samples JSON."""
        blobs = {}
        for mode in ("events", "batched"):
            result = _runner(mode, seed).run_campaign(
                CONSOLIDATION_ARCHETYPES, min_runs=2, max_runs=2
            )
            path = tmp_path / f"{mode}-{seed}.json"
            save_samples_json(result.samples(), path)
            blobs[mode] = path.read_bytes()
        assert blobs["events"] == blobs["batched"]

    @pytest.mark.parametrize(
        "scenario", CONSOLIDATION_ARCHETYPES, ids=lambda s: s.label
    )
    def test_every_trace_bit_identical(self, scenario):
        a = _runner("events", 7).run_once(scenario, 0)
        b = _runner("batched", 7).run_once(scenario, 0)
        assert np.array_equal(a.source_trace.times, b.source_trace.times)
        assert np.array_equal(a.source_trace.watts, b.source_trace.watts)
        assert np.array_equal(a.target_trace.times, b.target_trace.times)
        assert np.array_equal(a.target_trace.watts, b.target_trace.watts)
        assert np.array_equal(a.features.times, b.features.times)
        for column in a.features.columns:
            assert np.array_equal(a.features.column(column), b.features.column(column))
        assert a.timeline.ms == b.timeline.ms
        assert a.timeline.me == b.timeline.me
        assert a.timeline.bytes_total == b.timeline.bytes_total

    def test_manager_actually_migrated_the_guest(self):
        run = _runner("batched", 11).run_once(CONSOLIDATION_ARCHETYPES[0], 0)
        assert run.timeline.ms is not None and run.timeline.me is not None
        on_target = run.features.column("vm_on_target")
        assert on_target[0] == 0.0 and on_target[-1] == 1.0

    def test_bandwidth_recorded_from_the_issue_tick(self):
        """The recorder's job provider sees the migration the instant the
        manager issues it — no bandwidth-0 gap until the runner's next
        check-grid poll."""
        run = _runner("batched", 11).run_once(CONSOLIDATION_ARCHETYPES[2], 0)
        times = run.features.times
        bw = run.features.column("bw_bps")
        transfer = (times >= run.timeline.ts) & (times <= run.timeline.te)
        assert transfer.sum() > 0
        assert np.all(bw[transfer] > 0)

    def test_driver_field_splits_the_cache_key(self):
        scripted = MigrationScenario(
            "CONSOLIDATION-CPU", "x", live=True, load_vm_count=0, load_on="target"
        )
        managed = MigrationScenario(
            "CONSOLIDATION-CPU", "x", live=True, load_vm_count=0, load_on="target",
            driver="manager",
        )
        keys = {
            s.driver: RunCache.scenario_key(
                1, s, RunnerSettings(), None, StabilizationRule()
            )
            for s in (scripted, managed)
        }
        assert keys["scripted"] != keys["manager"]

    def test_telemetry_mode_does_not_split_the_cache_key(self):
        scenario = CONSOLIDATION_ARCHETYPES[0]
        keys = {
            mode: RunCache.scenario_key(
                1, scenario, RunnerSettings(telemetry=mode), None, StabilizationRule()
            )
            for mode in ("events", "batched")
        }
        assert keys["events"] == keys["batched"]


class TestScenarioValidation:
    def test_manager_load_must_sit_on_target(self):
        with pytest.raises(ConfigurationError):
            MigrationScenario(
                "CONSOLIDATION-CPU", "bad", live=True, load_vm_count=3,
                load_on="source", driver="manager",
            )

    def test_unknown_driver_rejected(self):
        with pytest.raises(ConfigurationError):
            MigrationScenario("X", "bad", live=True, driver="automagic")

    def test_archetype_labels_unique(self):
        labels = [s.label for s in CONSOLIDATION_ARCHETYPES]
        assert len(labels) == len(set(labels))
        assert all(s.driver == "manager" for s in CONSOLIDATION_ARCHETYPES)
