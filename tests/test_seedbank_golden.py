"""The seed-bank batch interior: banked vs per-run, bit for bit.

The tentpole guarantee of the seed-bank executor
(:class:`repro.experiments.seedbank.SeedBank`): driving a ``run_batch``
span as lockstep SoA passes — hundreds of seeds per kernel dispatch —
changes **no byte** of any artifact.  These are the banked analogue of
``tests/test_compute_modes.py``'s cross-mode goldens: campaign samples
JSON and every recorded array must match the per-run interior
(``seed_bank=0``) on every scenario archetype (including the
manager-driven consolidation drain), in every ``compute=`` mode, on the
serial and distributed-queue backends, for non-contiguous index lists
(cache holes), singleton banks, and bank widths smaller than the span.
"""

import threading

import numpy as np
import pytest

from repro.experiments.design import MigrationScenario
from repro.experiments.executor import CampaignExecutor, RunCache
from repro.experiments.queue_backend import run_worker
from repro.experiments.runner import RunnerSettings, ScenarioRunner
from repro.io import save_samples_json
from repro.simulator.kernels import HAVE_NUMBA
from repro.telemetry.stabilization import StabilizationRule

#: Fast protocol settings for cross-bank sweeps (shape preserved: warmup,
#: stabilisation checks, migration wait, post-measurement all exercised).
FAST = dict(
    min_warmup_s=2.0, max_warmup_s=6.0, min_post_s=2.0, max_post_s=6.0,
    check_interval_s=1.0,
)

#: One scenario per archetype of the Table IIa design, plus the
#: manager-driven consolidation drain (its migration instant comes from a
#: policy decision, so banked runs diverge mid-protocol and must drop
#: out of the bank without disturbing each other).
ARCHETYPES = [
    MigrationScenario("CPULOAD-SOURCE", "bank/lv/1vm", live=True, load_vm_count=1),
    MigrationScenario("CPULOAD-SOURCE", "bank/nl/0vm", live=False, load_vm_count=0),
    MigrationScenario(
        "CPULOAD-TARGET", "bank/lv/tgt3", live=True, load_vm_count=3, load_on="target"
    ),
    MigrationScenario("MEMLOAD-VM", "bank/lv/dr55", live=True, dirty_percent=55.0),
    MigrationScenario(
        "MEMLOAD-SOURCE", "bank/lv/mem", live=True, load_vm_count=1,
        dirty_percent=95.0,
    ),
    MigrationScenario(
        "CONSOLIDATION-CPU", "bank/mgr/0vm", live=False, load_vm_count=0,
        load_on="target", driver="manager",
    ),
]

#: Every mode testable in this environment ("numba" covered in its CI lane).
MODES = ["python", "numpy"] + (["numba"] if HAVE_NUMBA else [])


def _runner(seed_bank: int, seed: int = 3, mode: str = "numpy") -> ScenarioRunner:
    settings = RunnerSettings(compute=mode, seed_bank=seed_bank, **FAST)
    return ScenarioRunner(seed=seed, settings=settings)


def _assert_runs_identical(a, b):
    assert a.run_index == b.run_index
    assert a.timeline.ms == b.timeline.ms
    assert a.timeline.me == b.timeline.me
    assert a.timeline.bytes_total == b.timeline.bytes_total
    assert np.array_equal(a.source_trace.times, b.source_trace.times)
    assert np.array_equal(a.source_trace.watts, b.source_trace.watts)
    assert np.array_equal(a.target_trace.times, b.target_trace.times)
    assert np.array_equal(a.target_trace.watts, b.target_trace.watts)
    assert np.array_equal(a.features.times, b.features.times)
    for column in a.features.columns:
        assert np.array_equal(a.features.column(column), b.features.column(column))


class TestGoldenCrossBank:
    """seed_bank=0 vs banked widths: the same bits, per sample, per artifact."""

    @pytest.mark.parametrize("scenario", ARCHETYPES, ids=lambda s: s.label)
    def test_every_trace_bit_identical(self, scenario):
        """Acceptance: every recorded array matches to the last bit."""
        per_run = _runner(0).run_batch(scenario, range(4))
        banked = _runner(8).run_batch(scenario, range(4))
        for a, b in zip(per_run, banked):
            _assert_runs_identical(a, b)

    @pytest.mark.parametrize("mode", MODES)
    def test_compute_modes_bank_identically(self, mode):
        """The bank holds in every compute mode ("python" exercises the
        driver's per-run fallback under the shared timeline)."""
        scenario = ARCHETYPES[0]
        per_run = _runner(0, mode=mode).run_batch(scenario, range(3))
        banked = _runner(8, mode=mode).run_batch(scenario, range(3))
        for a, b in zip(per_run, banked):
            _assert_runs_identical(a, b)

    def test_campaign_samples_json_byte_identical(self, tmp_path):
        """Acceptance: banked campaign samples JSON is byte-identical.

        The per-run reference is the serial campaign loop (``run_once``
        per index); the banked arm dispatches whole waves as batch tasks
        through the serial backend, so every index runs inside a bank.
        """
        scenarios = ARCHETYPES[:2] + ARCHETYPES[-1:]
        reference = _runner(0).run_campaign(scenarios, min_runs=3, max_runs=3)
        executor = CampaignExecutor(_runner(16), batch_size=None)
        banked = executor.run_campaign(scenarios, min_runs=3, max_runs=3)
        blobs = {}
        for name, result in (("per-run", reference), ("banked", banked)):
            path = tmp_path / f"{name}.json"
            save_samples_json(result.samples(), path)
            blobs[name] = path.read_bytes()
        assert blobs["banked"] == blobs["per-run"]

    def test_queue_backend_banked_matches_serial_per_run(self, tmp_path):
        """Acceptance: byte-identity holds across the queue backend."""
        scenario = ARCHETYPES[0]
        serial = _runner(0).run_campaign([scenario], min_runs=3, max_runs=3)
        spool, cache = tmp_path / "spool", tmp_path / "cache"
        executor = CampaignExecutor(
            _runner(16), backend="queue", cache_dir=cache, spool_dir=spool,
            batch_size=None,
            queue_options={"poll_interval": 0.02, "stop_workers_on_shutdown": True},
        )
        worker = threading.Thread(
            target=run_worker, args=(spool, cache),
            kwargs={"poll_interval": 0.02, "worker_id": "sb0", "idle_exit_s": 60.0},
        )
        worker.start()
        try:
            queued = executor.run_campaign([scenario], min_runs=3, max_runs=3)
        finally:
            worker.join()
        blobs = {}
        for name, result in (("serial", serial), ("queued", queued)):
            path = tmp_path / f"{name}.json"
            save_samples_json(result.samples(), path)
            blobs[name] = path.read_bytes()
        assert blobs["serial"] == blobs["queued"]

    def test_non_contiguous_indices_bank_identically(self):
        """Cache holes: a resumed batch passes just the missing indices."""
        scenario = ARCHETYPES[1]
        holes = [0, 2, 5, 6, 9]
        per_run = _runner(0).run_batch(scenario, holes)
        banked = _runner(8).run_batch(scenario, holes)
        assert [r.run_index for r in banked] == holes
        for a, b in zip(per_run, banked):
            _assert_runs_identical(a, b)

    def test_singleton_bank_matches_run_once(self):
        scenario = ARCHETYPES[1]
        single = _runner(16).run_batch(scenario, [4])
        reference = _runner(0).run_once(scenario, run_index=4)
        assert len(single) == 1
        _assert_runs_identical(reference, single[0])

    def test_width_smaller_than_span_chunks_identically(self):
        """A span longer than the bank width runs as consecutive banks."""
        scenario = ARCHETYPES[1]
        per_run = _runner(0).run_batch(scenario, range(7))
        banked = _runner(3).run_batch(scenario, range(7))
        for a, b in zip(per_run, banked):
            _assert_runs_identical(a, b)

    def test_seed_bank_does_not_split_the_cache_key(self):
        scenario = ARCHETYPES[0]
        keys = {
            width: RunCache.scenario_key(
                1, scenario,
                RunnerSettings(seed_bank=width), None, StabilizationRule(),
            )
            for width in (0, 1, 16, 256)
        }
        assert len(set(keys.values())) == 1


class TestRunBatchContracts:
    """run_batch seam regressions: validation and callback safety."""

    def test_all_invalid_indices_reported(self):
        """Every offending index appears in the error, not just the first."""
        runner = _runner(16)
        with pytest.raises(Exception, match=r"\[-2, 'x', -7\]"):
            runner.run_batch(ARCHETYPES[1], [0, -2, "x", 3, -7])

    @pytest.mark.parametrize("width", [0, 8], ids=["per-run", "banked"])
    def test_on_run_exception_preserves_deposited_prefix(self, width):
        """A crashing ``on_run`` loses nothing already deposited.

        Runs 0 and 1 must have been delivered (deposited) before the
        callback raises on run 1; the failure propagates, and a clean
        retry reproduces the exact same results — the partial deposits
        were real, completed runs, not corrupted ones.
        """
        scenario = ARCHETYPES[1]
        deposited = []

        def explode_on_second(run):
            deposited.append(run)
            if len(deposited) == 2:
                raise RuntimeError("deposit failed")

        runner = _runner(width)
        with pytest.raises(RuntimeError, match="deposit failed"):
            runner.run_batch(scenario, range(4), on_run=explode_on_second)
        assert [r.run_index for r in deposited] == [0, 1]
        reference = _runner(0).run_batch(scenario, range(2))
        for a, b in zip(reference, deposited):
            _assert_runs_identical(a, b)
