"""Workload behavioural models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads import (
    IdleWorkload,
    MatrixMultWorkload,
    MixedWorkload,
    NetworkWorkload,
    PageDirtierWorkload,
)


class TestIdle:
    def test_tiny_housekeeping(self):
        assert 0 < IdleWorkload().cpu_fraction() < 0.01

    def test_no_memory_or_network(self):
        idle = IdleWorkload()
        assert idle.dirty_page_rate() == 0.0
        assert idle.nic_tx_bps() == 0.0

    def test_rejects_large_housekeeping(self):
        with pytest.raises(ConfigurationError):
            IdleWorkload(housekeeping_fraction=0.5)


class TestMatrixMult:
    def test_saturates_vcpus(self):
        # Section V-A1: loads all virtual CPUs with small overheads.
        assert MatrixMultWorkload().cpu_fraction() > 0.9

    def test_small_working_set(self):
        # Three 2048^2 float64 buffers = 96 MiB of a 4 GB guest.
        wl = MatrixMultWorkload(matrix_order=2048, vm_ram_mb=4096)
        assert wl.working_set_bytes == 3 * 8 * 2048 * 2048
        assert wl.working_set_fraction() < 0.03

    def test_modest_dirty_rate(self):
        # The CPU workload dirties orders of magnitude slower than
        # pagedirtier — the property that separates CPULOAD from MEMLOAD.
        assert MatrixMultWorkload().dirty_page_rate() < 0.1 * PageDirtierWorkload(50.0).dirty_page_rate()

    def test_intensity_scales_cpu(self):
        half = MatrixMultWorkload(intensity=0.5)
        full = MatrixMultWorkload(intensity=1.0)
        assert half.cpu_fraction() == pytest.approx(full.cpu_fraction() / 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MatrixMultWorkload(matrix_order=0)
        with pytest.raises(ConfigurationError):
            MatrixMultWorkload(intensity=1.5)


class TestPageDirtier:
    def test_paper_defaults(self):
        wl = PageDirtierWorkload(95.0)
        # 3.8 GB allocation inside the 4 GB guest (Section V-A2).
        assert wl.allocation_pages == pytest.approx(3891 * 256, rel=0.01)

    def test_single_vcpu_pinned(self):
        assert PageDirtierWorkload(50.0).cpu_fraction() > 0.9

    def test_working_set_capped_by_allocation(self):
        wl = PageDirtierWorkload(100.0, vm_ram_mb=4096, allocation_mb=3891)
        assert wl.working_set_fraction() == pytest.approx(3891 / 4096, rel=0.01)

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_working_set_tracks_percentage(self, pct):
        wl = PageDirtierWorkload(pct)
        assert wl.working_set_fraction() <= pct / 100.0 + 1e-9

    def test_memory_activity_grows_with_working_set(self):
        small = PageDirtierWorkload(5.0).memory_activity_fraction()
        large = PageDirtierWorkload(95.0).memory_activity_fraction()
        assert large > small

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PageDirtierWorkload(101.0)
        with pytest.raises(ConfigurationError):
            PageDirtierWorkload(50.0, vm_ram_mb=1024, allocation_mb=2048)


class TestNetworkWorkload:
    def test_cpu_scales_with_traffic(self):
        light = NetworkWorkload(tx_bps=1e6)
        heavy = NetworkWorkload(tx_bps=1e8, rx_bps=1e8)
        assert heavy.cpu_fraction() > light.cpu_fraction()

    def test_traffic_passthrough(self):
        wl = NetworkWorkload(tx_bps=3e7, rx_bps=1e7)
        assert wl.nic_tx_bps() == 3e7
        assert wl.nic_rx_bps() == 1e7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkWorkload(tx_bps=-1.0)


class TestMixed:
    def test_cpu_adds_and_clamps(self):
        mixed = MixedWorkload([(1.0, MatrixMultWorkload()), (1.0, MatrixMultWorkload())])
        assert mixed.cpu_fraction() == 1.0

    def test_weighted_combination(self):
        mixed = MixedWorkload([(0.5, MatrixMultWorkload())])
        assert mixed.cpu_fraction() == pytest.approx(
            0.5 * MatrixMultWorkload().cpu_fraction()
        )

    def test_working_set_is_max(self):
        mem = PageDirtierWorkload(50.0)
        cpu = MatrixMultWorkload()
        mixed = MixedWorkload([(1.0, mem), (1.0, cpu)])
        assert mixed.working_set_fraction() == mem.working_set_fraction()

    def test_traffic_adds(self):
        mixed = MixedWorkload(
            [(1.0, NetworkWorkload(tx_bps=1e7)), (1.0, NetworkWorkload(tx_bps=2e7))]
        )
        assert mixed.nic_tx_bps() == pytest.approx(3e7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MixedWorkload([])
        with pytest.raises(ConfigurationError):
            MixedWorkload([(0.0, IdleWorkload())])
        with pytest.raises(ConfigurationError):
            MixedWorkload([(1.0, "not a workload")])

    def test_describe_keys(self):
        description = MixedWorkload([(1.0, IdleWorkload())]).describe()
        assert set(description) == {
            "cpu_fraction", "dirty_page_rate", "working_set_fraction",
            "memory_activity_fraction", "nic_tx_bps", "nic_rx_bps",
        }
