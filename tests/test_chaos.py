"""The deterministic chaos harness and the chaos soak suite.

Unit tests pin the spec grammar, the seeded trip decisions and the
byte-corruption seam; the soak tests run real 2-worker campaigns on both
distributed backends with faults injected at several seams and assert
the standing guarantee: campaign samples stay **byte-identical** to a
fault-free run.
"""

import pathlib
import threading

import pytest

from repro.errors import ExperimentError
from repro.experiments.chaos import (
    CHAOS_ENV_VAR,
    ChaosError,
    ChaosRule,
    ChaosSchedule,
    _corrupt_bytes,
    activate,
    active_schedule,
    chaos_bytes,
    chaos_trip,
    deactivate,
)
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import CampaignExecutor
from repro.experiments.http_backend import run_http_worker
from repro.experiments.queue_backend import run_worker
from repro.experiments.runner import ScenarioRunner
from repro.io import save_samples_json

SEED = 20150901
_SCENARIOS = [
    MigrationScenario("CPULOAD-SOURCE", "chaos/lv/1vm", live=True, load_vm_count=1),
    MigrationScenario("CPULOAD-SOURCE", "chaos/lv/2vm", live=True, load_vm_count=2),
]


@pytest.fixture(autouse=True)
def _chaos_off():
    """No schedule leaks into or out of any test in this module."""
    deactivate()
    yield
    deactivate()


def _samples_bytes(result, path: pathlib.Path) -> bytes:
    save_samples_json(result.samples(), path)
    return path.read_bytes()


class TestSpecGrammar:
    def test_parse_full_clause(self):
        schedule = ChaosSchedule.from_spec(
            "seed=7; execute:crash:rate=0.5:max=2; result-upload:corrupt:max=1;"
            " claim:delay:delay=0.01:tag=w0"
        )
        assert schedule.seed == 7
        assert schedule.rules == (
            ChaosRule("execute", "crash", rate=0.5, max_trips=2),
            ChaosRule("result-upload", "corrupt", max_trips=1),
            ChaosRule("claim", "delay", delay_s=0.01, tag="w0"),
        )

    def test_describe_round_trips(self):
        spec = "seed=7;execute:crash:rate=0.5:max=2;result-upload:corrupt:max=1"
        schedule = ChaosSchedule.from_spec(spec)
        again = ChaosSchedule.from_spec(schedule.describe())
        assert again.seed == schedule.seed
        assert again.rules == schedule.rules

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "   ;  ",
            "seed=3",                      # no fault clauses
            "seed=x;execute:crash",        # bad seed
            "execute",                     # missing action
            "teleport:crash",              # unknown seam
            "execute:vanish",              # unknown action
            "claim:corrupt",               # corrupt off a byte seam
            "execute:crash:rate=2.0",      # rate out of range
            "execute:crash:max=-1",
            "execute:crash:bogus=1",       # unknown option
            "execute:crash:rate=abc",
            "execute:crash:rate",          # option without '='
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ExperimentError):
            ChaosSchedule.from_spec(spec)


class TestTripDecisions:
    def test_same_seed_same_sequence(self):
        outcomes = []
        for _ in range(2):
            schedule = ChaosSchedule.from_spec("seed=11;execute:crash:rate=0.5")
            trace = []
            for i in range(200):
                try:
                    schedule.trip("execute", tag=f"run#{i}")
                    trace.append(False)
                except ChaosError:
                    trace.append(True)
            outcomes.append(trace)
        assert outcomes[0] == outcomes[1]
        hits = sum(outcomes[0])
        assert 60 < hits < 140  # rate=0.5 actually thins the sequence

    def test_different_seeds_diverge(self):
        def trace(seed):
            schedule = ChaosSchedule.from_spec(f"seed={seed};execute:crash:rate=0.5")
            out = []
            for _ in range(64):
                try:
                    schedule.trip("execute")
                    out.append(False)
                except ChaosError:
                    out.append(True)
            return out

        assert trace(1) != trace(2)

    def test_max_caps_total_trips(self):
        schedule = ChaosSchedule.from_spec("seed=1;execute:crash:max=2")
        crashes = 0
        for _ in range(50):
            try:
                schedule.trip("execute")
            except ChaosError:
                crashes += 1
        assert crashes == 2
        assert schedule.trips() == 2

    def test_tag_filter_restricts_rule(self):
        schedule = ChaosSchedule.from_spec("seed=1;heartbeat:crash:tag=w7")
        schedule.trip("heartbeat", tag="w1-claim")  # no match, no trip
        schedule.trip("heartbeat", tag=None)
        with pytest.raises(ChaosError):
            schedule.trip("heartbeat", tag="w7-claim")

    def test_other_seams_untouched(self):
        schedule = ChaosSchedule.from_spec("seed=1;execute:crash")
        schedule.trip("claim")
        schedule.trip("publish")
        assert schedule.trips() == 0

    def test_delay_action_sleeps_and_returns(self):
        schedule = ChaosSchedule.from_spec("seed=1;claim:delay:delay=0")
        schedule.trip("claim")  # no exception
        assert schedule.trips() == 1

    def test_at_least_one_rule_required(self):
        with pytest.raises(ExperimentError):
            ChaosSchedule([])


class TestByteSeam:
    def test_corrupt_mangles_head_only_and_is_involutive(self):
        data = bytes(range(200))
        bad = _corrupt_bytes(data)
        assert bad != data
        assert bad[64:] == data[64:]
        assert bad[:64] == bytes(b ^ 0xFF for b in data[:64])
        assert _corrupt_bytes(bad) == data

    def test_mangle_corrupts_then_runs_dry(self):
        schedule = ChaosSchedule.from_spec("seed=1;result-upload:corrupt:max=1")
        payload = b"x" * 100
        first = schedule.mangle("result-upload", payload)
        assert first != payload
        assert schedule.mangle("result-upload", payload) == payload  # max spent

    def test_mangle_crash_rule_raises(self):
        schedule = ChaosSchedule.from_spec("seed=1;cache-put:crash:max=1")
        with pytest.raises(ChaosError, match="cache-put"):
            schedule.mangle("cache-put", b"payload")


class TestProcessGlobalState:
    def test_trip_and_bytes_are_noops_when_off(self):
        chaos_trip("execute")
        assert chaos_bytes("cache-put", b"data") == b"data"
        assert active_schedule() is None

    def test_activate_overrides_and_deactivate_clears(self):
        schedule = ChaosSchedule.from_spec("seed=1;execute:crash:max=1")
        activate(schedule)
        assert active_schedule() is schedule
        with pytest.raises(ChaosError):
            chaos_trip("execute")
        deactivate()
        chaos_trip("execute")  # no-op again

    def test_env_var_parsed_lazily(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "seed=5;publish:crash:max=1")
        deactivate()  # forget the cached "no env" verdict
        schedule = active_schedule()
        assert schedule is not None
        assert schedule.seed == 5
        with pytest.raises(ChaosError):
            chaos_trip("publish")

    def test_bad_env_spec_raises_loudly(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "teleport:crash")
        deactivate()
        with pytest.raises(ExperimentError):
            active_schedule()


class TestChaosSoak:
    """2-worker campaigns under seeded faults at >= 3 seams, byte-identical
    to the fault-free reference (ISSUE 9 acceptance)."""

    def _reference_bytes(self, tmp_path) -> bytes:
        # Computed with chaos OFF (the autouse fixture guarantees it at
        # entry); the serial runner never touches the executor seams.
        serial = ScenarioRunner(seed=SEED).run_campaign(
            _SCENARIOS, min_runs=2, max_runs=2
        )
        return _samples_bytes(serial, tmp_path / "reference.json")

    def test_queue_soak_byte_identical(self, tmp_path):
        reference = self._reference_bytes(tmp_path)

        # Crash faults at four seams.  Worker threads share this process's
        # schedule; every rule is max-capped so the soak terminates.
        schedule = ChaosSchedule.from_spec(
            "seed=7;"
            "claim:crash:rate=0.5:max=2;"
            "execute:crash:max=2;"
            "heartbeat:crash:max=1;"
            "publish:crash:max=2;"
            "cache-put:crash:max=1"
        )
        activate(schedule)
        executor = CampaignExecutor(
            ScenarioRunner(seed=SEED), backend="queue",
            cache_dir=tmp_path / "cache", spool_dir=tmp_path / "spool",
            queue_options={"poll_interval": 0.02, "stop_workers_on_shutdown": True},
            max_retries=5,
        )
        workers = [
            threading.Thread(
                target=run_worker,
                args=(tmp_path / "spool", tmp_path / "cache"),
                kwargs=dict(poll_interval=0.02, heartbeat_s=0.1,
                            idle_exit_s=60.0, worker_id=f"w{i}"),
                daemon=True,
            )
            for i in range(2)
        ]
        for thread in workers:
            thread.start()
        try:
            result = executor.run_campaign(_SCENARIOS, min_runs=2, max_runs=2)
        finally:
            executor._backend.shutdown()
            for thread in workers:
                thread.join(timeout=30)

        assert schedule.trips() >= 3  # faults genuinely fired
        assert not executor.stats.degraded  # retries absorbed every fault
        assert _samples_bytes(result, tmp_path / "chaos.json") == reference

    def test_http_soak_byte_identical(self, tmp_path):
        reference = self._reference_bytes(tmp_path)

        # Crash faults at four seams plus one corrupted result upload,
        # which the coordinator must reject and the retry must replace.
        schedule = ChaosSchedule.from_spec(
            "seed=9;"
            "claim:crash:rate=0.5:max=2;"
            "execute:crash:max=2;"
            "heartbeat:crash:max=1;"
            "publish:crash:max=2;"
            "result-upload:corrupt:max=1"
        )
        activate(schedule)
        executor = CampaignExecutor(
            ScenarioRunner(seed=SEED), backend="http",
            cache_dir=tmp_path / "cache", serve="127.0.0.1:0",
            http_options={"stop_workers_on_shutdown": True, "stop_grace_s": 5.0},
            max_retries=5,
        )
        workers = [
            threading.Thread(
                target=run_http_worker,
                args=(executor.serve_url,),
                kwargs=dict(poll_interval=0.02, heartbeat_s=0.1,
                            offline_grace_s=10.0, idle_exit_s=60.0,
                            worker_id=f"w{i}"),
                daemon=True,
            )
            for i in range(2)
        ]
        for thread in workers:
            thread.start()
        try:
            result = executor.run_campaign(_SCENARIOS, min_runs=2, max_runs=2)
        finally:
            for thread in workers:
                thread.join(timeout=30)

        assert schedule.trips() >= 3
        assert not executor.stats.degraded
        assert _samples_bytes(result, tmp_path / "chaos.json") == reference
