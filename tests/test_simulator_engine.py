"""Discrete-event engine: ordering, cancellation, budgets, clocks."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.simulator import Simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_rejects_nonfinite_start(self):
        with pytest.raises(SchedulingError):
            Simulator(start_time=float("nan"))

    def test_rejects_past_event(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SchedulingError):
            sim.schedule_at(5.0, lambda: None)

    def test_rejects_nonfinite_event(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(float("inf"), lambda: None)

    def test_relative_schedule(self):
        sim = Simulator(start_time=3.0)
        event = sim.schedule(2.0, lambda: None)
        assert event.time == 5.0


class TestExecutionOrder:
    def test_time_order(self):
        sim, out = Simulator(), []
        sim.schedule(3.0, out.append, "c")
        sim.schedule(1.0, out.append, "a")
        sim.schedule(2.0, out.append, "b")
        sim.run()
        assert out == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        sim, out = Simulator(), []
        for tag in "abc":
            sim.schedule(1.0, out.append, tag)
        sim.run()
        assert out == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        sim, seen = Simulator(), []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.schedule(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5, 4.0]

    def test_callback_can_schedule_more(self):
        sim, out = Simulator(), []

        def chain(n):
            out.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert out == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestRunUntil:
    def test_run_until_leaves_future_events(self):
        sim, out = Simulator(), []
        sim.schedule(1.0, out.append, "early")
        sim.schedule(10.0, out.append, "late")
        sim.run(until=5.0)
        assert out == ["early"]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_then_continue(self):
        sim, out = Simulator(), []
        sim.schedule(10.0, out.append, "late")
        sim.run(until=5.0)
        sim.run()
        assert out == ["late"]

    def test_run_for(self):
        sim = Simulator(start_time=2.0)
        sim.run_for(3.0)
        assert sim.now == 5.0

    def test_run_for_negative_rejected(self):
        with pytest.raises(SchedulingError):
            Simulator().run_for(-1.0)

    def test_run_to_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SchedulingError):
            sim.run(until=5.0)

    def test_empty_run_advances_to_until(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim, out = Simulator(), []
        event = sim.schedule(1.0, out.append, "x")
        assert sim.cancel(event)
        sim.run()
        assert out == []

    def test_double_cancel_returns_false(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert event.cancel()
        assert not event.cancel()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0


class TestGuards:
    def test_event_budget(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_on_empty_heap(self):
        assert Simulator().step() is False

    def test_processed_events_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.processed_events == 5
