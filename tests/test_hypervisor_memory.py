"""Guest memory: dirty logging and random-write occupancy statistics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hypervisor import VmMemory, expected_distinct_pages


class TestExpectedDistinctPages:
    def test_zero_writes(self):
        assert expected_distinct_pages(0, 1000) == 0.0

    def test_zero_working_set(self):
        assert expected_distinct_pages(100, 0) == 0.0

    def test_single_page(self):
        assert expected_distinct_pages(50, 1) == 1.0

    def test_few_writes_nearly_all_distinct(self):
        # With writes << W the collision probability is negligible.
        assert expected_distinct_pages(10, 10**6) == pytest.approx(10.0, rel=1e-3)

    def test_many_writes_saturate(self):
        w = 1000
        assert expected_distinct_pages(100 * w, w) == pytest.approx(w, rel=1e-3)

    @given(
        st.floats(min_value=0, max_value=1e7),
        st.integers(min_value=1, max_value=10**7),
    )
    def test_bounds(self, writes, working):
        distinct = expected_distinct_pages(writes, working)
        assert 0.0 <= distinct <= min(writes, working) + 1e-6

    @given(st.integers(min_value=2, max_value=10**5))
    def test_monotone_in_writes(self, working):
        low = expected_distinct_pages(working / 2, working)
        high = expected_distinct_pages(working * 2, working)
        assert high >= low


class TestVmMemory:
    def test_page_count_of_4gb(self):
        assert VmMemory(4096).n_pages == 1048576

    def test_image_bytes(self):
        assert VmMemory(4096).image_bytes == 4 * 1024**3

    def test_rejects_zero_ram(self):
        with pytest.raises(ConfigurationError):
            VmMemory(0)

    def test_logging_lifecycle(self):
        mem = VmMemory(64)
        assert not mem.logging
        mem.enable_logging()
        assert mem.logging and mem.dirty_count() == 0
        mem.disable_logging()
        assert not mem.logging

    def test_advance_without_log_records_nothing(self):
        mem = VmMemory(64)
        mem.set_dirty_process(10000, 0.5)
        assert mem.advance(1.0, np.random.default_rng(0)) == 0

    def test_advance_marks_expected_fraction(self):
        mem = VmMemory(64)  # 16384 pages
        mem.set_dirty_process(write_rate_pages_s=5000, working_set_fraction=0.5)
        mem.enable_logging()
        rng = np.random.default_rng(1)
        new = mem.advance(1.0, rng)
        working = mem.working_pages
        expected = expected_distinct_pages(5000, working)
        assert new == pytest.approx(expected, rel=0.1)
        assert mem.dirty_count() == new

    def test_dirty_never_exceeds_working_set(self):
        mem = VmMemory(16)
        mem.set_dirty_process(10**6, 0.25)
        mem.enable_logging()
        rng = np.random.default_rng(2)
        for _ in range(10):
            mem.advance(5.0, rng)
        assert mem.dirty_count() <= mem.working_pages

    def test_clear_dirty_returns_count(self):
        mem = VmMemory(16)
        mem.set_dirty_process(10**6, 0.5)
        mem.enable_logging()
        mem.advance(10.0, np.random.default_rng(3))
        count = mem.dirty_count()
        assert mem.clear_dirty() == count
        assert mem.dirty_count() == 0

    def test_stop_dirty_process(self):
        mem = VmMemory(16)
        mem.set_dirty_process(1000, 0.5)
        mem.stop_dirty_process()
        mem.enable_logging()
        assert mem.advance(10.0, np.random.default_rng(0)) == 0

    def test_rejects_negative_dt(self):
        mem = VmMemory(16)
        with pytest.raises(ConfigurationError):
            mem.advance(-1.0, np.random.default_rng(0))

    def test_rejects_bad_working_fraction(self):
        with pytest.raises(ConfigurationError):
            VmMemory(16).set_dirty_process(100, 1.5)


class TestDirtyingRatio:
    def test_idle_ratio_zero(self):
        mem = VmMemory(4096)
        assert mem.dirtying_ratio_percent() == 0.0

    def test_fast_writer_saturates_at_working_fraction(self):
        # pagedirtier semantics: DR == the touched percentage of memory.
        mem = VmMemory(4096)
        mem.set_dirty_process(write_rate_pages_s=10**7, working_set_fraction=0.75)
        assert mem.dirtying_ratio_percent() == pytest.approx(75.0, rel=0.01)

    def test_slow_writer_below_working_fraction(self):
        mem = VmMemory(4096)
        mem.set_dirty_process(write_rate_pages_s=1000, working_set_fraction=0.75)
        assert mem.dirtying_ratio_percent() < 10.0

    def test_memload_sweep_maps_onto_dr(self):
        # The experiment-design premise: DR tracks the 5-95 % sweep.
        previous = -1.0
        for pct in (5, 15, 35, 55, 75, 95):
            mem = VmMemory(4096)
            mem.set_dirty_process(42_000, pct / 100.0)
            dr = mem.dirtying_ratio_percent()
            assert dr > previous  # strictly increasing over the sweep
            assert dr <= pct + 0.01  # one-page rounding headroom
            if pct <= 35:
                assert dr == pytest.approx(pct, rel=0.1)
            previous = dr

    @settings(max_examples=25)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_ratio_bounded_by_working_fraction(self, fraction):
        mem = VmMemory(1024)
        mem.set_dirty_process(42_000, fraction)
        one_page_pct = 100.0 / mem.n_pages
        assert mem.dirtying_ratio_percent() <= fraction * 100.0 + one_page_pct

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            VmMemory(16).dirtying_ratio_percent(window_s=0.0)

    def test_stochastic_advance_matches_analytic(self):
        """Bitmap statistics agree with the occupancy formula over rounds."""
        mem = VmMemory(256)
        mem.set_dirty_process(write_rate_pages_s=20_000, working_set_fraction=0.8)
        mem.enable_logging()
        rng = np.random.default_rng(7)
        observed = mem.advance(2.0, rng)
        expected = expected_distinct_pages(40_000, mem.working_pages)
        sigma = math.sqrt(expected)  # binomial-scale spread
        assert abs(observed - expected) < 6 * sigma
