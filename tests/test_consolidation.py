"""Consolidation: estimator forecasts, policies, the manager loop."""

import pytest

from repro.consolidation import (
    ConsolidationManager,
    DataCenter,
    EnergyAwarePolicy,
    FirstFitPolicy,
    Wavm3PlanningEstimator,
)
from repro.errors import ClusterError, ConfigurationError, ModelError
from repro.hypervisor import VirtualMachine
from repro.models.coefficients import paper_wavm3_coefficients
from repro.simulator import Simulator
from repro.workloads import MatrixMultWorkload, PageDirtierWorkload


@pytest.fixture()
def estimator():
    return Wavm3PlanningEstimator(paper_wavm3_coefficients(live=True))


@pytest.fixture()
def dc():
    sim = Simulator()
    return DataCenter(sim, ["m01", "m02", "m01"], seed=3)


class TestEstimator:
    def test_plan_has_positive_energy(self, estimator):
        plan = estimator.plan(
            mem_mb=4096, vm_cpu_pct=97.0, dr_pct=5.0, dirty_pages_per_s=2000.0,
            source_cpu_pct=20.0, target_cpu_pct=5.0, bw_bps=1.1e8,
        )
        assert plan.energy_total_j > 0
        assert plan.duration_s > plan.transfer_s

    def test_high_dr_costs_more(self, estimator):
        """The paper's closing recommendation, quantified."""
        low = estimator.plan(4096, 97.0, 5.0, 2_000.0, 20.0, 5.0, 1.1e8)
        high = estimator.plan(4096, 97.0, 90.0, 42_000.0, 20.0, 5.0, 1.1e8)
        assert high.energy_total_j > 1.5 * low.energy_total_j
        assert high.data_bytes > low.data_bytes

    def test_loaded_target_costs_more(self, estimator):
        idle = estimator.plan(4096, 97.0, 50.0, 20_000.0, 20.0, 5.0, 1.1e8)
        loaded = estimator.plan(4096, 97.0, 50.0, 20_000.0, 20.0, 95.0, 1.1e8)
        assert loaded.energy_total_j > idle.energy_total_j

    def test_nonlive_single_round(self, estimator):
        plan = estimator.plan(4096, 97.0, 50.0, 20_000.0, 20.0, 5.0, 1.1e8, live=False)
        assert plan.rounds == 1
        assert plan.data_bytes == pytest.approx(4096 * 1024 * 1024)

    def test_live_respects_transfer_cap(self, estimator):
        plan = estimator.plan(4096, 97.0, 95.0, 42_000.0, 20.0, 5.0, 1.1e8)
        assert plan.data_bytes <= 4.0 * 4096 * 1024 * 1024

    def test_validation(self, estimator):
        with pytest.raises(ModelError):
            estimator.plan(0, 97.0, 5.0, 0.0, 0.0, 0.0, 1.1e8)


class TestDataCenter:
    def test_duplicate_machines_renamed(self, dc):
        assert dc.host_names() == ("m01", "m02", "m01-2")

    def test_homogeneity_enforced(self):
        with pytest.raises(ClusterError):
            DataCenter(Simulator(), ["m01", "o1"])

    def test_needs_two_hosts(self):
        with pytest.raises(ClusterError):
            DataCenter(Simulator(), ["m01"])

    def test_place_and_locate(self, dc):
        vm = VirtualMachine("web", 4, 1024, MatrixMultWorkload(vm_ram_mb=1024))
        dc.place("m02", vm)
        assert dc.locate("web") == "m02"
        assert dc.locate("ghost") is None
        assert "web" in dc.placement()["m02"]

    def test_path_between_hosts(self, dc):
        path = dc.path("m01", "m02")
        assert path.nominal_goodput_bps > 1e8
        with pytest.raises(ClusterError):
            dc.path("m01", "m01")

    def test_total_power(self, dc):
        assert dc.total_power_w() > 3 * 400.0  # three idle Opteron boxes

    def test_idle_hosts(self, dc):
        assert set(dc.idle_hosts()) == {"m01", "m02", "m01-2"}
        dc.place("m01", VirtualMachine("x", 1, 512, MatrixMultWorkload(vm_ram_mb=512)))
        assert "m01" not in dc.idle_hosts()


class TestPolicies:
    def test_first_fit_picks_first_with_room(self, dc):
        vm = dc.place("m01", VirtualMachine("x", 4, 1024, MatrixMultWorkload(vm_ram_mb=1024)))
        move = FirstFitPolicy().propose(dc, vm, "m01")
        assert move is not None and move.target == "m02"

    def test_energy_aware_avoids_loaded_target(self, dc, estimator):
        # Load m02 heavily; the cheaper move goes to the idle m01-2.
        for i in range(7):
            dc.place("m02", VirtualMachine(f"l{i}", 4, 512, MatrixMultWorkload(vm_ram_mb=512)))
        vm = dc.place(
            "m01",
            VirtualMachine("dirty", 1, 4096, PageDirtierWorkload(95.0)),
        )
        policy = EnergyAwarePolicy(estimator)
        move = policy.propose(dc, vm, "m01")
        assert move is not None
        assert move.target == "m01-2"
        assert move.plan is not None and move.plan.energy_total_j == move.score

    def test_energy_budget_filters(self, dc, estimator):
        vm = dc.place("m01", VirtualMachine("dirty", 1, 4096, PageDirtierWorkload(95.0)))
        policy = EnergyAwarePolicy(estimator, energy_budget_j=1.0)
        assert policy.propose(dc, vm, "m01") is None

    def test_budget_validation(self, estimator):
        with pytest.raises(ConfigurationError):
            EnergyAwarePolicy(estimator, energy_budget_j=0.0)


class TestManager:
    def test_drains_underloaded_host(self, dc, estimator):
        # One light VM on m01: under the threshold, a drain candidate.
        dc.place("m01", VirtualMachine("light", 1, 1024, MatrixMultWorkload(vm_ram_mb=1024)))
        manager = ConsolidationManager(
            dc, EnergyAwarePolicy(estimator), underload_threshold=0.5, period_s=5.0
        )
        manager.start()
        dc.sim.run_for(400.0)
        assert manager.migrations_issued >= 1
        decision = manager.decisions[0]
        assert decision.move.vm_name == "light"
        assert dc.locate("light") != "m01"

    def test_no_action_on_busy_hosts(self, dc, estimator):
        for name in ("m01", "m02", "m01-2"):
            for i in range(5):
                dc.place(name, VirtualMachine(
                    f"{name}-{i}", 4, 512, MatrixMultWorkload(vm_ram_mb=512)
                ))
        manager = ConsolidationManager(
            dc, EnergyAwarePolicy(estimator), underload_threshold=0.3, period_s=5.0
        )
        manager.start()
        dc.sim.run_for(60.0)
        assert manager.migrations_issued == 0

    def test_one_migration_at_a_time(self, dc, estimator):
        dc.place("m01", VirtualMachine("a", 1, 1024, MatrixMultWorkload(vm_ram_mb=1024)))
        dc.place("m02", VirtualMachine("b", 1, 1024, MatrixMultWorkload(vm_ram_mb=1024)))
        manager = ConsolidationManager(
            dc, FirstFitPolicy(), underload_threshold=0.5, period_s=2.0
        )
        manager.start()
        dc.sim.run_for(20.0)  # migration takes ~45 s; ticks keep arriving
        assert manager.migrations_issued == 1

    def test_threshold_validation(self, dc):
        with pytest.raises(ConfigurationError):
            ConsolidationManager(dc, FirstFitPolicy(), underload_threshold=0.0)
