"""Unit-conversion helpers: exactness and round-trips."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConstants:
    def test_page_size_is_4kib(self):
        assert units.PAGE_SIZE_BYTES == 4096

    def test_binary_prefixes(self):
        assert units.MIB == 1024**2
        assert units.GIB == 1024**3

    def test_decimal_prefixes(self):
        assert units.MB == 10**6
        assert units.GB == 10**9

    def test_gigabit_in_bytes(self):
        assert units.GBIT_PER_S_BYTES == pytest.approx(1.25e8)


class TestMemoryConversions:
    def test_4gb_vm_page_count(self):
        # The paper's 4 GB migrating VM = 1 Mi pages.
        assert units.mib_to_pages(4096) == 1048576

    def test_pages_to_bytes(self):
        assert units.pages_to_bytes(1) == 4096

    def test_bytes_to_pages_fractional(self):
        assert units.bytes_to_pages(6144) == pytest.approx(1.5)

    def test_mib_bytes_round_trip(self):
        assert units.bytes_to_mib(units.mib_to_bytes(37.5)) == pytest.approx(37.5)

    def test_gib_bytes_round_trip(self):
        assert units.bytes_to_gib(units.gib_to_bytes(2.25)) == pytest.approx(2.25)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_pages_mib_round_trip(self, mib):
        assert units.pages_to_mib(units.mib_to_pages(mib)) == pytest.approx(
            mib, abs=units.PAGE_SIZE_BYTES / units.MIB
        )


class TestRateConversions:
    def test_gigabit_link(self):
        assert units.gbit_to_bytes_per_s(1.0) == pytest.approx(1.25e8)

    def test_bytes_per_s_to_mbit(self):
        assert units.bytes_per_s_to_mbit(1.25e8) == pytest.approx(1000.0)

    @given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
    def test_rate_round_trip(self, bps):
        mbit = units.bytes_per_s_to_mbit(bps)
        assert units.gbit_to_bytes_per_s(mbit / 1000.0) == pytest.approx(bps, rel=1e-12)


class TestPercentAndEnergy:
    def test_fraction_to_percent(self):
        assert units.fraction_to_percent(0.42) == pytest.approx(42.0)

    def test_percent_to_fraction(self):
        assert units.percent_to_fraction(95.0) == pytest.approx(0.95)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_percent_round_trip(self, value):
        assert units.percent_to_fraction(
            units.fraction_to_percent(value)
        ) == pytest.approx(value, abs=1e-9)

    def test_joules_kj(self):
        assert units.joules_to_kj(2558.0) == pytest.approx(2.558)
        assert units.kj_to_joules(1.8) == pytest.approx(1800.0)

    def test_constant_power_energy(self):
        # 500 W for 2 minutes = 60 kJ.
        assert units.watts_seconds_to_joules(500.0, 120.0) == pytest.approx(60000.0)

    @given(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
    )
    def test_energy_bilinear(self, watts, seconds):
        doubled = units.watts_seconds_to_joules(2 * watts, seconds)
        assert math.isclose(
            doubled, 2 * units.watts_seconds_to_joules(watts, seconds), abs_tol=1e-6
        )
