"""The ``wavm3 bench`` perf harness: schema, metrics, regression gate."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    bench_campaign,
    bench_compute,
    bench_simulator,
    bench_telemetry,
    check_regression,
    current_revision,
    run_benchmarks,
    write_bench_json,
)
from repro.cli import build_parser, main
from repro.errors import ReproError


@pytest.fixture(scope="module")
def quick_payload():
    """One tiny full-suite run shared by the module's tests."""
    return run_benchmarks(quick=True, repeats=1)


class TestBenchmarks:
    def test_payload_schema_and_metrics(self, quick_payload):
        assert quick_payload["schema"] == BENCH_SCHEMA
        assert quick_payload["revision"]
        results = quick_payload["results"]
        campaign = results["campaign"]
        for mode in ("batched", "events"):
            assert campaign[mode]["wall_s"] > 0
            assert campaign[mode]["runs_per_s"] > 0
            assert campaign[mode]["samples_per_s"] > 0
        assert campaign["speedup"] > 1.0  # the fast path must actually be fast
        consolidation = results["consolidation"]
        for mode in ("batched", "events"):
            assert consolidation[mode]["wall_s"] > 0
            assert consolidation[mode]["runs_per_s"] > 0
        assert consolidation["speedup"] > 1.0  # batched control plane pays off
        assert consolidation["scenario"].startswith("bench/consolidation")
        assert results["simulator"]["events_per_s"] > 0
        assert results["telemetry"]["speedup"] > 1.0
        compute = results["compute"]
        assert compute["modes"][:2] == ["python", "numpy"]
        for mode in compute["modes"]:
            assert compute[mode]["wall_s"] > 0
            assert compute[mode]["samples_per_s"] > 0
        assert compute["speedup"] > 0  # ratio exists; the floor is guarded

    def test_campaign_modes_measure_identical_workloads(self):
        campaign = bench_campaign(runs=2, repeats=1)
        # same scenario, same runs: the sample counts divide out of the
        # throughput comparison
        assert campaign["runs"] == 2
        assert campaign["batched"]["samples_per_s"] > campaign["events"]["samples_per_s"]

    def test_simulator_bench_counts_events(self):
        result = bench_simulator(n_events=2000, repeats=1)
        assert result["events"] == 2000
        assert result["events_per_s"] > 0

    def test_telemetry_bench_modes(self):
        result = bench_telemetry(sim_seconds=50.0, repeats=1)
        assert result["batched"]["samples_per_s"] > result["events"]["samples_per_s"]

    def test_compute_bench_modes(self):
        result = bench_compute(sim_seconds=200.0, repeats=1)
        # Identical windows per mode: equal sample counts, so walls compare.
        assert (
            result["python"]["wall_s"] * result["python"]["samples_per_s"]
            == pytest.approx(
                result["numpy"]["wall_s"] * result["numpy"]["samples_per_s"]
            )
        )
        assert result["speedup"] == pytest.approx(
            result["python"]["wall_s"] / result["numpy"]["wall_s"]
        )

    def test_write_bench_json(self, quick_payload, tmp_path):
        path = write_bench_json(quick_payload, tmp_path)
        assert path.name == f"BENCH_{quick_payload['revision']}.json"
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["schema"] == BENCH_SCHEMA
        assert loaded["results"]["campaign"]["speedup"] > 0

    def test_current_revision_is_stringy(self):
        assert isinstance(current_revision(), str) and current_revision()


class TestRegressionGate:
    def test_passes_within_tolerance(self, quick_payload):
        baseline = {"guarded": {"campaign.speedup": quick_payload["results"]["campaign"]["speedup"]}}
        assert check_regression(quick_payload, baseline, tolerance=0.25) == []

    def test_fails_below_floor(self, quick_payload):
        baseline = {"guarded": {"campaign.speedup": 10_000.0}}
        failures = check_regression(quick_payload, baseline, tolerance=0.25)
        assert failures and "campaign.speedup" in failures[0]

    def test_missing_metric_reported(self, quick_payload):
        failures = check_regression(
            quick_payload, {"guarded": {"no.such.metric": 1.0}}, tolerance=0.1
        )
        assert failures == ["no.such.metric: missing from bench results"]

    def test_empty_baseline_rejected(self, quick_payload):
        with pytest.raises(ReproError):
            check_regression(quick_payload, {}, tolerance=0.1)
        with pytest.raises(ReproError):
            check_regression(quick_payload, {"guarded": {"a": 1}}, tolerance=1.5)

    def test_committed_baseline_guards_the_acceptance_floor(self):
        import pathlib

        baseline = json.loads(
            (pathlib.Path(__file__).resolve().parents[1] / "benchmarks" /
             "bench_baseline.json").read_text(encoding="utf-8")
        )
        assert baseline["guarded"]["campaign.speedup"] >= 5.0
        assert baseline["guarded"]["consolidation.speedup"] >= 4.0
        assert baseline["guarded"]["compute.speedup"] >= 2.0
        assert baseline["guarded"]["seedbank.speedup"] >= 3.0


class TestBenchCli:
    def test_parser_accepts_bench(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--repeats", "2", "--output-dir", "/tmp/x",
             "--check", "b.json", "--tolerance", "0.3"]
        )
        assert args.command == "bench"
        assert args.quick and args.repeats == 2

    def test_parser_rejects_bad_repeats(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--repeats", "0"])

    def test_cli_end_to_end(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"guarded": {"campaign.speedup": 1.1}}))
        code = main(
            ["bench", "--quick", "--repeats", "1",
             "--output-dir", str(tmp_path), "--check", str(baseline)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup" in out and "perf-smoke ok" in out
        assert list(tmp_path.glob("BENCH_*.json"))

    def test_cli_regression_exit_code(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"guarded": {"campaign.speedup": 9999.0}}))
        code = main(
            ["bench", "--quick", "--repeats", "1",
             "--output-dir", str(tmp_path), "--check", str(baseline)]
        )
        assert code == 1
