"""Machine catalog (Table IIc) and the ground-truth power model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import (
    HostPowerModel,
    MACHINE_CATALOG,
    PowerModelParams,
    TransientPool,
    machine_pair,
    machine_spec,
    switch_spec,
)
from repro.cluster.power import Transient
from repro.errors import ConfigurationError


class TestCatalog:
    def test_four_machines(self):
        assert sorted(MACHINE_CATALOG) == ["m01", "m02", "o1", "o2"]

    def test_m_pair_threads(self):
        # Table IIc: 32 virtual cpus (16 x Opteron 8356, dual threaded).
        assert machine_spec("m01").capacity_threads == 32

    def test_o_pair_threads(self):
        # Table IIc: 40 virtual cpus (20 x Xeon E5-2690, dual threaded).
        assert machine_spec("o1").capacity_threads == 40

    def test_ram_sizes(self):
        assert machine_spec("m01").ram_mb == 32 * 1024
        assert machine_spec("o2").ram_mb == 128 * 1024

    def test_pair_compatibility(self):
        m01, m02 = machine_pair("m")
        o1, _ = machine_pair("o")
        assert m01.compatible_with(m02)
        assert not m01.compatible_with(o1)

    def test_unknown_machine(self):
        with pytest.raises(ConfigurationError):
            machine_spec("z9")

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            machine_pair("x")

    def test_switches(self):
        assert "Cisco" in switch_spec("m").model
        assert "HP" in switch_spec("o").model

    def test_idle_difference_drives_bias(self):
        # The C1->C2 correction exists because the pairs idle differently.
        m_idle = machine_spec("m01").power.idle_w
        o_idle = machine_spec("o1").power.idle_w
        assert m_idle - o_idle > 200.0

    def test_nic_goodput_below_line_rate(self):
        for spec in MACHINE_CATALOG.values():
            assert spec.nic.goodput_bps < spec.nic.rate_bps


class TestPowerModelParams:
    def test_envelope_band_matches_figures(self):
        # Figs. 3-7 show the m-pair between ~420 and ~950 W.
        params = machine_spec("m01").power
        assert 400 < params.idle_w < 500
        assert params.peak_w < 1200

    def test_cpu_power_monotone(self):
        params = machine_spec("m01").power
        values = [params.cpu_power(u / 10) for u in range(11)]
        assert values == sorted(values)
        assert values[0] == 0.0

    def test_cpu_power_convex_tail(self):
        params = machine_spec("m01").power
        # Super-linear: the last decile adds more than the first.
        assert params.cpu_power(1.0) - params.cpu_power(0.9) > params.cpu_power(0.1)

    def test_fan_steps_cumulative(self):
        params = PowerModelParams(
            idle_w=100, cpu_linear_w=50, cpu_curved_w=0,
            fan_steps=((0.3, 10.0), (0.6, 20.0)),
        )
        assert params.fan_power(0.1) == 0.0
        assert params.fan_power(0.4) == 10.0
        assert params.fan_power(0.9) == 30.0

    def test_rejects_negative_idle(self):
        with pytest.raises(ConfigurationError):
            PowerModelParams(idle_w=-5, cpu_linear_w=10, cpu_curved_w=0)

    def test_rejects_sublinear_exponent(self):
        with pytest.raises(ConfigurationError):
            PowerModelParams(idle_w=100, cpu_linear_w=10, cpu_curved_w=5, cpu_curve_exponent=0.5)

    def test_rejects_bad_fan_step(self):
        with pytest.raises(ConfigurationError):
            PowerModelParams(
                idle_w=100, cpu_linear_w=10, cpu_curved_w=0, fan_steps=((1.5, 10.0),)
            )


class TestTransients:
    def test_rect_shape(self):
        tr = Transient(t0=10.0, duration=2.0, amplitude_w=20.0, shape="rect")
        assert tr.value(9.9) == 0.0
        assert tr.value(11.0) == 20.0
        assert tr.value(12.1) == 0.0

    def test_decay_shape(self):
        tr = Transient(t0=0.0, duration=3.0, amplitude_w=30.0)
        assert tr.value(0.0) == pytest.approx(30.0)
        assert 0 < tr.value(1.0) < 30.0
        assert tr.value(3.0) < 2.0  # ~95 % gone

    def test_negative_amplitude_is_dip(self):
        tr = Transient(t0=0.0, duration=1.0, amplitude_w=-15.0, shape="rect")
        assert tr.value(0.5) == -15.0

    def test_pool_sums_and_prunes(self):
        pool = TransientPool()
        pool.add_peak(0.0, 1.0, 10.0, shape="rect")
        pool.add_peak(0.5, 1.0, 5.0, shape="rect")
        assert pool.value(0.7) == pytest.approx(15.0)
        assert pool.value(5.0) == 0.0
        assert pool.active_count == 0

    def test_rejects_zero_duration(self):
        with pytest.raises(ConfigurationError):
            Transient(t0=0.0, duration=0.0, amplitude_w=1.0)


class TestHostPowerModel:
    @pytest.fixture()
    def model(self):
        return HostPowerModel(machine_spec("m01").power)

    def test_idle_power(self, model):
        power = model.instantaneous_power(0.0, 0.0, 0.0, 0.0)
        assert power == pytest.approx(model.params.idle_w)

    def test_components_additive(self, model):
        base = model.instantaneous_power(0.0, 0.0, 0.0, 0.0)
        with_nic = model.instantaneous_power(0.0, 0.0, 0.0, 1.0)
        assert with_nic - base == pytest.approx(model.params.nic_w)

    def test_interaction_term(self, model):
        solo = (
            model.instantaneous_power(0.0, 1.0, 0.0, 0.0)
            + model.instantaneous_power(0.0, 0.0, 1.0, 0.0)
            - model.params.idle_w
        )
        joint = model.instantaneous_power(0.0, 1.0, 1.0, 0.0)
        assert joint - solo == pytest.approx(model.params.interaction_w)

    @given(
        st.floats(min_value=-0.5, max_value=1.5),
        st.floats(min_value=-0.5, max_value=1.5),
        st.floats(min_value=-0.5, max_value=1.5),
    )
    def test_power_within_envelope(self, u, mem, nic):
        model = HostPowerModel(machine_spec("m01").power)
        power = model.instantaneous_power(0.0, u, mem, nic)
        assert 0.3 * model.params.idle_w <= power <= model.params.peak_w + 1e-9

    def test_idle_difference_helper(self):
        a = HostPowerModel(machine_spec("m01").power)
        b = HostPowerModel(machine_spec("o1").power)
        assert HostPowerModel.idle_difference(a, b) == pytest.approx(
            a.params.idle_w - b.params.idle_w
        )
