"""The parallel campaign executor and its content-addressed run cache.

Covers the PR's acceptance criteria directly: serial-vs-parallel-vs-queue
bit-identity of campaign results, zero simulation runs on a warm cache,
cache invalidation when the execution protocol changes, and the shared
variance-stopping rule all paths replay.
"""

import json
import threading

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.design import MigrationScenario
from repro.experiments.executor import (
    CACHE_KEY_SCHEMA,
    CampaignExecutor,
    ProcessBackend,
    RunCache,
    SerialBackend,
)
from repro.experiments.queue_backend import run_worker
from repro.experiments.runner import RunnerSettings, ScenarioRunner, resolve_run_count
from repro.hypervisor.migration import MigrationConfig
from repro.io import (
    PersistenceError,
    load_run_result,
    save_run_result,
    save_samples_json,
)
from repro.models.features import HostRole
from repro.telemetry.stabilization import StabilizationRule

SEED = 20150901  # CLUSTER 2015


def _scenarios():
    """A small mixed 3-scenario campaign (both kinds + a DR sweep point)."""
    return [
        MigrationScenario("CPULOAD-SOURCE", "exec/lv/1vm", live=True, load_vm_count=1),
        MigrationScenario("CPULOAD-SOURCE", "exec/nl/0vm", live=False, load_vm_count=0),
        MigrationScenario("MEMLOAD-VM", "exec/lv/dr55", live=True, dirty_percent=55.0),
    ]


def _assert_campaigns_identical(a, b):
    """Energies, timelines and run counts must match to the last bit."""
    assert len(a.scenario_results) == len(b.scenario_results)
    for sa, sb in zip(a.scenario_results, b.scenario_results):
        assert sa.scenario == sb.scenario
        assert sa.n_runs == sb.n_runs
        assert np.array_equal(
            sa.total_energies_j(HostRole.SOURCE), sb.total_energies_j(HostRole.SOURCE)
        )
        assert np.array_equal(
            sa.total_energies_j(HostRole.TARGET), sb.total_energies_j(HostRole.TARGET)
        )
        for ra, rb in zip(sa.runs, sb.runs):
            assert ra.run_index == rb.run_index
            assert ra.timeline.ms == rb.timeline.ms
            assert ra.timeline.me == rb.timeline.me
            assert ra.timeline.bytes_total == rb.timeline.bytes_total
            assert np.array_equal(ra.source_trace.times, rb.source_trace.times)
            assert np.array_equal(ra.source_trace.watts, rb.source_trace.watts)
            assert np.array_equal(ra.target_trace.watts, rb.target_trace.watts)


@pytest.fixture(scope="module")
def serial_campaign():
    return ScenarioRunner(seed=SEED).run_campaign(_scenarios(), min_runs=3, max_runs=3)


class TestBitIdentity:
    def test_process_backend_matches_serial(self, serial_campaign):
        executor = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=2)
        assert executor.backend == "process"
        parallel = executor.run_campaign(_scenarios(), min_runs=3, max_runs=3)
        _assert_campaigns_identical(serial_campaign, parallel)
        assert executor.stats.runs_executed == 9
        assert executor.stats.runs_kept == 9

    def test_serial_backend_matches_serial(self, serial_campaign):
        executor = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1)
        assert executor.backend == "serial"
        result = executor.run_campaign(_scenarios(), min_runs=3, max_runs=3)
        _assert_campaigns_identical(serial_campaign, result)

    def test_adaptive_variance_loop_matches_serial(self):
        """With min < max the wave top-up must stop exactly where serial does."""
        scenarios = _scenarios()
        serial = ScenarioRunner(seed=SEED).run_campaign(scenarios, min_runs=3, max_runs=8)
        executor = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=2, wave_size=3)
        parallel = executor.run_campaign(scenarios, min_runs=3, max_runs=8)
        _assert_campaigns_identical(serial, parallel)

    def test_run_campaign_parallel_kwarg(self, serial_campaign):
        runner = ScenarioRunner(seed=SEED)
        result = runner.run_campaign(_scenarios(), min_runs=3, max_runs=3, parallel=2)
        _assert_campaigns_identical(serial_campaign, result)
        assert runner.last_executor_stats.runs_kept == 9

    def test_result_independent_of_wave_size(self):
        scenarios = _scenarios()[:1]
        results = [
            CampaignExecutor(
                ScenarioRunner(seed=SEED), jobs=1, wave_size=w
            ).run_campaign(scenarios, min_runs=2, max_runs=6)
            for w in (1, 4)
        ]
        _assert_campaigns_identical(*results)

    def test_queue_backend_matches_serial_and_process(self, serial_campaign, tmp_path):
        """Acceptance: serial, process and queue (2 workers, one shared
        cache) produce byte-identical ExperimentResult JSON."""
        scenarios = _scenarios()
        workers = [
            threading.Thread(
                target=run_worker,
                args=(tmp_path / "spool", tmp_path / "cache"),
                kwargs=dict(poll_interval=0.02, idle_exit_s=60.0, worker_id=f"w{i}"),
                daemon=True,
            )
            for i in range(2)
        ]
        for thread in workers:
            thread.start()
        executor = CampaignExecutor(
            ScenarioRunner(seed=SEED), backend="queue",
            cache_dir=tmp_path / "cache", spool_dir=tmp_path / "spool",
            queue_options={"poll_interval": 0.02, "stop_workers_on_shutdown": True},
        )
        assert executor.backend == "queue"
        queued = executor.run_campaign(scenarios, min_runs=3, max_runs=3)
        for thread in workers:
            thread.join(timeout=60)
        assert executor.stats.runs_executed == 9

        process = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=2).run_campaign(
            scenarios, min_runs=3, max_runs=3
        )
        _assert_campaigns_identical(serial_campaign, queued)
        _assert_campaigns_identical(process, queued)

        blobs = {}
        for name, result in (
            ("serial", serial_campaign), ("process", process), ("queue", queued),
        ):
            path = tmp_path / f"{name}.json"
            save_samples_json(result.samples(), path)
            blobs[name] = path.read_bytes()
        assert blobs["serial"] == blobs["process"] == blobs["queue"]


class TestBackendProtocol:
    def test_executor_accepts_backend_instances(self, serial_campaign):
        executor = CampaignExecutor(ScenarioRunner(seed=SEED), backend=SerialBackend())
        assert executor.backend == "serial"
        result = executor.run_campaign(_scenarios(), min_runs=3, max_runs=3)
        _assert_campaigns_identical(serial_campaign, result)

    def test_capacity_feeds_default_wave_size(self):
        assert CampaignExecutor(
            ScenarioRunner(seed=SEED), backend=ProcessBackend(5)
        ).wave_size == 5
        assert CampaignExecutor(ScenarioRunner(seed=SEED), jobs=3).wave_size == 3
        assert CampaignExecutor(ScenarioRunner(seed=SEED)).wave_size == 1

    def test_process_backend_reusable_after_shutdown(self):
        backend = ProcessBackend(2)
        executor = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=2, backend=backend)
        first = executor.run_campaign(_scenarios()[:1], min_runs=2, max_runs=2)
        second = executor.run_campaign(_scenarios()[:1], min_runs=2, max_runs=2)
        _assert_campaigns_identical(first, second)


class TestRunCache:
    def test_cold_then_warm(self, tmp_path, serial_campaign):
        cold = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path)
        first = cold.run_campaign(_scenarios(), min_runs=3, max_runs=3)
        assert cold.stats.runs_executed == 9
        assert cold.stats.runs_cached == 0

        warm = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path)
        second = warm.run_campaign(_scenarios(), min_runs=3, max_runs=3)
        assert warm.stats.runs_executed == 0  # acceptance: zero simulation runs
        assert warm.stats.runs_cached == 9
        _assert_campaigns_identical(first, second)
        _assert_campaigns_identical(serial_campaign, second)

    def test_warm_cache_through_process_backend(self, tmp_path, serial_campaign):
        CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path).run_campaign(
            _scenarios(), min_runs=3, max_runs=3
        )
        warm = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=2, cache_dir=tmp_path)
        result = warm.run_campaign(_scenarios(), min_runs=3, max_runs=3)
        assert warm.stats.runs_executed == 0
        _assert_campaigns_identical(serial_campaign, result)

    def test_partial_cache_tops_up(self, tmp_path):
        scenarios = _scenarios()
        CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path).run_campaign(
            scenarios, min_runs=2, max_runs=2
        )
        more = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path)
        result = more.run_campaign(scenarios, min_runs=3, max_runs=3)
        assert more.stats.runs_cached == 6   # runs 0-1 of each scenario
        assert more.stats.runs_executed == 3  # run 2 of each scenario
        serial = ScenarioRunner(seed=SEED).run_campaign(scenarios, min_runs=3, max_runs=3)
        _assert_campaigns_identical(serial, result)

    def test_settings_change_invalidates(self, tmp_path):
        scenarios = _scenarios()[:1]
        CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path).run_campaign(
            scenarios, min_runs=2, max_runs=2
        )
        changed = ScenarioRunner(
            seed=SEED, settings=RunnerSettings(check_interval_s=2.0)
        )
        again = CampaignExecutor(changed, jobs=1, cache_dir=tmp_path)
        again.run_campaign(scenarios, min_runs=2, max_runs=2)
        assert again.stats.runs_cached == 0
        assert again.stats.runs_executed == 2

    def test_seed_change_invalidates(self, tmp_path):
        scenarios = _scenarios()[:1]
        CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path).run_campaign(
            scenarios, min_runs=2, max_runs=2
        )
        again = CampaignExecutor(ScenarioRunner(seed=SEED + 1), jobs=1, cache_dir=tmp_path)
        again.run_campaign(scenarios, min_runs=2, max_runs=2)
        assert again.stats.runs_cached == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        scenarios = _scenarios()[:1]
        CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path).run_campaign(
            scenarios, min_runs=2, max_runs=2
        )
        for path in tmp_path.rglob("run-*.pkl"):
            path.write_bytes(b"not a pickle")
        again = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path)
        again.run_campaign(scenarios, min_runs=2, max_runs=2)
        assert again.stats.runs_cached == 0
        assert again.stats.runs_executed == 2

    def _corrupt_meta_files(self, tmp_path, mutate):
        metas = list(tmp_path.rglob("meta.json"))
        assert metas
        for meta in metas:
            mutate(meta)

    def test_unparseable_meta_invalidates_entry(self, tmp_path):
        """The cache must not trust arbitrary JSON: garbage meta means the
        whole entry is distrusted and its runs recomputed."""
        scenarios = _scenarios()[:1]
        CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path).run_campaign(
            scenarios, min_runs=2, max_runs=2
        )
        self._corrupt_meta_files(
            tmp_path, lambda meta: meta.write_text("not json", encoding="utf-8")
        )
        again = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path)
        again.run_campaign(scenarios, min_runs=2, max_runs=2)
        assert again.stats.runs_cached == 0
        assert again.stats.runs_executed == 2

    def test_wrong_schema_meta_invalidates_entry(self, tmp_path):
        scenarios = _scenarios()[:1]
        CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path).run_campaign(
            scenarios, min_runs=2, max_runs=2
        )

        def wrong_schema(meta):
            payload = json.loads(meta.read_text(encoding="utf-8"))
            payload["schema"] = "wavm3-run-cache/0"
            meta.write_text(json.dumps(payload), encoding="utf-8")

        self._corrupt_meta_files(tmp_path, wrong_schema)
        again = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path)
        again.run_campaign(scenarios, min_runs=2, max_runs=2)
        assert again.stats.runs_cached == 0

    def test_hash_mismatching_meta_invalidates_entry(self, tmp_path):
        """A meta whose canonical JSON no longer hashes back to the entry
        key (hand-edited or bit-rotted) marks the entry untrustworthy."""
        scenarios = _scenarios()[:1]
        CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path).run_campaign(
            scenarios, min_runs=2, max_runs=2
        )

        def tamper(meta):
            payload = json.loads(meta.read_text(encoding="utf-8"))
            payload["seed"] = payload["seed"] + 1
            meta.write_text(json.dumps(payload), encoding="utf-8")

        self._corrupt_meta_files(tmp_path, tamper)
        again = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path)
        again.run_campaign(scenarios, min_runs=2, max_runs=2)
        assert again.stats.runs_cached == 0
        assert again.stats.runs_executed == 2

    def test_recompute_repairs_bad_meta(self, tmp_path):
        """After recomputing past a bad meta, put() rewrites a valid one,
        so the *next* campaign is all cache hits again."""
        scenarios = _scenarios()[:1]
        CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path).run_campaign(
            scenarios, min_runs=2, max_runs=2
        )
        self._corrupt_meta_files(
            tmp_path, lambda meta: meta.write_text("{}", encoding="utf-8")
        )
        CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path).run_campaign(
            scenarios, min_runs=2, max_runs=2
        )
        for meta in tmp_path.rglob("meta.json"):
            payload = json.loads(meta.read_text(encoding="utf-8"))
            assert payload["schema"] == CACHE_KEY_SCHEMA
        healed = CampaignExecutor(ScenarioRunner(seed=SEED), jobs=1, cache_dir=tmp_path)
        healed.run_campaign(scenarios, min_runs=2, max_runs=2)
        assert healed.stats.runs_executed == 0
        assert healed.stats.runs_cached == 2


class TestCacheKey:
    SETTINGS = RunnerSettings()
    RULE = StabilizationRule()

    def _key(self, **overrides):
        kwargs = dict(
            seed=1,
            scenario=_scenarios()[0],
            settings=self.SETTINGS,
            migration_config=None,
            stabilization=self.RULE,
        )
        kwargs.update(overrides)
        return RunCache.scenario_key(
            kwargs["seed"], kwargs["scenario"], kwargs["settings"],
            kwargs["migration_config"], kwargs["stabilization"],
        )

    def test_stable(self):
        assert self._key() == self._key()

    def test_sensitive_to_every_ingredient(self):
        base = self._key()
        assert self._key(seed=2) != base
        assert self._key(scenario=_scenarios()[1]) != base
        assert self._key(settings=RunnerSettings(min_runs=12)) != base
        assert self._key(migration_config=MigrationConfig()) != base
        assert self._key(stabilization=StabilizationRule(n_readings=10)) != base


class TestRunResultPersistence:
    def test_round_trip(self, tmp_path, live_cpu_run):
        path = tmp_path / "run.pkl"
        save_run_result(live_cpu_run, path)
        loaded = load_run_result(path)
        assert loaded.scenario == live_cpu_run.scenario
        assert np.array_equal(loaded.source_trace.watts, live_cpu_run.source_trace.watts)
        assert loaded.total_energy_j(HostRole.SOURCE) == live_cpu_run.total_energy_j(
            HostRole.SOURCE
        )
        assert not list(tmp_path.glob("*.tmp"))  # atomic write cleaned up

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.pkl"
        path.write_bytes(b"\x80\x04garbage")
        with pytest.raises(PersistenceError):
            load_run_result(path)

    def test_rejects_wrong_schema(self, tmp_path):
        import pickle

        path = tmp_path / "wrong.pkl"
        path.write_bytes(pickle.dumps({"schema": "other/1", "run": None}))
        with pytest.raises(PersistenceError):
            load_run_result(path)


class TestStoppingRule:
    """resolve_run_count — shared by the serial loop and the executor."""

    def test_tracks_variance_below_min_runs(self):
        """previous_var must be maintained through the skipped-check region.

        The sequence's variance is already flat by n = 3, so the first
        *checked* count (n = min_runs = 5) compares against the variance
        at n = 4 and stops immediately.  If the chain were only started
        at min_runs, the stop would slip to n = 6.
        """
        energies = [100.0, 110.0, 100.0, 110.0, 100.0, 110.0, 100.0]
        assert resolve_run_count(energies, min_runs=5, max_runs=7, variance_delta=0.5) == 5

    def test_zero_variance_runs_to_max(self):
        # previous_var > 0 never holds for a constant sequence, so the
        # criterion cannot fire and the loop runs to max_runs.
        energies = [100.0, 100.0, 100.0, 100.0]
        assert resolve_run_count(energies, 2, 4, 0.1) == 4

    def test_undecided_returns_none(self):
        assert resolve_run_count([1.0, 50.0], min_runs=4, max_runs=8, variance_delta=0.1) is None

    def test_max_runs_caps(self):
        rng = np.random.default_rng(0)
        energies = (rng.random(6) * 1000).tolist()  # wildly varying
        assert resolve_run_count(energies, 2, 6, 1e-12) == 6

    def test_matches_serial_loop_semantics(self):
        """Replaying prefixes one run at a time gives the same stop point."""
        rng = np.random.default_rng(3)
        energies = (100 + rng.random(16) * 5).tolist()
        whole = resolve_run_count(energies, 4, 16, 0.10)
        incremental = None
        for n in range(1, 17):
            incremental = resolve_run_count(energies[:n], 4, 16, 0.10)
            if incremental is not None:
                break
        assert incremental == whole

    def test_bad_bounds_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_run_count([1.0, 2.0], min_runs=1, max_runs=4, variance_delta=0.1)
        with pytest.raises(ExperimentError):
            resolve_run_count([1.0, 2.0], min_runs=4, max_runs=2, variance_delta=0.1)

    def test_scenario_runner_respects_rule(self):
        """End-to-end: run_scenario keeps exactly the resolved count."""
        runner = ScenarioRunner(seed=SEED)
        scenario = _scenarios()[0]
        result = runner.run_scenario(scenario, min_runs=3, max_runs=8)
        energies = [r.total_energy_j(HostRole.SOURCE) for r in result.runs]
        assert resolve_run_count(energies, 3, 8, runner.settings.variance_delta) == result.n_runs


class TestBackendLifecycle:
    def test_shutdown_runs_even_when_drain_progress_raises(self):
        """A raising progress drain must not leak the backend's workers.

        Regression: ``run_campaign``'s cleanup drained worker progress
        before shutting the backend down, so an exception from the drain
        (corrupt sidecar, dead spool dir) skipped ``shutdown`` entirely
        and leaked the worker pool.  The drain error still propagates.
        """

        class ExplodingDrainBackend(SerialBackend):
            def __init__(self):
                self.shutdown_called = False

            def drain_progress(self):
                raise RuntimeError("corrupt progress sidecar")

            def shutdown(self):
                self.shutdown_called = True

        backend = ExplodingDrainBackend()
        executor = CampaignExecutor(ScenarioRunner(seed=SEED), backend=backend)
        with pytest.raises(RuntimeError, match="corrupt progress sidecar"):
            executor.run_campaign(_scenarios()[:1], min_runs=2, max_runs=2)
        assert backend.shutdown_called


class TestExecutorValidation:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ExperimentError):
            CampaignExecutor(ScenarioRunner(seed=0), jobs=0)

    def test_rejects_bad_backend(self):
        with pytest.raises(ExperimentError):
            CampaignExecutor(ScenarioRunner(seed=0), backend="threads")

    def test_rejects_empty_campaign(self):
        with pytest.raises(ExperimentError):
            CampaignExecutor(ScenarioRunner(seed=0)).run_campaign([])

    def test_rejects_bad_bounds(self):
        with pytest.raises(ExperimentError):
            CampaignExecutor(ScenarioRunner(seed=0)).run_campaign(
                _scenarios(), min_runs=1, max_runs=1
            )
