"""Power meter and dstat monitor behaviour on a live host."""

import numpy as np
import pytest

from repro.cluster import PhysicalHost, machine_spec
from repro.errors import ConfigurationError
from repro.simulator import Simulator
from repro.telemetry import DstatMonitor, PowerMeter


@pytest.fixture()
def setup():
    sim = Simulator()
    host = PhysicalHost(machine_spec("m01"), noise_seed=4)
    meter = PowerMeter(sim, host, np.random.default_rng(0))
    return sim, host, meter


class TestPowerMeter:
    def test_two_hertz_sampling(self, setup):
        sim, _, meter = setup
        meter.start()
        sim.run(until=10.0)
        assert len(meter.trace) == 20
        assert np.allclose(np.diff(meter.trace.times), 0.5)

    def test_reading_near_truth(self, setup):
        sim, host, meter = setup
        meter.start()
        sim.run(until=30.0)
        truth = host.idle_power_w()
        # 0.3 % device accuracy + small drift: readings within a few %.
        assert np.all(np.abs(meter.trace.watts - truth) < 0.12 * truth)

    def test_quantisation_grid(self):
        sim = Simulator()
        host = PhysicalHost(machine_spec("m01"), noise_seed=4)
        meter = PowerMeter(sim, host, np.random.default_rng(0), quantisation_w=0.1)
        meter.start()
        sim.run(until=5.0)
        scaled = meter.trace.watts / 0.1
        assert np.allclose(scaled, np.round(scaled), atol=1e-6)

    def test_stop_and_reset(self, setup):
        sim, _, meter = setup
        meter.start()
        sim.run(until=5.0)
        meter.stop()
        sim.run(until=10.0)
        assert len(meter.trace) == 10
        meter.reset()
        assert len(meter.trace) == 0

    def test_stabilises_on_idle_host(self, setup):
        sim, _, meter = setup
        meter.start()
        sim.run(until=30.0)
        assert meter.stabilised()

    def test_noise_deterministic_per_seed(self):
        readings = []
        for _ in range(2):
            sim = Simulator()
            host = PhysicalHost(machine_spec("m01"), noise_seed=4)
            meter = PowerMeter(sim, host, np.random.default_rng(42))
            meter.start()
            sim.run(until=5.0)
            readings.append(meter.trace.watts.copy())
        assert np.array_equal(readings[0], readings[1])

    def test_rejects_negative_accuracy(self):
        sim = Simulator()
        host = PhysicalHost(machine_spec("m01"))
        with pytest.raises(ConfigurationError):
            PowerMeter(sim, host, np.random.default_rng(0), accuracy=-0.1)


class TestDstatMonitor:
    def test_one_hertz_sampling(self):
        sim = Simulator()
        host = PhysicalHost(machine_spec("m01"), noise_seed=4)
        monitor = DstatMonitor(sim, host)
        monitor.start()
        sim.run(until=10.0)
        assert len(monitor.trace) == 10
        assert np.allclose(np.diff(monitor.trace.times), 1.0)

    def test_records_cpu_change(self):
        sim = Simulator()
        host = PhysicalHost(machine_spec("m01"), noise_seed=4)
        monitor = DstatMonitor(sim, host)
        monitor.start()
        sim.run(until=5.0)
        host.cpu.set_demand("vm:x", 16.0)
        sim.run(until=10.0)
        cpu = monitor.trace.column("cpu_pct")
        assert cpu[:5].mean() < 10.0
        assert cpu[5:].mean() > 40.0

    def test_records_nic_flows(self):
        sim = Simulator()
        host = PhysicalHost(machine_spec("m01"), noise_seed=4)
        monitor = DstatMonitor(sim, host)
        monitor.start()
        host.set_nic_flow("migr", tx_bps=5e7)
        sim.run(until=3.0)
        assert np.all(monitor.trace.column("nic_tx_bps") == pytest.approx(5e7))

    def test_stop(self):
        sim = Simulator()
        host = PhysicalHost(machine_spec("m01"), noise_seed=4)
        monitor = DstatMonitor(sim, host)
        monitor.start()
        sim.run(until=3.0)
        monitor.stop()
        sim.run(until=6.0)
        assert len(monitor.trace) == 3
        assert not monitor.running
