"""Fig. 2 bench: the four-phase energy structure of both migration kinds.

Success criteria (DESIGN.md F2): both kinds show the phase structure;
non-live shows a suspend *drop* on the source at initiation; live shows a
source *peak*; the transfer phase dominates the window.
"""

import numpy as np
from conftest import BENCH_SEED, save_artifact

from repro.analysis.figures import build_fig2_series
from repro.plotting import plot_figure_series


def _window_mean(series, t0, t1):
    mask = (series.times >= t0) & (series.times <= t1)
    return float(series.watts[mask].mean())


def test_bench_fig2_phase_structure(benchmark, artifacts_dir):
    """Regenerate Fig. 2 and assert the per-phase power signatures."""
    data = benchmark.pedantic(
        lambda: build_fig2_series(seed=BENCH_SEED, runs=3),
        rounds=1, iterations=1,
    )
    chunks = []
    for kind, roles in data.items():
        chunks.append(
            plot_figure_series(
                f"Fig. 2 ({kind} migration)",
                [(role, series) for role, series in roles.items()],
            )
        )
    save_artifact("fig2_phases.txt", "\n\n".join(chunks))

    nonlive_src = data["non-live"]["source"]
    live_src = data["live"]["source"]

    # Non-live: suspending the VM at ms drops source power below baseline.
    baseline = _window_mean(nonlive_src, 0.0, nonlive_src.mark_ms - 2.0)
    initiation = _window_mean(
        nonlive_src, nonlive_src.mark_ms + 0.5, nonlive_src.mark_ts + 1.5
    )
    assert initiation < baseline - 5.0, "non-live initiation must show the suspend drop"

    # Live: preparation tasks push the source to a new peak at initiation.
    live_baseline = _window_mean(live_src, 0.0, live_src.mark_ms - 2.0)
    live_transfer = _window_mean(live_src, live_src.mark_ts + 2.0, live_src.mark_te - 2.0)
    assert live_transfer > live_baseline + 10.0, "live transfer must sit above baseline"

    # Phase ordering is visible in the marks of every panel.
    for roles in data.values():
        for series in roles.values():
            assert series.mark_ms < series.mark_ts < series.mark_te < series.mark_me

    # Transfer dominates the migration window for both kinds.
    for roles in data.values():
        series = roles["source"]
        transfer = series.mark_te - series.mark_ts
        total = series.mark_me - series.mark_ms
        assert transfer / total > 0.7
