"""Figs. 5–7 benches: the MEMLOAD trace families.

Success criteria (DESIGN.md F5–F7):

* F5 — transfer duration and moved data grow with the dirtying ratio; the
  end-of-transfer power drop (stop-and-copy suspension) grows with DR.
* F6 — CPU load on the source lengthens the transfer even with a
  memory-intensive guest; high-DR live migration degenerates towards
  non-live behaviour (long downtime).
* F7 — CPU load on the target lengthens the transfer; the loaded target
  trends flat (CPU limit).
"""

import numpy as np
from conftest import save_artifact

from repro.analysis.figures import build_figure_panels
from repro.models.features import HostRole
from repro.phases.timeline import MigrationPhase
from repro.plotting import plot_figure_series


def _save_panels(name, panels):
    chunks = [plot_figure_series(title, entries) for title, entries in panels.items()]
    save_artifact(name, "\n\n".join(chunks))


def test_bench_fig5_memload_vm(benchmark, m_campaign, artifacts_dir):
    """Regenerate Fig. 5; assert the dirtying-ratio effects."""
    panels = benchmark.pedantic(
        lambda: build_figure_panels("fig5", result=m_campaign),
        rounds=1, iterations=1,
    )
    _save_panels("fig5_memload_vm.txt", panels)
    source = dict(panels["(a) Source"])

    # Transfer grows with DR (multiple pre-copy rounds re-sending state).
    spans = {
        label: series.mark_te - series.mark_ts for label, series in source.items()
    }
    assert spans["95%"] > spans["5%"] * 0.9  # both pay the 3x data cap …
    assert spans["35%"] > spans["5%"] * 0.8

    # Moved data grows with DR, bounded by Xen's 3x cap.
    results = {
        sr.scenario.dirty_percent: sr
        for sr in m_campaign.scenario_results
        if sr.scenario.experiment == "MEMLOAD-VM"
    }
    data_5 = np.mean([r.timeline.bytes_total for r in results[5.0].runs])
    data_95 = np.mean([r.timeline.bytes_total for r in results[95.0].runs])
    ram_bytes = results[5.0].runs[0].vm_ram_mb * 1024 * 1024
    assert data_95 > data_5
    assert data_95 <= 3.0 * ram_bytes + ram_bytes

    # The stop-and-copy suspension (downtime) grows with DR — the power
    # drop near the end of transfer the paper highlights.
    downtimes = {pct: results[pct].mean_downtime_s() for pct in (5.0, 55.0, 95.0)}
    assert downtimes[95.0] > downtimes[55.0] > downtimes[5.0]


def test_bench_fig6_memload_source(benchmark, m_campaign, artifacts_dir):
    """Regenerate Fig. 6; assert the CPU-load interaction with MEMLOAD."""
    panels = benchmark.pedantic(
        lambda: build_figure_panels("fig6", result=m_campaign),
        rounds=1, iterations=1,
    )
    _save_panels("fig6_memload_source.txt", panels)
    source = dict(panels["(a) MEMLOAD-SOURCE source"])

    # CPU load on the source lengthens the transfer even for MEMLOAD
    # (reduced bandwidth -> longer rounds; Section VI-D).
    spans = {label: s.mark_te - s.mark_ts for label, s in source.items()}
    assert spans["8 VM"] > spans["0 VM"] * 1.1

    # High-DR live migrations end in a substantial stop-and-copy: downtime
    # far beyond the pure-CPU case (the "transforms into non-live" effect).
    memload = [
        sr for sr in m_campaign.scenario_results
        if sr.scenario.experiment == "MEMLOAD-SOURCE"
    ]
    cpu_live = [
        sr for sr in m_campaign.scenario_results
        if sr.scenario.experiment == "CPULOAD-SOURCE" and sr.scenario.live
    ]
    mem_downtime = np.mean([sr.mean_downtime_s() for sr in memload])
    cpu_downtime = np.mean([sr.mean_downtime_s() for sr in cpu_live])
    assert mem_downtime > cpu_downtime * 2.0


def test_bench_fig7_memload_target(benchmark, m_campaign, artifacts_dir):
    """Regenerate Fig. 7; assert the target-load effects."""
    panels = benchmark.pedantic(
        lambda: build_figure_panels("fig7", result=m_campaign),
        rounds=1, iterations=1,
    )
    _save_panels("fig7_memload_target.txt", panels)
    target = dict(panels["(b) MEMLOAD-TARGET target"])

    # Loaded target: reduced bandwidth lengthens the transfer.
    spans = {label: s.mark_te - s.mark_ts for label, s in target.items()}
    assert spans["8 VM"] > spans["0 VM"] * 1.1

    # Fully loaded target trends flat (CPU ceiling) during transfer.
    s8 = target["8 VM"]
    window = (s8.times > s8.mark_ts + 5.0) & (s8.times < s8.mark_te - 5.0)
    assert float(s8.watts[window].std()) < 0.06 * float(s8.watts[window].mean())
