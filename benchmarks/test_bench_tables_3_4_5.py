"""Tables III–V benches: WAVM3 coefficients and cross-testbed validation.

Success criteria (DESIGN.md T3/T4/T5): positive CPU coefficients, the
structural zeroes of the paper's tables (β(i)(target)=0 during initiation
is *fitted*, not imposed, on the live table; γ(t)(target)=0 always),
rebias shrinking constants toward the o-pair idle, and Table V's ordering
(trained pair more accurate than the transfer pair).
"""

from conftest import BENCH_SEED, save_artifact

from repro.analysis.tables import render_table3_4, render_table5
from repro.analysis.validation import fit_wavm3_per_kind
from repro.models.features import HostRole
from repro.phases.timeline import MigrationPhase


def _fit_models(m_campaign):
    train, _, _ = m_campaign.train_test_split(training_fraction=0.25)
    return fit_wavm3_per_kind(train)


def test_bench_table3_coefficients_nonlive(benchmark, m_campaign, artifacts_dir):
    """Regenerate Table III (non-live WAVM3 coefficients)."""
    models = benchmark.pedantic(lambda: _fit_models(m_campaign), rounds=1, iterations=1)
    model = models["non-live"]
    save_artifact("table3_coefficients_nonlive.txt", render_table3_4(model, live=False))

    coefs = model.coefficients
    for role in (HostRole.SOURCE, HostRole.TARGET):
        for phase in (MigrationPhase.INITIATION, MigrationPhase.TRANSFER,
                      MigrationPhase.ACTIVATION):
            alpha = coefs.coefficient(role, phase, "cpu_host")
            assert alpha > 0.5, f"CPU slope must be positive ({role}, {phase})"
            constant = coefs.coefficient(role, phase, "const")
            assert 250.0 < constant < 700.0, "constants sit near the idle draw"
    # Non-live: the VM is suspended, so its features never vary and the
    # VM-CPU and DR coefficients pin at zero — exactly the paper's
    # structure of Table III vs Table IV.
    assert coefs.coefficient(HostRole.SOURCE, MigrationPhase.TRANSFER, "dr") == 0.0
    assert coefs.coefficient(HostRole.SOURCE, MigrationPhase.TRANSFER, "cpu_vm") == 0.0


def test_bench_table4_coefficients_live(benchmark, m_campaign, artifacts_dir):
    """Regenerate Table IV (live WAVM3 coefficients)."""
    models = benchmark.pedantic(lambda: _fit_models(m_campaign), rounds=1, iterations=1)
    model = models["live"]
    save_artifact("table4_coefficients_live.txt", render_table3_4(model, live=True))

    coefs = model.coefficients
    # The workload-aware terms are identifiable from the live campaign:
    gamma = coefs.coefficient(HostRole.SOURCE, MigrationPhase.TRANSFER, "dr")
    assert gamma > 0.0, "dirtying-ratio coefficient must be identified (Table IV)"
    # Bandwidth: on the source, BW anti-correlates with CPU (saturation is
    # what reduces it), so the non-negative fit may fold the NIC power into
    # α there; the *target* (constant receive CPU) identifies it cleanly.
    beta_bw_src = coefs.coefficient(HostRole.SOURCE, MigrationPhase.TRANSFER, "bw")
    beta_bw_tgt = coefs.coefficient(HostRole.TARGET, MigrationPhase.TRANSFER, "bw")
    assert beta_bw_src >= 0.0
    assert beta_bw_tgt > 0.0, "bandwidth coefficient must be identified on the target"
    # γ(t) = 0 on the target: no VM runs there during transfer.
    assert coefs.coefficient(HostRole.TARGET, MigrationPhase.TRANSFER, "dr") == 0.0
    # β(a) on the target reflects the VM starting there (paper: 17.01).
    beta_act = coefs.coefficient(HostRole.TARGET, MigrationPhase.ACTIVATION, "cpu_vm")
    assert beta_act >= 0.0


def test_bench_table5_validation(benchmark, validation, artifacts_dir):
    """Regenerate Table V (NRMSE on both machine pairs)."""
    result = benchmark.pedantic(lambda: validation, rounds=1, iterations=1)
    save_artifact("table5_validation.txt", render_table5(result))

    for kind in ("non-live", "live"):
        for role in ("source", "target"):
            m_err = result.nrmse_percent("m", kind, role)
            o_err = result.nrmse_percent("o", kind, role)
            # Trained pair beats the ported pair (paper: 11.8-12 vs 12.5-17.2).
            assert m_err < o_err, f"m must beat o for {kind}/{role}"
            # Both land in the paper's low-tens-of-percent band.
            assert m_err < 20.0
            assert o_err < 45.0

    # The C1->C2 rebias is what makes the o-pair numbers possible at all:
    # without it predictions carry the m-pair idle (~345 W too high).
    live_model = result.models["live"]
    c1 = live_model.coefficients.coefficient(
        HostRole.SOURCE, MigrationPhase.TRANSFER, "const"
    )
    c2 = live_model.coefficients.rebias(112.0).coefficient(
        HostRole.SOURCE, MigrationPhase.TRANSFER, "const"
    )
    assert c2 < c1 - 250.0
