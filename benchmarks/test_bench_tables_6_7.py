"""Tables VI–VII benches: the model comparison headline.

Success criteria (DESIGN.md T7 — the paper's central claim):

* WAVM3 ≤ HUANG on every (kind, role) cell, with a visible live-source
  advantage (the DR/bandwidth/VM-CPU terms HUANG lacks);
* LIU and STRUNK trail far behind both CPU-aware models;
* HUANG's error grows markedly from non-live to live while WAVM3 degrades
  less (paper: +18 % NRMSE for HUANG on the source);
* WAVM3's RMSE−MAE spread stays at most around HUANG's (error variance).
"""

from conftest import save_artifact

from repro.analysis.tables import render_table6, render_table7


def test_bench_table6_baseline_coefficients(benchmark, comparison, artifacts_dir):
    """Regenerate Table VI (HUANG/LIU/STRUNK training coefficients)."""
    result = benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    save_artifact("table6_baseline_coefficients.txt", render_table6(result))

    huang = result.models["HUANG"]["live"]
    for role, (alpha, c) in huang.coefficients.items():
        # Paper Table VI: alpha 2.27-2.56 W/%, C ~ 645-672 W on the m-pair.
        assert 0.5 < alpha < 10.0
        assert 300.0 < c < 700.0

    liu = result.models["LIU"]["live"]
    for role, (alpha, c) in liu.coefficients.items():
        assert alpha >= 0.0  # more data never costs less energy

    strunk = result.models["STRUNK"]["live"]
    for role, (alpha, beta, c) in strunk.coefficients.items():
        # Paper Table VI: beta < 0 — more bandwidth => shorter migration
        # => less energy.  The sign must reproduce.
        assert beta < 0.0, "STRUNK's bandwidth coefficient must be negative"


def test_bench_table7_model_comparison(benchmark, comparison, artifacts_dir):
    """Regenerate Table VII and assert the paper's accuracy ordering."""
    result = benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)
    save_artifact("table7_comparison.txt", render_table7(result))

    # WAVM3 at least matches HUANG everywhere (small slack for noise) ...
    for kind in ("non-live", "live"):
        for role in ("source", "target"):
            wavm3 = result.nrmse_percent("WAVM3", kind, role)
            huang = result.nrmse_percent("HUANG", kind, role)
            assert wavm3 <= huang + 0.4, f"WAVM3 must match HUANG ({kind}/{role})"

    # ... and clearly beats it on the live source, where the workload
    # terms matter (paper: 11.8 vs 15.7 NRMSE).
    assert result.improvement_over("HUANG", "live", "source") > 0.3

    # HUANG degrades more from non-live to live than WAVM3 (RMSE ratios).
    wavm3_growth = (
        result.errors["WAVM3"]["live"]["source"].rmse_j
        / result.errors["WAVM3"]["non-live"]["source"].rmse_j
    )
    huang_growth = (
        result.errors["HUANG"]["live"]["source"].rmse_j
        / result.errors["HUANG"]["non-live"]["source"].rmse_j
    )
    assert huang_growth > wavm3_growth

    # LIU and STRUNK trail far behind the CPU-aware models (paper: 25-36 %
    # vs 5-16 %).
    for kind in ("non-live", "live"):
        for role in ("source", "target"):
            wavm3 = result.nrmse_percent("WAVM3", kind, role)
            for other in ("LIU", "STRUNK"):
                assert result.nrmse_percent(other, kind, role) > wavm3 * 1.8

    # Up-to-24 % headline: the largest improvement across the grid is
    # substantial.
    best_gain = max(
        result.improvement_over(other, kind, role)
        for other in ("HUANG", "LIU", "STRUNK")
        for kind in ("non-live", "live")
        for role in ("source", "target")
    )
    assert best_gain > 15.0
