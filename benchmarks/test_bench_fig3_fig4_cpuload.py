"""Figs. 3–4 benches: CPULOAD-SOURCE and CPULOAD-TARGET trace families.

Success criteria (DESIGN.md F3/F4):

* F3 — the transfer lengthens when the source CPU saturates; the 8-VM
  multiplexed case pins source power at a flat ceiling; pre-migration
  source power grows monotonically with the load level.
* F4 — the target shows a clear power step once the VM runs there
  (activation); a fully loaded target flattens at its CPU limit.
"""

import numpy as np
import pytest
from conftest import save_artifact

from repro.analysis.figures import build_figure_panels
from repro.models.features import HostRole
from repro.plotting import plot_figure_series


def _save_panels(name, panels):
    chunks = [plot_figure_series(title, entries) for title, entries in panels.items()]
    save_artifact(name, "\n\n".join(chunks))


def _series_map(panels, panel_title):
    return dict(panels[panel_title])


def test_bench_fig3_cpuload_source(benchmark, m_campaign, artifacts_dir):
    """Regenerate Fig. 3 from the shared campaign; assert its claims."""
    panels = benchmark.pedantic(
        lambda: build_figure_panels("fig3", result=m_campaign),
        rounds=1, iterations=1,
    )
    _save_panels("fig3_cpuload_source.txt", panels)
    assert len(panels) == 4

    live_source = _series_map(panels, "(c) Live source")

    # Pre-migration source power grows with the load level.
    baselines = [
        float(series.watts[(series.times < series.mark_ms - 2.0)].mean())
        for _, series in sorted(live_source.items(), key=lambda kv: int(kv[0].split()[0]))
    ]
    assert all(b2 > b1 - 3.0 for b1, b2 in zip(baselines, baselines[1:]))
    assert baselines[-1] - baselines[0] > 200.0  # idle -> saturated spread

    # Saturation lengthens the transfer (paper Section VI-A conclusion).
    idle_transfer = live_source["0 VM"].mark_te - live_source["0 VM"].mark_ts
    loaded_transfer = live_source["8 VM"].mark_te - live_source["8 VM"].mark_ts
    assert loaded_transfer > idle_transfer * 1.15

    # Multiplexed source pins at a flat ceiling during transfer.
    s8 = live_source["8 VM"]
    window = (s8.times > s8.mark_ts + 3.0) & (s8.times < s8.mark_te - 3.0)
    ceiling = s8.watts[window]
    assert float(ceiling.std()) < 0.05 * float(ceiling.mean())


def test_bench_fig4_cpuload_target(benchmark, m_campaign, artifacts_dir):
    """Regenerate Fig. 4 from the shared campaign; assert its claims."""
    panels = benchmark.pedantic(
        lambda: build_figure_panels("fig4", result=m_campaign),
        rounds=1, iterations=1,
    )
    _save_panels("fig4_cpuload_target.txt", panels)

    nonlive_target = _series_map(panels, "(b) Non-live target")

    # Activation step: target power after me exceeds its pre-migration level
    # (the VM now runs there) for the idle-target case.
    s0 = nonlive_target["0 VM"]
    before = float(s0.watts[s0.times < s0.mark_ms - 2.0].mean())
    after = float(s0.watts[s0.times > s0.mark_me + 4.0].mean())
    assert after > before + 15.0

    # A fully loaded target cannot step up: it is already at its CPU limit.
    s8 = nonlive_target["8 VM"]
    before8 = float(s8.watts[s8.times < s8.mark_ms - 2.0].mean())
    after8 = float(s8.watts[s8.times > s8.mark_me + 4.0].mean())
    assert abs(after8 - before8) < abs(after - before)

    # Live migrations take longer than non-live ones (Section VI-B).
    live_target = _series_map(panels, "(d) Live target")
    for label in ("0 VM", "5 VM"):
        live_span = live_target[label].mark_me - live_target[label].mark_ms
        nonlive_span = nonlive_target[label].mark_me - nonlive_target[label].mark_ms
        assert live_span > nonlive_span
