"""Shared campaign fixtures for the benchmark harness.

Every table/figure bench needs instrumented campaigns; they are produced
once per session here and shared.  Runs-per-scenario defaults to 3 to
keep the full bench suite in the minutes range — raise
``WAVM3_BENCH_RUNS`` (environment) to 10 for the paper's full protocol.

Campaigns go through :meth:`ScenarioRunner.run_campaign`'s executor path:
set ``WAVM3_BENCH_JOBS`` to fan runs out across that many worker
processes (results are bit-identical to serial), and
``WAVM3_BENCH_CACHE_DIR`` to reuse runs across bench sessions via the
content-addressed run cache.  Setting ``WAVM3_BENCH_SPOOL_DIR`` (with a
cache dir) switches to the distributed queue backend instead: start
``campaign-worker`` processes against the same spool/cache to serve the
bench campaigns from any number of machines.

Rendered tables and figure panels are written to
``benchmarks/artifacts/`` so the regenerated evaluation can be inspected
after a run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.comparison import compare_models
from repro.analysis.validation import validate_wavm3
from repro.experiments.design import all_scenarios
from repro.experiments.runner import ScenarioRunner

BENCH_RUNS = int(os.environ.get("WAVM3_BENCH_RUNS", "3"))
BENCH_SEED = int(os.environ.get("WAVM3_BENCH_SEED", "7"))
BENCH_JOBS = int(os.environ.get("WAVM3_BENCH_JOBS", "1"))
BENCH_CACHE_DIR = os.environ.get("WAVM3_BENCH_CACHE_DIR") or None
BENCH_SPOOL_DIR = os.environ.get("WAVM3_BENCH_SPOOL_DIR") or None

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"

if BENCH_SPOOL_DIR is not None:
    _CAMPAIGN_KWARGS = dict(
        parallel="queue", cache_dir=BENCH_CACHE_DIR, spool_dir=BENCH_SPOOL_DIR
    )
else:
    _CAMPAIGN_KWARGS = dict(parallel=BENCH_JOBS, cache_dir=BENCH_CACHE_DIR)


@pytest.fixture(scope="session")
def artifacts_dir() -> pathlib.Path:
    """Directory collecting the regenerated tables and figures."""
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


def save_artifact(name: str, content: str) -> None:
    """Write a rendered table/figure for post-run inspection."""
    ARTIFACTS.mkdir(exist_ok=True)
    (ARTIFACTS / name).write_text(content + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def m_campaign():
    """The full Table IIa campaign on the m-pair."""
    runner = ScenarioRunner(seed=BENCH_SEED)
    return runner.run_campaign(
        all_scenarios("m"), min_runs=BENCH_RUNS, max_runs=BENCH_RUNS,
        **_CAMPAIGN_KWARGS,
    )


@pytest.fixture(scope="session")
def o_campaign():
    """The full Table IIa campaign on the o-pair."""
    runner = ScenarioRunner(seed=BENCH_SEED + 1)
    return runner.run_campaign(
        all_scenarios("o"), min_runs=max(2, BENCH_RUNS - 1), max_runs=max(2, BENCH_RUNS - 1),
        **_CAMPAIGN_KWARGS,
    )


@pytest.fixture(scope="session")
def comparison(m_campaign):
    """The Table VI/VII model comparison on the shared m-campaign."""
    return compare_models(result=m_campaign, seed=BENCH_SEED, training_fraction=0.25)


@pytest.fixture(scope="session")
def validation(m_campaign, o_campaign):
    """The Table V validation on the shared campaigns."""
    return validate_wavm3(
        m_result=m_campaign, o_result=o_campaign, seed=BENCH_SEED,
        training_fraction=0.25,
    )
