"""Benches for Table I (workload impact) and Table II (setup).

Table I is verified *measurably*: each qualitative claim of the matrix is
backed by a measured comparison (transfer slowdown under load, multiple
pre-copy rounds under dirtying).
"""

from conftest import BENCH_SEED, save_artifact

from repro.analysis.tables import render_table1, render_table2
from repro.analysis.workload_impact import verify_workload_impact


def test_bench_table1_workload_impact(benchmark, artifacts_dir):
    """Regenerate Table I and verify every claim against measurements."""
    checks = benchmark.pedantic(
        lambda: verify_workload_impact(seed=BENCH_SEED, runs=2),
        rounds=1, iterations=1,
    )
    table = render_table1()
    lines = [table, "", "Measured verification:"]
    for check in checks:
        lines.append(
            f"  [{'ok' if check.holds else 'FAIL'}] {check.claim}: "
            f"{check.metric} baseline={check.baseline:.2f} loaded={check.loaded:.2f}"
        )
    save_artifact("table1_workload_impact.txt", "\n".join(lines))
    assert all(check.holds for check in checks)


def test_bench_table2_setup(benchmark):
    """Regenerate Table II (VM instances + hardware)."""
    table = benchmark(render_table2)
    save_artifact("table2_setup.txt", table)
    # Structural spot-checks against the paper's Table II.
    assert "migrating-mem" in table and "pagedirtier" in table
    assert "Broadcom BCM5704" in table and "HP 1810-8G" in table
    assert "4.2.5" in table
