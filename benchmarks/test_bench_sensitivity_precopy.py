"""D5 bench: sensitivity of trace shape to the pre-copy termination knobs.

Expected responses on a high-DR live migration (the regime where every
stop condition is active):

* more allowed iterations ⇒ more rounds, but Xen's 3× data cap ends up
  binding, so moved data plateaus;
* a looser transfer cap ⇒ more data moved and a longer transfer;
* a larger dirty-page threshold ⇒ earlier stop ⇒ no more rounds than the
  tight-threshold run.
"""

from conftest import BENCH_SEED, save_artifact

from repro.analysis.report import format_table
from repro.analysis.sensitivity import sweep_precopy_knob


def _render(study):
    return format_table(
        ("value", "rounds", "transfer [s]", "downtime [s]", "data [GiB]", "E_src [kJ]"),
        [
            (p.value, p.rounds, p.transfer_s, p.downtime_s, p.data_gib,
             p.source_energy_kj)
            for p in study.points
        ],
        title=f"Sensitivity: {study.knob}",
        precision=2,
    )


def test_bench_sensitivity_max_iterations(benchmark, artifacts_dir):
    study = benchmark.pedantic(
        lambda: sweep_precopy_knob("max_iterations", (2, 5, 29), seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    save_artifact("sensitivity_max_iterations.txt", _render(study))
    rounds = study.column("rounds")
    assert rounds[0] < rounds[-1] or study.column("data_gib")[0] < study.column("data_gib")[-1]
    # Fewer allowed iterations force an earlier, larger stop-and-copy.
    assert study.column("downtime_s")[0] >= study.column("downtime_s")[-1] * 0.8


def test_bench_sensitivity_transfer_cap(benchmark, artifacts_dir):
    study = benchmark.pedantic(
        lambda: sweep_precopy_knob("max_transfer_factor", (1.5, 2.0, 3.0), seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    save_artifact("sensitivity_transfer_cap.txt", _render(study))
    # A looser cap moves more data over a longer transfer.
    assert study.monotone_response("data_gib")
    assert study.column("transfer_s")[-1] > study.column("transfer_s")[0]


def test_bench_sensitivity_dirty_threshold(benchmark, artifacts_dir):
    study = benchmark.pedantic(
        lambda: sweep_precopy_knob(
            "dirty_threshold_pages", (50, 20_000, 400_000), seed=BENCH_SEED
        ),
        rounds=1, iterations=1,
    )
    save_artifact("sensitivity_dirty_threshold.txt", _render(study))
    # A huge threshold converges immediately: minimal rounds.
    assert study.column("rounds")[-1] <= study.column("rounds")[0]
