"""Ablation benches for the design decisions called out in DESIGN.md §6.

* **D1** — drop WAVM3's bandwidth term β(t): accuracy must degrade on the
  CPU-saturated scenarios where bandwidth decouples from CPU.
* **D2** — drop the dirtying-ratio term γ(t): accuracy must degrade on the
  MEMLOAD scenarios.
* **D3** — collapse the phase structure (HUANG is exactly that: one global
  linear CPU model): phase-resolved WAVM3 must win on live migrations.
* **D4** — disable the C1→C2 rebias: predictions on the o-pair must
  systematically overestimate (the paper's observed failure mode).
"""

import numpy as np
from conftest import BENCH_SEED, save_artifact

from repro.models.features import HostRole
from repro.models.wavm3 import Wavm3Model
from repro.regression.metrics import ErrorReport


def _split(campaign, live=True):
    train_runs, test_runs, _ = campaign.train_test_split(
        training_fraction=0.25, rng=np.random.default_rng(BENCH_SEED)
    )
    def samples(runs):
        return [
            run.sample_for(role)
            for run in runs
            if run.scenario.live is live
            for role in (HostRole.SOURCE, HostRole.TARGET)
        ]
    return samples(train_runs), samples(test_runs)


def _nrmse(model, samples):
    return ErrorReport.from_predictions(
        model.measured_energies(samples), model.predict_energies(samples)
    ).nrmse_percent


def test_bench_ablation_bandwidth_term(benchmark, m_campaign, artifacts_dir):
    """D1: removing β(t)·BW hurts on bandwidth-limited scenarios."""
    train, test = _split(m_campaign, live=True)
    saturated = [s for s in test if "7vm" in s.scenario or "8vm" in s.scenario]

    def run():
        full = Wavm3Model().fit(train)
        ablated = Wavm3Model(disabled_features={"bw"}).fit(train)
        return _nrmse(full, saturated), _nrmse(ablated, saturated)

    full_err, ablated_err = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "ablation_d1_bandwidth.txt",
        f"saturated-scenario NRMSE: full={full_err:.2f}%  no-bw={ablated_err:.2f}%",
    )
    assert ablated_err >= full_err - 0.3


def test_bench_ablation_dirtying_term(benchmark, m_campaign, artifacts_dir):
    """D2: removing γ(t)·DR hurts on the MEMLOAD scenarios."""
    train, test = _split(m_campaign, live=True)
    memload = [s for s in test if s.experiment.startswith("MEMLOAD")]

    def run():
        full = Wavm3Model().fit(train)
        ablated = Wavm3Model(disabled_features={"dr"}).fit(train)
        return _nrmse(full, memload), _nrmse(ablated, memload)

    full_err, ablated_err = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "ablation_d2_dirtying.txt",
        f"MEMLOAD NRMSE: full={full_err:.2f}%  no-dr={ablated_err:.2f}%",
    )
    assert ablated_err >= full_err - 0.3


def test_bench_ablation_phase_structure(benchmark, m_campaign, artifacts_dir):
    """D3: per-phase coefficients beat a single global linear model."""
    train, test = _split(m_campaign, live=True)

    def run():
        from repro.models.huang import HuangModel  # the collapsed-phase model

        phased = Wavm3Model().fit(train)
        collapsed = HuangModel().fit(train)
        return _nrmse(phased, test), _nrmse(collapsed, test)

    phased_err, collapsed_err = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "ablation_d3_phases.txt",
        f"live NRMSE: phase-resolved={phased_err:.2f}%  collapsed={collapsed_err:.2f}%",
    )
    assert phased_err <= collapsed_err + 0.3


def test_bench_ablation_rebias(benchmark, m_campaign, o_campaign, artifacts_dir):
    """D4: skipping the C1→C2 rebias systematically overestimates on o."""
    train, _ = _split(m_campaign, live=True)
    o_samples = [
        run.sample_for(role)
        for run in o_campaign.all_runs()
        if run.scenario.live
        for role in (HostRole.SOURCE, HostRole.TARGET)
    ]

    def run():
        model = Wavm3Model().fit(train)
        raw_bias = float(np.mean(
            model.predict_energies(o_samples) - model.measured_energies(o_samples)
        ))
        deployed_idle = float(np.mean([s.notes["idle_power_w"] for s in o_samples]))
        ported = model.with_coefficients(model.coefficients.rebias(deployed_idle))
        ported_bias = float(np.mean(
            ported.predict_energies(o_samples) - ported.measured_energies(o_samples)
        ))
        return raw_bias, ported_bias

    raw_bias, ported_bias = benchmark.pedantic(run, rounds=1, iterations=1)
    save_artifact(
        "ablation_d4_rebias.txt",
        f"mean prediction bias on o-pair: raw={raw_bias/1000:.1f}kJ  "
        f"rebias={ported_bias/1000:.1f}kJ",
    )
    # Without rebias: large positive (over-)estimation, exactly the paper's
    # observation; with rebias the bias shrinks dramatically.
    assert raw_bias > 10_000.0
    assert abs(ported_bias) < 0.5 * raw_bias
