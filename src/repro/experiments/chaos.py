"""Deterministic chaos harness: seeded fault injection at named seams.

The fault-tolerance layer (:mod:`repro.experiments.faults`) is only
trustworthy if it is exercised — so the execution stack exposes *named
seams* where a seeded :class:`ChaosSchedule` can inject crashes, delays
or payload corruption:

========================  =====================================================
seam                      where it trips
========================  =====================================================
``claim``                 a worker claiming a task (spool rename, ``POST /claim``)
``execute``               inside :func:`~repro.experiments.executor.execute_batch`,
                          once per run
``heartbeat``             a worker's lease-refresh beat (claim ``utime``,
                          ``POST /heartbeat``)
``publish``               a worker announcing per-run progress (spool NDJSON
                          sidecar, ``POST /progress``)
``cache-put``             persisting a run result into the shared cache
                          (byte seam: ``corrupt`` mangles the payload)
``result-upload``         the HTTP worker uploading its result bytes
                          (byte seam: ``corrupt`` mangles the payload)
========================  =====================================================

A schedule is a seed plus an ordered list of rules, written as a compact
spec string (``--chaos SPEC`` on the CLI, ``WAVM3_CHAOS`` in worker
environments)::

    seed=7; execute:crash:rate=0.5:max=2; result-upload:corrupt:max=1

Each clause is ``SEAM:ACTION[:key=value]...`` with ``ACTION`` one of
``crash`` (raise :class:`ChaosError`), ``delay`` (sleep ``delay=SECONDS``,
default 0.05) or ``corrupt`` (byte seams only: deterministically mangle
the payload).  ``rate=R`` trips the rule on a deterministic pseudo-random
fraction R of its invocations (default 1.0: every time), ``max=N`` caps
total trips (essential for soak tests that must terminate), and
``tag=SUBSTR`` restricts the rule to invocations whose tag (typically the
scenario label) contains the substring.

Everything is deterministic: the trip decision for invocation *n* of
rule *i* hashes ``(seed, i, seam, n)`` — no wall clock, no RNG state —
so a chaos campaign is as reproducible as a fault-free one.  The
standing guarantee tested by the chaos soak suite is that campaign
samples remain **byte-identical** under injected faults, because retried
runs are deterministic given their derived seeds.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.faults import stable_unit_interval

__all__ = [
    "ACTIONS",
    "BYTE_SEAMS",
    "CHAOS_ENV_VAR",
    "SEAMS",
    "ChaosError",
    "ChaosRule",
    "ChaosSchedule",
    "activate",
    "active_schedule",
    "chaos_bytes",
    "chaos_trip",
    "deactivate",
]

#: Environment variable carrying a chaos spec into worker processes.
CHAOS_ENV_VAR = "WAVM3_CHAOS"

SEAMS = ("claim", "execute", "heartbeat", "publish", "cache-put", "result-upload")
ACTIONS = ("crash", "delay", "corrupt")
#: Seams that move a byte payload — the only ones ``corrupt`` applies to.
BYTE_SEAMS = ("cache-put", "result-upload")


class ChaosError(ExperimentError):
    """An injected fault (the ``crash`` action) — never a real failure."""


@dataclass(frozen=True)
class ChaosRule:
    """One fault clause of a schedule (see the module doc for semantics)."""

    seam: str
    action: str
    rate: float = 1.0
    max_trips: Optional[int] = None
    delay_s: float = 0.05
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.seam not in SEAMS:
            raise ExperimentError(
                f"unknown chaos seam {self.seam!r} (expected one of {SEAMS})"
            )
        if self.action not in ACTIONS:
            raise ExperimentError(
                f"unknown chaos action {self.action!r} (expected one of {ACTIONS})"
            )
        if self.action == "corrupt" and self.seam not in BYTE_SEAMS:
            raise ExperimentError(
                f"chaos action 'corrupt' applies only to byte seams {BYTE_SEAMS}, "
                f"not {self.seam!r}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ExperimentError(f"chaos rate must be in [0, 1], got {self.rate}")
        if self.max_trips is not None and self.max_trips < 0:
            raise ExperimentError(f"chaos max must be >= 0, got {self.max_trips}")
        if self.delay_s < 0:
            raise ExperimentError(f"chaos delay must be >= 0, got {self.delay_s}")


class ChaosSchedule:
    """A seeded, thread-safe set of fault rules tripping at named seams.

    Trip decisions are deterministic in ``(seed, rule index, seam,
    invocation counter)`` — counters are per-process, so a given worker
    process sees a reproducible fault sequence for its own invocation
    order.
    """

    def __init__(self, rules: Sequence[ChaosRule], seed: int = 0) -> None:
        if not rules:
            raise ExperimentError("a chaos schedule needs at least one rule")
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._invocations = [0] * len(self.rules)
        self._trips = [0] * len(self.rules)

    # -- spec round-trip -----------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "ChaosSchedule":
        """Parse a spec string (see module doc for the grammar).

        Raises
        ------
        ExperimentError
            On an empty spec, unknown seam/action/key, or out-of-range
            values.
        """
        seed = 0
        rules: list[ChaosRule] = []
        clauses = [c.strip() for c in spec.split(";") if c.strip()]
        if not clauses:
            raise ExperimentError(f"empty chaos spec: {spec!r}")
        for clause in clauses:
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError:
                    raise ExperimentError(f"invalid chaos seed clause: {clause!r}")
                continue
            parts = clause.split(":")
            if len(parts) < 2:
                raise ExperimentError(
                    f"chaos clause needs SEAM:ACTION, got {clause!r}"
                )
            seam, action = parts[0].strip(), parts[1].strip()
            kwargs: dict = {}
            for part in parts[2:]:
                key, sep, value = part.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep:
                    raise ExperimentError(
                        f"chaos option must be key=value, got {part!r} in {clause!r}"
                    )
                try:
                    if key == "rate":
                        kwargs["rate"] = float(value)
                    elif key == "max":
                        kwargs["max_trips"] = int(value)
                    elif key == "delay":
                        kwargs["delay_s"] = float(value)
                    elif key == "tag":
                        kwargs["tag"] = value
                    else:
                        raise ExperimentError(
                            f"unknown chaos option {key!r} in {clause!r}"
                        )
                except ValueError:
                    raise ExperimentError(
                        f"invalid chaos value {value!r} for {key!r} in {clause!r}"
                    )
            rules.append(ChaosRule(seam=seam, action=action, **kwargs))
        if not rules:
            raise ExperimentError(f"chaos spec has no fault clauses: {spec!r}")
        return cls(rules, seed=seed)

    def describe(self) -> str:
        """Round-trip the schedule back into a spec string."""
        clauses = [f"seed={self.seed}"]
        for rule in self.rules:
            parts = [rule.seam, rule.action]
            if rule.rate != 1.0:
                parts.append(f"rate={rule.rate:g}")
            if rule.max_trips is not None:
                parts.append(f"max={rule.max_trips}")
            if rule.delay_s != 0.05:
                parts.append(f"delay={rule.delay_s:g}")
            if rule.tag is not None:
                parts.append(f"tag={rule.tag}")
            clauses.append(":".join(parts))
        return ";".join(clauses)

    # -- decisions ------------------------------------------------------
    def trips(self) -> int:
        """Total faults injected so far (all rules, this process)."""
        with self._lock:
            return sum(self._trips)

    def _decide(self, seam: str, tag: Optional[str]) -> Optional[ChaosRule]:
        with self._lock:
            for index, rule in enumerate(self.rules):
                if rule.seam != seam:
                    continue
                if rule.tag is not None and (tag is None or rule.tag not in tag):
                    continue
                count = self._invocations[index]
                self._invocations[index] += 1
                if rule.max_trips is not None and self._trips[index] >= rule.max_trips:
                    continue
                draw = stable_unit_interval(
                    f"chaos:{self.seed}:{index}:{seam}:{count}"
                )
                if draw >= rule.rate:
                    continue
                self._trips[index] += 1
                return rule
        return None

    def trip(self, seam: str, tag: Optional[str] = None) -> None:
        """Maybe inject a fault at ``seam`` (crash raises, delay sleeps)."""
        rule = self._decide(seam, tag)
        if rule is None:
            return
        if rule.action == "crash":
            raise ChaosError(f"injected crash at seam {seam!r}" + (f" ({tag})" if tag else ""))
        if rule.action == "delay":
            time.sleep(rule.delay_s)
        # "corrupt" at a non-byte call site is a no-op by construction
        # (ChaosRule validation restricts corrupt to byte seams, whose
        # call sites use mangle()).

    def mangle(self, seam: str, data: bytes, tag: Optional[str] = None) -> bytes:
        """Byte-seam variant of :meth:`trip`: may also corrupt ``data``."""
        rule = self._decide(seam, tag)
        if rule is None:
            return data
        if rule.action == "crash":
            raise ChaosError(f"injected crash at seam {seam!r}" + (f" ({tag})" if tag else ""))
        if rule.action == "delay":
            time.sleep(rule.delay_s)
            return data
        return _corrupt_bytes(data)


def _corrupt_bytes(data: bytes) -> bytes:
    """Deterministically mangle a payload (XOR the first 64 bytes).

    Flipping the head destroys the pickle envelope's magic/schema, so
    every loader rejects the payload instead of silently accepting it.
    """
    head = bytes(b ^ 0xFF for b in data[:64])
    return head + data[64:]


# ---------------------------------------------------------------------------
# Process-global active schedule
# ---------------------------------------------------------------------------
_active: Optional[ChaosSchedule] = None
_env_checked = False
_state_lock = threading.Lock()


def activate(schedule: Optional[ChaosSchedule]) -> None:
    """Install ``schedule`` as this process's active chaos schedule."""
    global _active, _env_checked
    with _state_lock:
        _active = schedule
        _env_checked = True


def deactivate() -> None:
    """Remove any active schedule and forget the env var was ever read."""
    global _active, _env_checked
    with _state_lock:
        _active = None
        _env_checked = False


def active_schedule() -> Optional[ChaosSchedule]:
    """The process's active schedule, lazily parsed from ``WAVM3_CHAOS``."""
    global _active, _env_checked
    if _active is not None:
        return _active
    if _env_checked:
        return None
    with _state_lock:
        if not _env_checked:
            _env_checked = True
            spec = os.environ.get(CHAOS_ENV_VAR)
            if spec:
                _active = ChaosSchedule.from_spec(spec)
    return _active


def chaos_trip(seam: str, tag: Optional[str] = None) -> None:
    """Trip ``seam`` on the active schedule; no-op when chaos is off."""
    schedule = active_schedule()
    if schedule is not None:
        schedule.trip(seam, tag)


def chaos_bytes(seam: str, data: bytes, tag: Optional[str] = None) -> bytes:
    """Pass ``data`` through the active schedule's byte seam (identity
    when chaos is off)."""
    schedule = active_schedule()
    if schedule is None:
        return data
    return schedule.mangle(seam, data, tag)
