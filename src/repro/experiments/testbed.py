"""Instrumented two-host testbed builder (Table IIc).

A :class:`Testbed` bundles everything one experimental run needs: the
simulator, the homogeneous host pair with their switch, per-host Xen
instances, the toolstack, two power meters on the AC side, two dstat
monitors, and the feature recorder that stands in for the paper's network
instrumentation.  Every stochastic element draws from streams derived
from the run's master seed.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cluster.host import PhysicalHost
from repro.cluster.machines import machine_pair, switch_spec
from repro.cluster.network import NetworkPath
from repro.errors import ConfigurationError
from repro.hypervisor.migration import MigrationJob
from repro.hypervisor.toolstack import Toolstack
from repro.hypervisor.vm import VirtualMachine
from repro.hypervisor.vmm import XenHypervisor
from repro.simulator.engine import Simulator
from repro.simulator.kernels import KernelArena, resolve_compute, validate_compute
from repro.simulator.rng import RandomStreams, derive_seed
from repro.simulator.sampling import SCALAR_BLOCK_MAX, PeriodicSampler
from repro.telemetry.dstat import DstatMonitor
from repro.telemetry.powermeter import PowerMeter
from repro.telemetry.traces import SeriesTrace

__all__ = ["Testbed", "FeatureRecorder"]

#: Columns of the feature recorder (model inputs of Section IV-B).
FEATURE_COLUMNS = (
    "cpu_src_pct",
    "cpu_tgt_pct",
    "cpu_vm_pct",
    "vm_on_target",
    "bw_bps",
    "dr_pct",
)


class FeatureRecorder:
    """Samples the model features on the power meter's grid.

    The paper obtains these from dstat plus network instrumentation; here
    they are read from simulation state at the same cadence, keeping
    feature rows aligned one-to-one with meter readings.
    """

    def __init__(
        self,
        sim: Simulator,
        source: PhysicalHost,
        target: PhysicalHost,
        vm: VirtualMachine,
        period_s: float = 0.5,
        batched: bool = False,
        compute: str = "numpy",
    ) -> None:
        self.source = source
        self.target = target
        self.vm = vm
        self.trace = SeriesTrace(FEATURE_COLUMNS, label="features")
        self._job: Optional[MigrationJob] = None
        self._job_provider: Optional[Callable[[], Optional[MigrationJob]]] = None
        self._compute = resolve_compute(compute)
        self._sampler = PeriodicSampler(
            sim,
            period_s,
            self._sample,
            batched=batched,
            batch_callback=self._sample_block if batched else None,
            vectorized=batched and self._compute != "python",
        )

    def attach_job(self, job: MigrationJob) -> None:
        """Point the bandwidth column at an in-flight migration."""
        self._job = job

    def attach_job_provider(
        self, provider: Callable[[], Optional[MigrationJob]]
    ) -> None:
        """Point the bandwidth column at a migration *source*.

        Manager-driven runs do not know the migration job up front — the
        consolidation manager issues it on its own monitoring tick, in
        the middle of a simulated wait.  A provider (e.g.
        ``lambda: manager.active_job``) lets the recorder pick the job up
        at the very tick it is issued, instead of recording bandwidth 0
        until the runner's next check-grid poll notices it.
        """
        self._job_provider = provider

    def _current_job(self) -> Optional[MigrationJob]:
        if self._job is not None:
            return self._job
        if self._job_provider is not None:
            return self._job_provider()
        return None

    def start(self) -> None:
        """Begin sampling."""
        self._sampler.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._sampler.stop()

    def _sample(self, t: float) -> None:
        on_target = 1.0 if self.vm.host is self.target else 0.0
        job = self._current_job()
        bw = job.current_bandwidth_bps if job is not None else 0.0
        self.trace.append(
            t,
            cpu_src_pct=self.source.cpu_utilisation_percent(t),
            cpu_tgt_pct=self.target.cpu_utilisation_percent(t),
            cpu_vm_pct=self.vm.cpu_percent(t),
            vm_on_target=on_target,
            bw_bps=bw,
            dr_pct=self.vm.dirtying_ratio_percent(),
        )

    def _sample_block(self, times: np.ndarray) -> None:
        """Vectorized feature rows over one event-free interval.

        Placement, bandwidth and dirtying ratio are piecewise constant
        between events; the jittered CPU reads come from the hosts' and
        VM's vectorized block methods.  Bit-identical to per-tick rows.
        Short blocks loop the scalar memoised pipeline — same bits,
        less fixed numpy overhead.
        """
        on_target = 1.0 if self.vm.host is self.target else 0.0
        job = self._current_job()
        bw = job.current_bandwidth_bps if job is not None else 0.0
        dr = self.vm.dirtying_ratio_percent()
        if self._compute == "python" or times.size <= SCALAR_BLOCK_MAX:
            times_list = times.tolist()
            source_cached = self.source.cpu_utilisation_fraction_cached
            target_cached = self.target.cpu_utilisation_fraction_cached
            vm_values = self.vm.cpu_percent_values(times_list)
            n = len(times_list)
            buf_t, (b_src, b_tgt, b_vm, b_on, b_bw, b_dr), start = (
                self.trace._reserve(n, times_list[0])
            )
            for i, t in enumerate(times_list):
                j = start + i
                buf_t[j] = t
                b_src[j] = source_cached(t) * 100.0
                b_tgt[j] = target_cached(t) * 100.0
                b_vm[j] = vm_values[i]
                b_on[j] = on_target
                b_bw[j] = bw
                b_dr[j] = dr
            self.trace._commit(n)
            return
        n = times.size
        times_list = times.tolist()
        mode = self._compute
        buf_t, (b_src, b_tgt, b_vm, b_on, b_bw, b_dr), start = (
            self.trace._reserve(n, times_list[0])
        )
        end = start + n
        buf_t[start:end] = times
        b_src[start:end] = (
            self.source.attach_kernel(mode=mode).util_block(times, times_list) * 100.0
        )
        b_tgt[start:end] = (
            self.target.attach_kernel(mode=mode).util_block(times, times_list) * 100.0
        )
        b_vm[start:end] = self.vm.attach_kernel().cpu_percent_block(times, times_list)
        b_on[start:end] = on_target
        b_bw[start:end] = bw
        b_dr[start:end] = dr
        self.trace._commit(n)


class Testbed:
    """One instrumented source/target pair ready to run a migration.

    Parameters
    ----------
    family:
        Machine pair: ``"m"`` (m01–m02) or ``"o"`` (o1–o2).
    seed:
        Master seed of this run; all component streams derive from it.
    meter_period_s:
        Power-meter sampling interval (0.5 s = the PM1000+'s 2 Hz).
    telemetry:
        ``"batched"`` (default) samples all instruments through the
        vectorized interval-hook fast path; ``"events"`` keeps one heap
        event per sample.  Traces are bit-identical either way (see
        ``docs/performance.md``).
    compute:
        Kernel implementation of the batched blocks: ``"python"`` is the
        all-scalar reference, ``"numpy"`` (default) the adaptive hybrid
        with array kernels on long blocks, ``"numba"`` the hybrid with
        njit-compiled loops (silently resolved to ``"numpy"`` when numba
        is missing).  Traces are bit-identical across all modes (see
        :mod:`repro.simulator.kernels`).
    """

    def __init__(
        self,
        family: str = "m",
        seed: int = 0,
        meter_period_s: float = 0.5,
        telemetry: str = "batched",
        compute: str = "numpy",
    ) -> None:
        if telemetry not in ("batched", "events"):
            raise ConfigurationError(
                f"telemetry must be 'batched' or 'events', got {telemetry!r}"
            )
        validate_compute(compute)
        self.family = family
        self.seed = int(seed)
        self.telemetry = telemetry
        self.compute = compute
        resolved = resolve_compute(compute)
        self._compute_resolved = resolved
        batched = telemetry == "batched"
        self.streams = RandomStreams(seed)
        self.sim = Simulator()

        source_spec, target_spec = machine_pair(family)
        self.source = PhysicalHost(source_spec, noise_seed=derive_seed(seed, "host:src"))
        self.target = PhysicalHost(target_spec, noise_seed=derive_seed(seed, "host:tgt"))
        # Shared SoA arena: the host pair's kernel rows sit in one
        # structured array, and VMs created on these hosts draw their
        # rows from the same arena (VirtualMachine.attach_kernel).
        if resolved != "python":
            self.kernel_arena: Optional[KernelArena] = KernelArena()
            self.source.attach_kernel(self.kernel_arena, mode=resolved)
            self.target.attach_kernel(self.kernel_arena, mode=resolved)
        else:
            self.kernel_arena = None
        self.path = NetworkPath(
            self.source,
            self.target,
            switch_spec(family),
            jitter_seed=derive_seed(seed, "network"),
        )
        self.source_xen = XenHypervisor(self.source)
        self.target_xen = XenHypervisor(self.target)
        self.toolstack = Toolstack(
            self.sim,
            {source_spec.name: self.source_xen, target_spec.name: self.target_xen},
            self.streams.stream("migration"),
        )
        self.source_meter = PowerMeter(
            self.sim, self.source, self.streams.stream("meter:src"),
            period_s=meter_period_s, batched=batched, compute=resolved,
        )
        self.target_meter = PowerMeter(
            self.sim, self.target, self.streams.stream("meter:tgt"),
            period_s=meter_period_s, batched=batched, compute=resolved,
        )
        self.source_dstat = DstatMonitor(
            self.sim, self.source, batched=batched, compute=resolved
        )
        self.target_dstat = DstatMonitor(
            self.sim, self.target, batched=batched, compute=resolved
        )

    # ------------------------------------------------------------------
    @property
    def source_name(self) -> str:
        """Catalog name of the source machine."""
        return self.source.spec.name

    @property
    def target_name(self) -> str:
        """Catalog name of the target machine."""
        return self.target.spec.name

    def make_feature_recorder(self, vm: VirtualMachine) -> FeatureRecorder:
        """Feature recorder tracking the given migrating guest."""
        return FeatureRecorder(
            self.sim, self.source, self.target, vm,
            period_s=self.source_meter.period_s,
            batched=self.telemetry == "batched",
            compute=self._compute_resolved,
        )

    def start_instrumentation(self) -> None:
        """Start both meters and both dstat monitors."""
        self.source_meter.start()
        self.target_meter.start()
        self.source_dstat.start()
        self.target_dstat.start()

    def stop_instrumentation(self) -> None:
        """Stop both meters and both dstat monitors."""
        self.source_meter.stop()
        self.target_meter.stop()
        self.source_dstat.stop()
        self.target_dstat.stop()
