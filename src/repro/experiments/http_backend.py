"""Network campaign service: HTTP task handoff without shared storage.

The file-based queue backend (:mod:`repro.experiments.queue_backend`)
needs a directory every participant can see; this module removes even
that requirement.  The coordinator embeds a tiny stdlib HTTP service
(:class:`CampaignHTTPServer`, built on :class:`http.server.ThreadingHTTPServer`)
and remote workers need nothing but its URL:

* ``POST /claim`` — a worker asks for work; the coordinator leases the
  oldest open task and answers with its ``wavm3-taskspec/1`` JSON (the
  same spec format the spool backend writes to disk);
* ``POST /heartbeat`` — the worker renews its lease while executing;
* ``POST /result`` — the worker uploads the finished run (the
  ``wavm3-runresult/1`` pickle envelope, exactly the run-cache file
  format) or a JSON failure record; the coordinator validates the upload
  and deposits it straight into its own content-addressed
  :class:`~repro.experiments.executor.RunCache`;
* ``POST /progress`` — the worker announces a completed run (the
  ``wavm3-progress/1`` JSON document: task id, runs completed,
  samples/sec, wall time).  Strictly observational — the coordinator
  keeps a bounded per-worker history for ``/status`` and the campaign
  summary, and a malformed announcement is rejected with 400 without
  touching the task state;
* ``GET /status`` — live campaign observability (open/leased/completed/
  failed tasks, worker liveness, per-worker progress) for
  ``wavm3 campaign-status`` and its ``--follow`` mode.

:class:`HttpBackend` implements the :class:`~repro.experiments.executor.ExecutorBackend`
protocol (``submit``/``wait``/``shutdown``/``capacity``), so the central
Section V-B variance-stopping loop is untouched and campaign results are
**bit-identical** to the serial path.  Fault tolerance mirrors the queue
backend's lease semantics: a claim whose heartbeat goes stale is
requeued for another worker, a malformed result upload is rejected with
HTTP 400 and its task requeued, and worker-side failures surface
centrally as :class:`~repro.errors.ExperimentError`.

.. warning::
    Run results travel as pickles (required for bit-identity), and
    unpickling executes embedded code — bind the service to an interface
    reachable only by trusted workers (loopback, a lab LAN, an SSH
    tunnel).  The service performs no authentication.

See ``docs/parallel_campaigns.md`` ("Network campaigns") and
``docs/architecture.md`` for the design discussion.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import traceback
import urllib.error
import urllib.request
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple, Union

from repro.errors import ExperimentError
from repro.experiments.chaos import ChaosError, chaos_bytes, chaos_trip
from repro.experiments.executor import ExecutorBackend, RunCache, RunTask
from repro.experiments.faults import (
    RunFailure,
    TaskFailure,
    run_with_deadline,
    traceback_digest,
)
from repro.experiments.queue_backend import (
    STATUS_SCHEMA,
    QueueStats,
    WorkerStats,
    task_id_for,
)
from repro.experiments.results import ProgressEvent, run_sample_count
from repro.io import (
    PersistenceError,
    dump_run_batch_bytes,
    dump_run_result_bytes,
    load_run_batch_bytes,
    load_run_result_bytes,
    progress_event_from_dict,
    progress_event_to_dict,
    task_spec_from_dict,
    task_spec_to_dict,
)

__all__ = [
    "CampaignHTTPServer",
    "HttpBackend",
    "fetch_status",
    "parse_address",
    "run_http_worker",
    "STATUS_SCHEMA",
]



def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` string (or pass through a ``(host, port)`` pair).

    Parameters
    ----------
    address:
        ``"HOST:PORT"`` (port may be ``0`` for an ephemeral port) or an
        already-split ``(host, port)`` tuple.

    Returns
    -------
    tuple[str, int]
        The ``(host, port)`` pair.

    Raises
    ------
    ExperimentError
        If the string is not of the form ``HOST:PORT`` with an integer,
        non-negative port.
    """
    if isinstance(address, tuple):
        host, port = str(address[0]), int(address[1])
        sep = ":"
    else:
        host, sep, port_text = str(address).rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            port = -1
    if not sep or not host or not 0 <= port <= 65535:
        raise ExperimentError(
            f"serve address must be HOST:PORT with port 0-65535 "
            f"(e.g. 127.0.0.1:8765), got {address!r}"
        )
    return host, port


# ---------------------------------------------------------------------------
# Coordinator state
# ---------------------------------------------------------------------------
@dataclass
class _Lease:
    """One claimed task: who holds it and when they last heartbeat."""

    worker: str
    last_beat: float  # time.monotonic()


class _HttpFuture(Future):
    """A pending HTTP task; resolved by the coordinator's request handlers."""

    def __init__(self, task, task_id: str) -> None:
        super().__init__()
        self.task = task
        self.task_id = task_id
        #: The coordinator deposits the uploaded result into the cache
        #: itself, so the executor must not redundantly re-write it.
        self.result_in_cache = True


@dataclass
class _State:
    """Thread-shared coordinator bookkeeping (guard every access with ``lock``)."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Open tasks in submit (FIFO) order: task_id -> RunTask.
    open: "OrderedDict[str, RunTask]" = field(default_factory=OrderedDict)
    #: Claimed tasks: task_id -> _Lease.
    leases: dict = field(default_factory=dict)
    #: Every submitted task's future, kept for duplicate detection.
    futures: dict = field(default_factory=dict)
    #: worker_id -> monotonic instant of the last request it made.
    workers: dict = field(default_factory=dict)
    #: Chronological worker progress announcements (bounded; see
    #: ``HttpBackend.progress_history``).
    progress: list = field(default_factory=list)
    #: Task ids the coordinator quarantined after exhausting their retry
    #: budget (the HTTP analogue of the spool's ``quarantine/`` dir).
    quarantined: set = field(default_factory=set)
    completed: int = 0
    failed: int = 0
    stopping: bool = False


class CampaignHTTPServer(ThreadingHTTPServer):
    """The coordinator's embedded HTTP service (one per :class:`HttpBackend`).

    A thin :class:`~http.server.ThreadingHTTPServer` carrying the shared
    coordinator state; all protocol logic lives in the request handler.
    Exposed separately from :class:`HttpBackend` so tests (and curious
    operators) can drive the wire protocol directly.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], backend: "HttpBackend") -> None:
        self.backend = backend
        super().__init__(address, _CampaignRequestHandler)


class _CampaignRequestHandler(BaseHTTPRequestHandler):
    """The five-endpoint campaign wire protocol."""

    server: CampaignHTTPServer
    server_version = "wavm3-campaign/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        pass  # an HTTP access log per heartbeat would drown the campaign output

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Optional[dict]:
        try:
            payload = json.loads(self._read_body().decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- endpoints -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.split("?", 1)[0] == "/status":
            self._send_json(200, self.server.backend._status_document())
        else:
            self._send_json(404, {"error": f"unknown endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/claim":
            self._handle_claim()
        elif path == "/heartbeat":
            self._handle_heartbeat()
        elif path == "/result":
            self._handle_result()
        elif path == "/progress":
            self._handle_progress()
        else:
            self._send_json(404, {"error": f"unknown endpoint {self.path!r}"})

    def _handle_claim(self) -> None:
        payload = self._read_json_body()
        if payload is None or not payload.get("worker"):
            self._send_json(400, {"error": "claim body must be JSON with a 'worker' id"})
            return
        self._send_json(200, self.server.backend._claim(str(payload["worker"])))

    def _handle_heartbeat(self) -> None:
        payload = self._read_json_body()
        if payload is None or not payload.get("worker") or not payload.get("task_id"):
            self._send_json(
                400, {"error": "heartbeat body must be JSON with 'worker' and 'task_id'"}
            )
            return
        ok = self.server.backend._heartbeat(
            str(payload["worker"]), str(payload["task_id"])
        )
        self._send_json(200, {"ok": ok})

    def _handle_progress(self) -> None:
        payload = self._read_json_body()
        if payload is None:
            self._send_json(400, {"error": "progress body must be a JSON object"})
            return
        try:
            event = progress_event_from_dict(payload)
        except PersistenceError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self.server.backend._record_progress(event)
        self._send_json(200, {"ok": True})

    def _handle_result(self) -> None:
        task_id = self.headers.get("X-Wavm3-Task-Id", "")
        worker = self.headers.get("X-Wavm3-Worker", "?")
        body = self._read_body()
        content_type = (self.headers.get("Content-Type") or "").split(";", 1)[0].strip()
        backend = self.server.backend
        if content_type == "application/json":
            payload = None
            try:
                decoded = json.loads(body.decode("utf-8"))
                payload = decoded if isinstance(decoded, dict) else None
            except (json.JSONDecodeError, UnicodeDecodeError):
                pass
            if payload is None or "error" not in payload:
                self._send_json(
                    400, {"error": "failure report must be JSON with an 'error' field"}
                )
                return
            code, reply = backend._record_failure(
                task_id, worker,
                str(payload.get("error")), payload.get("traceback"),
                kind=payload.get("kind"),
                retryable=bool(payload.get("retryable", True)),
            )
        else:
            code, reply = backend._record_result(task_id, worker, body)
        self._send_json(code, reply)


# ---------------------------------------------------------------------------
# Coordinator backend
# ---------------------------------------------------------------------------
class HttpBackend(ExecutorBackend):
    """Coordinator end of the HTTP task-handoff campaign service.

    Construction binds and starts the embedded :class:`CampaignHTTPServer`
    immediately (in a daemon thread), so workers can connect before the
    first ``submit()``.

    Parameters
    ----------
    address:
        ``HOST:PORT`` string or ``(host, port)`` pair to bind; port ``0``
        selects an ephemeral port (read it back from :attr:`address`).
    cache:
        The coordinator's :class:`~repro.experiments.executor.RunCache`;
        validated worker uploads are deposited here, and the executor's
        usual cache lookup makes warm reruns perform zero runs.
    stale_timeout:
        Seconds without a heartbeat before a lease is considered
        abandoned and its task requeued.  Must comfortably exceed the
        workers' heartbeat cadence.
    stop_workers_on_shutdown:
        Answer subsequent ``/claim`` requests with ``{"stop": true}``
        once the campaign finishes, telling workers to exit, and keep
        serving for up to ``stop_grace_s`` so they can hear it.
    worker_fresh_s:
        A worker whose last request is younger than this counts as live
        for :attr:`capacity` and ``/status``.
    stop_grace_s:
        How long :meth:`shutdown` keeps the service up waiting for live
        workers to poll in and receive the stop signal.
    max_requeues:
        Stale-lease requeue budget per task: after a task's lease expires
        this many times its future fails with a non-retryable
        :class:`~repro.experiments.faults.TaskFailure` instead of being
        requeued forever.  ``None`` (the default) keeps the legacy
        unbounded behaviour.

    Raises
    ------
    ExperimentError
        On a malformed address, non-positive ``stale_timeout``, negative
        ``max_requeues``, or if the address cannot be bound.
    """

    name = "http"

    #: Bound on the retained ``/progress`` history: a campaign announces
    #: one event per run, so this comfortably covers real campaigns while
    #: keeping a misbehaving worker from growing coordinator memory.
    progress_history = 4096

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        cache: RunCache,
        stale_timeout: float = 60.0,
        stop_workers_on_shutdown: bool = False,
        worker_fresh_s: float = 15.0,
        stop_grace_s: float = 10.0,
        max_requeues: Optional[int] = None,
    ) -> None:
        if stale_timeout <= 0:
            raise ExperimentError(f"stale_timeout must be positive, got {stale_timeout}")
        if max_requeues is not None and max_requeues < 0:
            raise ExperimentError(f"max_requeues must be >= 0, got {max_requeues}")
        self.cache = cache
        self.stale_timeout = float(stale_timeout)
        self.max_requeues = max_requeues
        self._requeue_counts: dict = {}
        self.stop_workers_on_shutdown = bool(stop_workers_on_shutdown)
        self.worker_fresh_s = float(worker_fresh_s)
        self.stop_grace_s = float(stop_grace_s)
        self.stats = QueueStats()
        self._state = _State()
        host, port = parse_address(address)
        try:
            self._server = CampaignHTTPServer((host, port), self)
        except OSError as exc:
            raise ExperimentError(f"cannot bind campaign service to {host}:{port}: {exc}") from exc
        self._thread = threading.Thread(
            # serve_forever's default 0.5 s poll makes every coordinator
            # shutdown stall half a second; 50 ms is still negligible load.
            target=lambda: self._server.serve_forever(poll_interval=0.05),
            name="wavm3-campaign-http",
            daemon=True,
        )
        self._thread.start()

    # -- introspection ---------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound ``(host, port)`` (resolves port ``0``)."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        """The service URL workers should ``--connect`` to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def active_workers(self) -> int:
        """Workers whose last request is fresher than ``worker_fresh_s``."""
        now = time.monotonic()
        with self._state.lock:
            return sum(
                1 for seen in self._state.workers.values()
                if now - seen <= self.worker_fresh_s
            )

    @property
    def capacity(self) -> Optional[int]:
        """Live worker count, or ``None`` while no worker has polled yet."""
        return self.active_workers() or None

    # -- ExecutorBackend protocol ----------------------------------------
    def submit(self, task) -> Future:
        """Queue one task (single run or batch) for remote execution.

        Parameters
        ----------
        task:
            The :class:`~repro.experiments.executor.RunTask` or
            :class:`~repro.experiments.executor.RunBatchTask` to execute;
            must carry its cache ``key`` (the HTTP backend always runs
            with a coordinator-side cache).

        Returns
        -------
        Future
            Resolved by the service threads when a worker uploads the
            run (or its failure record).

        Raises
        ------
        ExperimentError
            If the task has no cache key.
        """
        task_id = task_id_for(task)
        future = _HttpFuture(task, task_id)
        with self._state.lock:
            self._state.open[task_id] = task
            self._state.futures[task_id] = future
            # A resubmit (executor-driven retry) starts a fresh stale-lease
            # budget for the task.
            self._requeue_counts.pop(task_id, None)
            self.stats.tasks_submitted += 1
        return future

    def shutdown(self) -> None:
        """Stop the embedded service (after the stop-signal grace dance)."""
        if self.stop_workers_on_shutdown:
            with self._state.lock:
                self._state.stopping = True
            deadline = time.monotonic() + self.stop_grace_s
            # Each live worker that polls /claim while stopping is told to
            # exit and dropped from the registry; wait for the registry to
            # drain so CLI workers exit cleanly instead of seeing ECONNREFUSED.
            while time.monotonic() < deadline and self.active_workers() > 0:
                time.sleep(0.05)
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def quarantine(self, task, task_id: str) -> bool:
        """Retire a task whose retry budget is exhausted.

        The HTTP analogue of the spool's ``quarantine/`` directory: the
        task id joins the coordinator's quarantine set (surfaced via
        ``GET /status``) and leaves the open/lease bookkeeping for good.
        """
        with self._state.lock:
            self._state.open.pop(task_id, None)
            self._state.leases.pop(task_id, None)
            self._state.quarantined.add(task_id)
            self.stats.tasks_quarantined += 1
        return True

    # -- handler entry points (called from service threads) ---------------
    def _requeue_stale_locked(self) -> None:
        """Requeue leases whose heartbeat expired.  Caller holds the lock.

        A ``max_requeues`` budget bounds the requeues per task: once
        exhausted, the future fails with a non-retryable
        :class:`TaskFailure` (fate decided by the coordinator's
        ``on_failure`` policy) instead of cycling through dead workers
        forever.
        """
        now = time.monotonic()
        expired = [
            (task_id, lease)
            for task_id, lease in self._state.leases.items()
            if now - lease.last_beat > self.stale_timeout
        ]
        for task_id, lease in expired:
            self._state.leases.pop(task_id)
            future = self._state.futures.get(task_id)
            if future is None or future.done():
                continue
            spent = self._requeue_counts.get(task_id, 0)
            if self.max_requeues is not None and spent >= self.max_requeues:
                self.stats.leases_failed += 1
                self._state.failed += 1
                task = future.task
                indices = tuple(
                    task.run_indices
                    if getattr(task, "run_count", None) is not None
                    else (task.run_index,)
                )
                failure = RunFailure(
                    task_id=task_id,
                    scenario=task.scenario.label,
                    run_indices=indices,
                    attempt=1,  # placeholder; the coordinator tracks attempts
                    worker=lease.worker,
                    kind="StaleLease",
                    message=(
                        f"lease expired {spent + 1} times "
                        f"(stale-requeue budget {self.max_requeues} exhausted)"
                    ),
                    at=time.time(),
                )
                future.set_exception(
                    TaskFailure(
                        f"http task {task_id} failed on {lease.worker}: "
                        f"{failure.message}",
                        failure=failure,
                        retryable=False,
                    )
                )
                continue
            self._requeue_counts[task_id] = spent + 1
            self._state.open[task_id] = future.task
            self.stats.tasks_requeued += 1

    def _claim(self, worker: str) -> dict:
        with self._state.lock:
            if self._state.stopping:
                self._state.workers.pop(worker, None)
                return {"task_id": None, "stop": True}
            self._state.workers[worker] = time.monotonic()
            self._requeue_stale_locked()
            while self._state.open:
                task_id, task = self._state.open.popitem(last=False)
                future = self._state.futures.get(task_id)
                if future is not None and future.done():
                    continue  # resolved by a late upload while requeued
                self._state.leases[task_id] = _Lease(worker, time.monotonic())
                return {
                    "task_id": task_id,
                    "stop": False,
                    "lease_timeout_s": self.stale_timeout,
                    "spec": task_spec_to_dict(task),
                }
            return {"task_id": None, "stop": False}

    def _record_progress(self, event: ProgressEvent) -> None:
        """Store one worker progress announcement (service-thread entry)."""
        with self._state.lock:
            self._state.workers[event.worker] = time.monotonic()
            self._state.progress.append(event)
            if len(self._state.progress) > self.progress_history:
                del self._state.progress[: -self.progress_history]

    def drain_progress(self) -> list:
        """The ``/progress`` announcements received this campaign.

        A stale-requeued task re-executed by a second worker announces
        twice; only the latest announcement per task survives, so the
        campaign summary counts each run exactly once.  (``/status``
        keeps the raw per-worker view — its ``progress_events`` is an
        event count, not a run count.)
        """
        with self._state.lock:
            events = list(self._state.progress)
        latest = {e.task_id: e for e in events}
        return sorted(latest.values(), key=lambda e: e.at)

    def _heartbeat(self, worker: str, task_id: str) -> bool:
        with self._state.lock:
            if self._state.stopping:
                return False
            self._state.workers[worker] = time.monotonic()
            lease = self._state.leases.get(task_id)
            if lease is None or lease.worker != worker:
                return False  # lease lost (requeued as stale) — worker should note it
            lease.last_beat = time.monotonic()
            return True

    def _release_for_retry(self, task_id: str) -> None:
        """Drop a lease and put the task back in the open queue (lock held)."""
        self._state.leases.pop(task_id, None)
        future = self._state.futures.get(task_id)
        if (
            future is not None
            and not future.done()
            and task_id not in self._state.open
        ):
            self._state.open[task_id] = future.task

    def _holds_lease(self, task_id: str, worker: str) -> bool:
        """Whether ``worker`` is the current lease holder (lock held)."""
        lease = self._state.leases.get(task_id)
        return lease is not None and lease.worker == worker

    def _record_result(self, task_id: str, worker: str, body: bytes) -> Tuple[int, dict]:
        with self._state.lock:
            self._state.workers[worker] = time.monotonic()
            future = self._state.futures.get(task_id)
        if future is None:
            return 404, {"error": f"unknown task {task_id!r}"}
        task = future.task
        is_batch = getattr(task, "run_count", None) is not None
        try:
            if is_batch:
                runs = load_run_batch_bytes(
                    body, origin=f"batch upload from {worker}"
                )
                expected = list(task.run_indices)
                if [r.run_index for r in runs] != expected or any(
                    r.scenario != task.scenario for r in runs
                ):
                    raise PersistenceError(
                        f"uploaded batch does not cover "
                        f"{task.scenario.label!r}#{task.run_start}"
                        f"..{task.run_start + task.run_count - 1}"
                    )
            else:
                run = load_run_result_bytes(body, origin=f"result upload from {worker}")
                if run.scenario != task.scenario or run.run_index != task.run_index:
                    raise PersistenceError(
                        f"uploaded run is for {run.scenario.label!r}#{run.run_index}, "
                        f"task is {task.scenario.label!r}#{task.run_index}"
                    )
                runs = [run]
        except PersistenceError as exc:
            with self._state.lock:
                self.stats.corrupt_results += 1
                # Only the lease holder's garbage re-opens the task; a
                # zombie that already lost its lease must not evict the
                # live holder (or re-open a task another worker is on).
                if self._holds_lease(task_id, worker):
                    self._release_for_retry(task_id)
            return 400, {"error": str(exc)}
        # A *valid* upload is accepted from anyone holding the right
        # bytes — runs are deterministic, so a worker that lost its lease
        # merely delivers the identical result early.
        # File I/O outside the lock; RunCache writes are atomic.
        for run in runs:
            self.cache.put(task.key, run, key_payload=task.key_payload())
        with self._state.lock:
            if self._holds_lease(task_id, worker):
                self._state.leases.pop(task_id, None)
            # The task may have been stale-requeued before this upload
            # arrived: completing it must also retire the queue entry.
            self._state.open.pop(task_id, None)
            if future.done():
                return 200, {"ok": True, "duplicate": True}
            self._state.completed += 1
            future.worker = worker  # executor-side progress attribution
            future.set_result(runs if is_batch else runs[0])
        return 200, {"ok": True}

    def _record_failure(
        self, task_id: str, worker: str, error: str, trace: Optional[str],
        kind: Optional[str] = None, retryable: bool = True,
    ) -> Tuple[int, dict]:
        with self._state.lock:
            self._state.workers[worker] = time.monotonic()
            future = self._state.futures.get(task_id)
            if future is None:
                return 404, {"error": f"unknown task {task_id!r}"}
            if future.done():
                return 200, {"ok": True, "duplicate": True}
            if not self._holds_lease(task_id, worker):
                # A worker that lost its lease reporting failure must not
                # abort a campaign whose task was requeued to (or is being
                # re-executed by) someone else.
                return 200, {"ok": True, "ignored": True}
            self._state.leases.pop(task_id, None)
            self._state.open.pop(task_id, None)
            self._state.failed += 1
            message = f"http task {task_id} failed on {worker}: {error}"
            if trace:
                message = f"{message}\n{trace}"
            task = future.task
            indices = tuple(
                task.run_indices
                if getattr(task, "run_count", None) is not None
                else (task.run_index,)
            )
            failure = RunFailure(
                task_id=task_id,
                scenario=task.scenario.label,
                run_indices=indices,
                attempt=1,  # placeholder; the coordinator tracks attempts
                worker=worker,
                kind=kind or "WorkerFailure",
                message=error,
                traceback_digest=traceback_digest(trace),
                at=time.time(),
            )
            future.set_exception(
                TaskFailure(message, failure=failure, retryable=bool(retryable))
            )
        return 200, {"ok": True}

    def _status_document(self) -> dict:
        """Assemble the ``/status`` reply.  Strictly read-only: probing a
        campaign must not requeue leases or otherwise disturb it (the
        stale-lease sweep runs on ``/claim``, where a worker is present
        to pick the requeued task up)."""
        now = time.monotonic()
        wall_now = time.time()
        with self._state.lock:
            stale = sum(
                1 for lease in self._state.leases.values()
                if now - lease.last_beat > self.stale_timeout
            )
            workers = [
                {
                    "worker": worker,
                    "age_s": round(now - seen, 3),
                    "live": now - seen <= self.worker_fresh_s,
                }
                for worker, seen in sorted(self._state.workers.items())
            ]
            latest: dict = {}
            for event in self._state.progress:
                latest[event.worker] = event
            progress = [
                {
                    "worker": event.worker,
                    "runs_completed": event.runs_completed,
                    "samples_per_s": round(event.samples_per_s, 1),
                    "last_task": f"{event.scenario}#{event.run_index}",
                    "age_s": round(max(wall_now - event.at, 0.0), 3),
                }
                for event in sorted(latest.values(), key=lambda e: e.worker)
            ]
            progress_events = len(self._state.progress)
            return {
                "schema": STATUS_SCHEMA,
                "backend": self.name,
                "tasks_open": len(self._state.open),
                "tasks_leased": len(self._state.leases),
                "leases_stale": stale,
                "tasks_completed": self._state.completed,
                "tasks_failed": self._state.failed,
                "tasks_quarantined": len(self._state.quarantined),
                "quarantined": sorted(self._state.quarantined),
                "tasks_submitted": self.stats.tasks_submitted,
                "tasks_requeued": self.stats.tasks_requeued,
                "corrupt_results": self.stats.corrupt_results,
                "workers": workers,
                "workers_live": sum(1 for w in workers if w["live"]),
                "progress": progress,
                "progress_events": progress_events,
                "cache": self.cache.counters(),
                "stopping": self._state.stopping,
            }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def _request(
    url: str,
    path: str,
    data: Optional[bytes] = None,
    headers: Optional[dict] = None,
    timeout: float = 10.0,
) -> dict:
    """One HTTP exchange with the coordinator, JSON reply decoded.

    Raises :class:`urllib.error.URLError` when the coordinator is
    unreachable, and :class:`urllib.error.HTTPError` (a ``URLError``
    subclass) on any non-2xx status — callers that treat a 4xx as a
    protocol signal (e.g. a rejected result upload) must catch it.
    """
    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=data,
        headers=headers or {},
        method="GET" if data is None else "POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _post_json(url: str, path: str, payload: dict, timeout: float = 10.0) -> dict:
    return _request(
        url,
        path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        timeout=timeout,
    )


def fetch_status(url: str, timeout: float = 10.0) -> dict:
    """Fetch a campaign service's ``/status`` document.

    Parameters
    ----------
    url:
        The coordinator's base URL (``http://host:port``).
    timeout:
        Socket timeout in seconds.

    Returns
    -------
    dict
        The ``wavm3-campaign-status/1`` JSON document.

    Raises
    ------
    ExperimentError
        If the coordinator is unreachable or answers with something
        other than a status document.
    """
    try:
        payload = _request(url, "/status", timeout=timeout)
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot fetch campaign status from {url}: {exc}") from exc
    if payload.get("schema") != STATUS_SCHEMA:
        raise ExperimentError(
            f"{url}/status is not a campaign service "
            f"(schema {payload.get('schema')!r}, want {STATUS_SCHEMA!r})"
        )
    return payload


class _HttpHeartbeat(threading.Thread):
    """Renews one lease over HTTP while the worker executes its task."""

    def __init__(
        self, url: str, worker: str, task_id: str, interval_s: float,
        timeout: float = 10.0,
    ) -> None:
        super().__init__(daemon=True)
        self._url = url
        self._worker = worker
        self._task_id = task_id
        self._interval_s = interval_s
        self._timeout = timeout
        self._stopped = threading.Event()

    def run(self) -> None:
        while not self._stopped.wait(self._interval_s):
            try:
                chaos_trip("heartbeat", tag=self._task_id)
                reply = _post_json(
                    self._url, "/heartbeat",
                    {"worker": self._worker, "task_id": self._task_id},
                    timeout=self._timeout,
                )
            except ChaosError:
                return  # injected beat loss: the lease goes stale server-side
            except (urllib.error.URLError, OSError):
                continue  # transient outage: keep executing, retry next tick
            if not reply.get("ok"):
                return  # lease lost (stale-requeued): stop renewing; the
                #         eventual duplicate upload is harmless

    def stop(self) -> None:
        self._stopped.set()
        self.join(timeout=self._interval_s + 1.0)


def _upload_result(
    url: str, worker: str, task_id: str, payload: bytes,
    timeout: float = 10.0,
) -> None:
    """POST a finished result envelope (run or batch pickle bytes); an
    HTTP 400 (rejected upload) raises."""
    _request(
        url,
        "/result",
        # The result-upload byte seam: chaos may corrupt the envelope so
        # the coordinator's validation path (reject + requeue) is
        # exercised end-to-end.
        data=chaos_bytes("result-upload", payload, tag=task_id),
        headers={
            "Content-Type": "application/octet-stream",
            "X-Wavm3-Task-Id": task_id,
            "X-Wavm3-Worker": worker,
        },
        timeout=timeout,
    )


def _upload_failure(
    url: str, worker: str, task_id: str, error: str, trace: str,
    kind: Optional[str] = None, retryable: bool = True,
    timeout: float = 10.0,
) -> None:
    try:
        _request(
            url,
            "/result",
            data=json.dumps(
                {
                    "error": error,
                    "traceback": trace,
                    "kind": kind,
                    "retryable": bool(retryable),
                }
            ).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "X-Wavm3-Task-Id": task_id,
                "X-Wavm3-Worker": worker,
            },
            timeout=timeout,
        )
    except (urllib.error.URLError, OSError):
        pass  # the lease will go stale and the coordinator requeues the task


def run_http_worker(
    url: str,
    poll_interval: float = 0.5,
    heartbeat_s: float = 5.0,
    max_tasks: Optional[int] = None,
    idle_exit_s: Optional[float] = None,
    worker_id: Optional[str] = None,
    verify_keys: bool = True,
    offline_grace_s: float = 30.0,
    run_timeout: Optional[float] = None,
    http_timeout: float = 10.0,
) -> WorkerStats:
    """Serve a campaign service until stopped: claim, execute, upload.

    The HTTP twin of :func:`repro.experiments.queue_backend.run_worker`
    (CLI: ``wavm3 campaign-worker --connect URL``).  The worker needs no
    shared filesystem and no local cache — it polls ``/claim``, executes
    each leased task through the same pure code path every backend uses,
    heartbeats the lease from a daemon thread, and uploads the result
    (or a failure record) to ``/result``.

    Parameters
    ----------
    url:
        The coordinator's base URL (``http://host:port``).
    poll_interval:
        Base sleep between ``/claim`` polls while no work is available;
        consecutive empty polls — and consecutive connection failures —
        back off exponentially (capped near ``heartbeat_s``) so an idle
        fleet or a coordinator outage does not turn into a request storm.
    heartbeat_s:
        Lease-renewal cadence; must stay well under the coordinator's
        ``stale_timeout``.
    max_tasks:
        Exit after claiming this many tasks (``None`` = unbounded).
    idle_exit_s:
        Exit after this long without claimable work (``None`` = serve
        until the coordinator says stop or goes away).
    worker_id:
        Service-unique identifier; defaults to ``<hostname>-<pid>``.
    verify_keys:
        Recompute each spec's cache key and refuse mismatching specs
        (defence against a corrupted or tampered coordinator queue).
    offline_grace_s:
        Exit (successfully) after this long of consecutive connection
        failures — the coordinator finished and went away.
    run_timeout:
        Watchdog deadline per run, in seconds: a claimed batch may take
        at most ``run_timeout * len(batch)`` of wall clock before the
        worker abandons it with a failure upload instead of hanging the
        lease forever.  ``None`` disables the watchdog.
    http_timeout:
        Socket timeout (seconds) for every exchange with the coordinator
        (claims, heartbeats, uploads); must be positive.

    Returns
    -------
    WorkerStats
        What this worker claimed, executed and failed (``cached`` stays
        0: the cache lives with the coordinator).

    Raises
    ------
    ExperimentError
        If ``url`` does not answer like a campaign service on first
        contact (unreachable coordinators *later* trigger the
        ``offline_grace_s`` exit instead).
    """
    if http_timeout <= 0:
        raise ExperimentError(f"http_timeout must be positive, got {http_timeout}")
    wid = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    stats = WorkerStats()
    fetch_status(url, timeout=http_timeout)  # fail fast on a wrong URL
    idle_since = time.monotonic()
    offline_since: Optional[float] = None
    backoff_steps = 0
    # Empty polls and outage retries back off exponentially, capped so the
    # worker still hears a stop signal within a heartbeat-ish window.
    backoff_cap = max(poll_interval, min(poll_interval * 16.0, heartbeat_s))

    def _nap() -> None:
        nonlocal backoff_steps
        time.sleep(min(poll_interval * (2.0 ** backoff_steps), backoff_cap))
        backoff_steps = min(backoff_steps + 1, 16)  # 2**16 already clears any cap

    while True:
        if max_tasks is not None and stats.claimed >= max_tasks:
            break
        try:
            chaos_trip("claim", tag=wid)
            reply = _post_json(url, "/claim", {"worker": wid}, timeout=http_timeout)
        except ChaosError:
            _nap()  # injected claim loss: retry on the next poll
            continue
        except (urllib.error.URLError, OSError):
            now = time.monotonic()
            if offline_since is None:
                offline_since = now
            if now - offline_since >= offline_grace_s:
                break  # coordinator gone: campaign over
            _nap()
            continue
        offline_since = None
        if reply.get("stop"):
            break
        task_id = reply.get("task_id")
        if task_id is None:
            if idle_exit_s is not None and time.monotonic() - idle_since >= idle_exit_s:
                break
            _nap()
            continue
        backoff_steps = 0
        stats.claimed += 1
        _process_http_claim(
            url, wid, str(task_id), reply, heartbeat_s, verify_keys, stats,
            run_timeout=run_timeout, http_timeout=http_timeout,
        )
        # Execution time must not count as idle time.
        idle_since = time.monotonic()
    return stats


def _process_http_claim(
    url: str,
    worker_id: str,
    task_id: str,
    reply: dict,
    heartbeat_s: float,
    verify_keys: bool,
    stats: WorkerStats,
    run_timeout: Optional[float] = None,
    http_timeout: float = 10.0,
) -> None:
    try:
        task = task_spec_from_dict(reply.get("spec") or {})
        if verify_keys:
            expected = RunCache.scenario_key(
                task.seed, task.scenario, task.settings,
                task.migration_config, task.stabilization,
            )
            if task.key != expected:
                raise PersistenceError(
                    f"embedded cache key {task.key!r} does not match the spec"
                )
    except PersistenceError as exc:
        _upload_failure(
            url, worker_id, task_id, str(exc), "",
            kind=type(exc).__name__, timeout=http_timeout,
        )
        stats.failed += 1
        return

    is_batch = getattr(task, "run_count", None) is not None
    done_in_claim = 0

    def _announce(run) -> None:
        """Announce one finished run *before* the result upload: the
        coordinator drains its /progress history the moment the final
        /result resolves the campaign, and the announcement for every
        run must already be there.  Each run announces under its own
        per-run id (equal to the claim's task id for single-run tasks),
        so batching is invisible to the stream.  (A subsequently
        rejected upload leaves surplus announcements in the
        observational stream — harmless by design.)"""
        nonlocal done_in_claim, mark
        wall = max(time.perf_counter() - mark, 1e-9)
        mark = time.perf_counter()
        done_in_claim += 1
        samples = run_sample_count(run)
        event = ProgressEvent(
            task_id=f"{task.key[:16]}-{run.run_index:04d}" if task.key else task_id,
            scenario=task.scenario.label,
            run_index=run.run_index,
            worker=worker_id,
            runs_completed=stats.executed + stats.cached + done_in_claim,
            samples=samples,
            wall_s=wall,
            samples_per_s=samples / wall,
            at=time.time(),
        )
        try:
            chaos_trip("publish", tag=task.scenario.label)
            _post_json(
                url, "/progress", progress_event_to_dict(event),
                timeout=http_timeout,
            )
        except (urllib.error.URLError, OSError, ChaosError):
            pass  # progress is observational: never fail the task over it

    heartbeat = _HttpHeartbeat(url, worker_id, task_id, heartbeat_s, timeout=http_timeout)
    heartbeat.start()
    mark = time.perf_counter()
    run_count = int(getattr(task, "run_count", 1) or 1)
    deadline = None if run_timeout is None else run_timeout * run_count

    def _execute() -> bytes:
        if is_batch:
            # One runner instance serves the whole seed wave; runs are
            # announced as they finish and uploaded as one envelope.
            return dump_run_batch_bytes(task.execute(on_run=_announce))
        run = task.execute()
        _announce(run)
        return dump_run_result_bytes(run)

    try:
        payload = run_with_deadline(
            _execute, deadline, label=f"task {task_id} ({run_count} runs)"
        )
    except Exception as exc:  # noqa: BLE001 - any failure must reach the coordinator
        _upload_failure(
            url, worker_id, task_id,
            f"{type(exc).__name__}: {exc}", traceback.format_exc(),
            kind=type(exc).__name__, timeout=http_timeout,
        )
        stats.failed += 1
        return
    finally:
        heartbeat.stop()
    try:
        _upload_result(url, worker_id, task_id, payload, timeout=http_timeout)
        stats.executed += done_in_claim
    except urllib.error.HTTPError as exc:
        # The coordinator rejected the upload (it validates schema,
        # scenario and run indices): record the failure locally; the task
        # was already requeued server-side.
        stats.failed += 1
        exc.close()
    except (urllib.error.URLError, OSError):
        stats.failed += 1  # coordinator unreachable; lease will go stale
