"""The VM instance catalog of Table IIb.

=============  ======  =======  ==========  =========
instance       vCPUs   RAM      workload    storage
=============  ======  =======  ==========  =========
load-cpu       4       512 MB   matrixmult  1 GB
migrating-cpu  4       4 GB     matrixmult  6 GB
migrating-mem  1       4 GB     pagedirtier 6 GB
dom-0          1       512 MB   VMM         115 GB
=============  ======  =======  ==========  =========

``load-cpu`` instances generate host load in 4-vCPU steps ("as many CPUs
… as needed to increase the load by 25 % increments" on the 32-thread
m-pair, counting the migrating VM); ``migrating-*`` are the guests that
get migrated.  dom-0 is not instantiated as a guest — its footprint is
part of :class:`~repro.hypervisor.vmm.XenHypervisor` — but it is kept in
the catalog so Table IIb can be rendered in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.hypervisor.vm import VirtualMachine
from repro.workloads import MatrixMultWorkload, PageDirtierWorkload, Workload

__all__ = ["InstanceSpec", "INSTANCE_CATALOG", "make_instance_vm"]


@dataclass(frozen=True)
class InstanceSpec:
    """One row of Table IIb."""

    instance_id: str
    vcpus: int
    ram_mb: int
    workload_name: str
    storage_gb: int
    linux_kernel: str


INSTANCE_CATALOG: dict[str, InstanceSpec] = {
    "load-cpu": InstanceSpec("load-cpu", 4, 512, "matrixmult", 1, "2.6.32"),
    "migrating-cpu": InstanceSpec("migrating-cpu", 4, 4096, "matrixmult", 6, "2.6.32"),
    "migrating-mem": InstanceSpec("migrating-mem", 1, 4096, "pagedirtier", 6, "2.6.32"),
    "dom-0": InstanceSpec("dom-0", 1, 512, "VMM", 115, "3.11.4"),
}


def _build_workload(spec: InstanceSpec, dirty_percent: Optional[float]) -> Workload:
    if spec.workload_name == "matrixmult":
        return MatrixMultWorkload(vm_ram_mb=spec.ram_mb)
    if spec.workload_name == "pagedirtier":
        if dirty_percent is None:
            raise ConfigurationError(
                "migrating-mem instances need a dirty_percent (Table IIa sweep)"
            )
        return PageDirtierWorkload(dirty_percent=dirty_percent, vm_ram_mb=spec.ram_mb)
    raise ConfigurationError(
        f"instance {spec.instance_id!r} is not directly instantiable"
    )


def make_instance_vm(
    instance_id: str,
    name: str,
    dirty_percent: Optional[float] = None,
    noise_seed: int = 0,
) -> VirtualMachine:
    """Instantiate a guest from the Table IIb catalog.

    Parameters
    ----------
    instance_id:
        ``load-cpu``, ``migrating-cpu`` or ``migrating-mem``.
    name:
        Domain name for the new guest.
    dirty_percent:
        MEMLOAD sweep value; required for ``migrating-mem``, rejected
        otherwise.
    noise_seed:
        Seed of the guest's deterministic CPU-feature jitter.
    """
    try:
        spec = INSTANCE_CATALOG[instance_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown instance {instance_id!r}; catalog has {sorted(INSTANCE_CATALOG)}"
        ) from None
    if spec.workload_name != "pagedirtier" and dirty_percent is not None:
        raise ConfigurationError(
            f"dirty_percent only applies to migrating-mem, not {instance_id!r}"
        )
    workload = _build_workload(spec, dirty_percent)
    return VirtualMachine(
        name=name,
        vcpus=spec.vcpus,
        ram_mb=spec.ram_mb,
        workload=workload,
        instance_type=spec.instance_id,
        noise_seed=noise_seed,
    )
