"""The experiment families of Table IIa, expanded into scenarios.

================  =================  ==============  ===================
experiment        source host        target host     migrating VM
================  =================  ==============  ===================
CPULOAD-SOURCE    [0–100] % CPU      idle            migrating-cpu
CPULOAD-TARGET    migrating VM only  [0–100] % CPU   migrating-cpu
MEMLOAD-VM        idle               idle            migrating-mem 5–95 %
MEMLOAD-SOURCE    [0–100] % CPU      idle            migrating-mem 95 %
MEMLOAD-TARGET    migrating-mem src  [0–100] % CPU   migrating-mem 95 %
================  =================  ==============  ===================

Host CPU load is generated with ``load-cpu`` instances; the paper's load
levels map to **0, 1, 3, 5, 7 and 8** load VMs (the figures' legend):
with the 4-vCPU migrating VM included, 32 threads make those 12.5 / 25 /
50 / 75 / 100 / 112.5 % utilisation — the last one multiplexed.  CPULOAD
runs both migration kinds; MEMLOAD runs live only, "since non-live
migrations have DR(v,t) = 0" (Section V-A2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from repro.errors import ConfigurationError

__all__ = [
    "LOAD_VM_COUNTS",
    "DIRTY_PERCENTS",
    "MigrationScenario",
    "cpuload_source_scenarios",
    "cpuload_target_scenarios",
    "memload_vm_scenarios",
    "memload_source_scenarios",
    "memload_target_scenarios",
    "consolidation_scenarios",
    "all_scenarios",
]

#: Load-VM counts of the figures' legends (0 … 8 with 8 = multiplexing).
LOAD_VM_COUNTS: tuple[int, ...] = (0, 1, 3, 5, 7, 8)

#: Dirty-percent sweep of Fig. 5.
DIRTY_PERCENTS: tuple[float, ...] = (5.0, 15.0, 35.0, 55.0, 75.0, 95.0)


@dataclass(frozen=True)
class MigrationScenario:
    """One concrete migration configuration to run and measure.

    Parameters
    ----------
    experiment:
        Family name (``CPULOAD-SOURCE`` … ``MEMLOAD-TARGET``).
    label:
        Unique human-readable identifier (used in splits and reports).
    live:
        Migration kind.
    load_vm_count:
        Number of ``load-cpu`` guests generating background load.
    load_on:
        Which host carries the background load.
    dirty_percent:
        MEMLOAD dirty ratio; ``None`` selects the ``migrating-cpu``
        instance, a value selects ``migrating-mem``.
    family:
        Machine pair (``"m"`` → m01–m02, ``"o"`` → o1–o2).
    driver:
        Who issues the migration.  ``"scripted"`` (the Table IIa default)
        has the runner call the toolstack directly after stabilisation;
        ``"manager"`` starts a consolidation manager that detects the
        underloaded source host and drains the migrating guest through
        the energy-aware policy — the paper's closing use case measured
        under the full Section V-B protocol.  Manager scenarios place any
        background load on the *target* (load on the source would mask
        the underload the manager is meant to detect).
    """

    experiment: str
    label: str
    live: bool
    load_vm_count: int = 0
    load_on: Literal["source", "target"] = "source"
    dirty_percent: Optional[float] = None
    family: str = "m"
    driver: Literal["scripted", "manager"] = "scripted"

    def __post_init__(self) -> None:
        if self.load_vm_count < 0:
            raise ConfigurationError("load_vm_count must be non-negative")
        if self.load_on not in ("source", "target"):
            raise ConfigurationError(f"load_on must be source/target, got {self.load_on!r}")
        if self.dirty_percent is not None and not 0 <= self.dirty_percent <= 100:
            raise ConfigurationError("dirty_percent must be in [0, 100]")
        if self.family not in ("m", "o"):
            raise ConfigurationError(f"family must be 'm' or 'o', got {self.family!r}")
        if self.dirty_percent is not None and not self.live:
            raise ConfigurationError(
                "MEMLOAD scenarios are live-only (non-live has DR = 0)"
            )
        if self.driver not in ("scripted", "manager"):
            raise ConfigurationError(
                f"driver must be 'scripted' or 'manager', got {self.driver!r}"
            )
        if self.driver == "manager" and self.load_vm_count > 0 and self.load_on != "target":
            raise ConfigurationError(
                "manager-driven scenarios must carry background load on the "
                "target (load on the source masks the underload being drained)"
            )

    @property
    def migrating_instance(self) -> str:
        """Instance type of the migrating guest (Table IIb)."""
        return "migrating-cpu" if self.dirty_percent is None else "migrating-mem"

    @property
    def kind_name(self) -> str:
        """``live`` / ``non-live`` for reports."""
        return "live" if self.live else "non-live"


def _kinds(live: Optional[bool]) -> tuple[bool, ...]:
    if live is None:
        return (False, True)
    return (bool(live),)


def cpuload_source_scenarios(
    family: str = "m", live: Optional[bool] = None
) -> list[MigrationScenario]:
    """CPULOAD-SOURCE: sweep source load, idle target, migrating-cpu VM."""
    return [
        MigrationScenario(
            experiment="CPULOAD-SOURCE",
            label=f"cpuload-source/{'live' if k else 'nonlive'}/{n}vm/{family}",
            live=k,
            load_vm_count=n,
            load_on="source",
            family=family,
        )
        for k in _kinds(live)
        for n in LOAD_VM_COUNTS
    ]


def cpuload_target_scenarios(
    family: str = "m", live: Optional[bool] = None
) -> list[MigrationScenario]:
    """CPULOAD-TARGET: source runs the migrating VM only, sweep target load."""
    return [
        MigrationScenario(
            experiment="CPULOAD-TARGET",
            label=f"cpuload-target/{'live' if k else 'nonlive'}/{n}vm/{family}",
            live=k,
            load_vm_count=n,
            load_on="target",
            family=family,
        )
        for k in _kinds(live)
        for n in LOAD_VM_COUNTS
    ]


def memload_vm_scenarios(family: str = "m") -> list[MigrationScenario]:
    """MEMLOAD-VM: idle hosts, sweep the dirtying percentage (live only)."""
    return [
        MigrationScenario(
            experiment="MEMLOAD-VM",
            label=f"memload-vm/live/dr{int(pct)}/{family}",
            live=True,
            load_vm_count=0,
            dirty_percent=pct,
            family=family,
        )
        for pct in DIRTY_PERCENTS
    ]


def memload_source_scenarios(
    family: str = "m", dirty_percent: float = 95.0
) -> list[MigrationScenario]:
    """MEMLOAD-SOURCE: CPU load on source, migrating-mem at a fixed DR."""
    return [
        MigrationScenario(
            experiment="MEMLOAD-SOURCE",
            label=f"memload-source/live/{n}vm/{family}",
            live=True,
            load_vm_count=n,
            load_on="source",
            dirty_percent=dirty_percent,
            family=family,
        )
        for n in LOAD_VM_COUNTS
    ]


def memload_target_scenarios(
    family: str = "m", dirty_percent: float = 95.0
) -> list[MigrationScenario]:
    """MEMLOAD-TARGET: CPU load on target, migrating-mem at a fixed DR."""
    return [
        MigrationScenario(
            experiment="MEMLOAD-TARGET",
            label=f"memload-target/live/{n}vm/{family}",
            live=True,
            load_vm_count=n,
            load_on="target",
            dirty_percent=dirty_percent,
            family=family,
        )
        for n in LOAD_VM_COUNTS
    ]


def consolidation_scenarios(
    family: str = "m", live: Optional[bool] = None
) -> list[MigrationScenario]:
    """CONSOLIDATION: the manager drains an underloaded source host.

    The migrating guest idles a source host below the consolidation
    threshold; the manager detects the underload on its monitoring grid
    and issues the drain through the energy-aware policy.  Background
    load — where present — sits on the *target*, sweeping the "consolidate
    toward a loaded host" axis of the paper's closing recommendation.
    Load counts are restricted to levels that keep the target clearly
    above the underload threshold (0 or ≥ 3 load VMs): a single load VM
    leaves both hosts equally underloaded and the drain direction would
    be a coin toss on utilisation ties.
    """
    cpu = [
        MigrationScenario(
            experiment="CONSOLIDATION-CPU",
            label=f"consolidation-cpu/{'live' if k else 'nonlive'}/{n}vm/{family}",
            live=k,
            load_vm_count=n,
            load_on="target",
            family=family,
            driver="manager",
        )
        for k in _kinds(live)
        for n in (0, 3)
    ]
    mem = (
        [
            MigrationScenario(
                experiment="CONSOLIDATION-MEM",
                label=f"consolidation-mem/live/dr{int(pct)}/{n}vm/{family}",
                live=True,
                load_vm_count=n,
                load_on="target",
                dirty_percent=pct,
                family=family,
                driver="manager",
            )
            for pct, n in ((55.0, 0), (95.0, 3))
        ]
        if live in (None, True)
        else []
    )
    return cpu + mem


def all_scenarios(family: str = "m") -> list[MigrationScenario]:
    """Every scenario of Table IIa for one machine pair (42 in total)."""
    return (
        cpuload_source_scenarios(family)
        + cpuload_target_scenarios(family)
        + memload_vm_scenarios(family)
        + memload_source_scenarios(family)
        + memload_target_scenarios(family)
    )
