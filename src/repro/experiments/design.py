"""The experiment families of Table IIa, expanded into scenarios.

================  =================  ==============  ===================
experiment        source host        target host     migrating VM
================  =================  ==============  ===================
CPULOAD-SOURCE    [0–100] % CPU      idle            migrating-cpu
CPULOAD-TARGET    migrating VM only  [0–100] % CPU   migrating-cpu
MEMLOAD-VM        idle               idle            migrating-mem 5–95 %
MEMLOAD-SOURCE    [0–100] % CPU      idle            migrating-mem 95 %
MEMLOAD-TARGET    migrating-mem src  [0–100] % CPU   migrating-mem 95 %
================  =================  ==============  ===================

Host CPU load is generated with ``load-cpu`` instances; the paper's load
levels map to **0, 1, 3, 5, 7 and 8** load VMs (the figures' legend):
with the 4-vCPU migrating VM included, 32 threads make those 12.5 / 25 /
50 / 75 / 100 / 112.5 % utilisation — the last one multiplexed.  CPULOAD
runs both migration kinds; MEMLOAD runs live only, "since non-live
migrations have DR(v,t) = 0" (Section V-A2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from repro.errors import ConfigurationError

__all__ = [
    "LOAD_VM_COUNTS",
    "DIRTY_PERCENTS",
    "MigrationScenario",
    "cpuload_source_scenarios",
    "cpuload_target_scenarios",
    "memload_vm_scenarios",
    "memload_source_scenarios",
    "memload_target_scenarios",
    "all_scenarios",
]

#: Load-VM counts of the figures' legends (0 … 8 with 8 = multiplexing).
LOAD_VM_COUNTS: tuple[int, ...] = (0, 1, 3, 5, 7, 8)

#: Dirty-percent sweep of Fig. 5.
DIRTY_PERCENTS: tuple[float, ...] = (5.0, 15.0, 35.0, 55.0, 75.0, 95.0)


@dataclass(frozen=True)
class MigrationScenario:
    """One concrete migration configuration to run and measure.

    Parameters
    ----------
    experiment:
        Family name (``CPULOAD-SOURCE`` … ``MEMLOAD-TARGET``).
    label:
        Unique human-readable identifier (used in splits and reports).
    live:
        Migration kind.
    load_vm_count:
        Number of ``load-cpu`` guests generating background load.
    load_on:
        Which host carries the background load.
    dirty_percent:
        MEMLOAD dirty ratio; ``None`` selects the ``migrating-cpu``
        instance, a value selects ``migrating-mem``.
    family:
        Machine pair (``"m"`` → m01–m02, ``"o"`` → o1–o2).
    """

    experiment: str
    label: str
    live: bool
    load_vm_count: int = 0
    load_on: Literal["source", "target"] = "source"
    dirty_percent: Optional[float] = None
    family: str = "m"

    def __post_init__(self) -> None:
        if self.load_vm_count < 0:
            raise ConfigurationError("load_vm_count must be non-negative")
        if self.load_on not in ("source", "target"):
            raise ConfigurationError(f"load_on must be source/target, got {self.load_on!r}")
        if self.dirty_percent is not None and not 0 <= self.dirty_percent <= 100:
            raise ConfigurationError("dirty_percent must be in [0, 100]")
        if self.family not in ("m", "o"):
            raise ConfigurationError(f"family must be 'm' or 'o', got {self.family!r}")
        if self.dirty_percent is not None and not self.live:
            raise ConfigurationError(
                "MEMLOAD scenarios are live-only (non-live has DR = 0)"
            )

    @property
    def migrating_instance(self) -> str:
        """Instance type of the migrating guest (Table IIb)."""
        return "migrating-cpu" if self.dirty_percent is None else "migrating-mem"

    @property
    def kind_name(self) -> str:
        """``live`` / ``non-live`` for reports."""
        return "live" if self.live else "non-live"


def _kinds(live: Optional[bool]) -> tuple[bool, ...]:
    if live is None:
        return (False, True)
    return (bool(live),)


def cpuload_source_scenarios(
    family: str = "m", live: Optional[bool] = None
) -> list[MigrationScenario]:
    """CPULOAD-SOURCE: sweep source load, idle target, migrating-cpu VM."""
    return [
        MigrationScenario(
            experiment="CPULOAD-SOURCE",
            label=f"cpuload-source/{'live' if k else 'nonlive'}/{n}vm/{family}",
            live=k,
            load_vm_count=n,
            load_on="source",
            family=family,
        )
        for k in _kinds(live)
        for n in LOAD_VM_COUNTS
    ]


def cpuload_target_scenarios(
    family: str = "m", live: Optional[bool] = None
) -> list[MigrationScenario]:
    """CPULOAD-TARGET: source runs the migrating VM only, sweep target load."""
    return [
        MigrationScenario(
            experiment="CPULOAD-TARGET",
            label=f"cpuload-target/{'live' if k else 'nonlive'}/{n}vm/{family}",
            live=k,
            load_vm_count=n,
            load_on="target",
            family=family,
        )
        for k in _kinds(live)
        for n in LOAD_VM_COUNTS
    ]


def memload_vm_scenarios(family: str = "m") -> list[MigrationScenario]:
    """MEMLOAD-VM: idle hosts, sweep the dirtying percentage (live only)."""
    return [
        MigrationScenario(
            experiment="MEMLOAD-VM",
            label=f"memload-vm/live/dr{int(pct)}/{family}",
            live=True,
            load_vm_count=0,
            dirty_percent=pct,
            family=family,
        )
        for pct in DIRTY_PERCENTS
    ]


def memload_source_scenarios(
    family: str = "m", dirty_percent: float = 95.0
) -> list[MigrationScenario]:
    """MEMLOAD-SOURCE: CPU load on source, migrating-mem at a fixed DR."""
    return [
        MigrationScenario(
            experiment="MEMLOAD-SOURCE",
            label=f"memload-source/live/{n}vm/{family}",
            live=True,
            load_vm_count=n,
            load_on="source",
            dirty_percent=dirty_percent,
            family=family,
        )
        for n in LOAD_VM_COUNTS
    ]


def memload_target_scenarios(
    family: str = "m", dirty_percent: float = 95.0
) -> list[MigrationScenario]:
    """MEMLOAD-TARGET: CPU load on target, migrating-mem at a fixed DR."""
    return [
        MigrationScenario(
            experiment="MEMLOAD-TARGET",
            label=f"memload-target/live/{n}vm/{family}",
            live=True,
            load_vm_count=n,
            load_on="target",
            dirty_percent=dirty_percent,
            family=family,
        )
        for n in LOAD_VM_COUNTS
    ]


def all_scenarios(family: str = "m") -> list[MigrationScenario]:
    """Every scenario of Table IIa for one machine pair (42 in total)."""
    return (
        cpuload_source_scenarios(family)
        + cpuload_target_scenarios(family)
        + memload_vm_scenarios(family)
        + memload_source_scenarios(family)
        + memload_target_scenarios(family)
    )
