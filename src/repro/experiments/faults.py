"""Campaign fault-tolerance primitives: failure taxonomy, retry budgets,
watchdogs and the failure ledger.

A production-scale campaign cannot treat every worker exception as fatal:
transient faults (a worker OOM-killed mid-run, a flaky filesystem, a
dropped connection) should be retried with backoff, while a task that
fails deterministically must be *quarantined* after a bounded number of
attempts instead of being requeued forever.  This module provides the
vocabulary the executor and both distributed backends share:

* :class:`RunFailure` — one frozen record per failed task attempt (task
  id, run indices, attempt number, worker, exception class, traceback
  digest, wall time, fate).  Serialised as ``wavm3-failure/1``
  (:mod:`repro.io`) into the campaign's *failure ledger*.
* :class:`FailureLedger` — the per-campaign accumulator of
  :class:`RunFailure` records, persisted as NDJSON next to the run cache
  (``<cache-dir>/failures.ndjson``) and surfaced in the campaign
  summary, ``spool_status()`` and ``GET /status``.
* :class:`RetryPolicy` — capped exponential backoff with deterministic
  jitter (a hash of the task id and attempt number, so two campaigns
  with the same failures sleep the same schedule).
* :class:`TaskFailure` — the exception distributed backends attach to a
  task future, carrying the structured :class:`RunFailure` plus a
  ``retryable`` verdict (a stale-lease budget exhausted server-side is
  not worth re-dispatching).
* :func:`run_with_deadline` — the worker-side watchdog: runs a callable
  under a wall-clock deadline and raises :class:`RunTimeoutError`
  instead of hanging the claim forever.

See ``docs/robustness.md`` for the full state machine.
"""

from __future__ import annotations

import hashlib
import pathlib
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple, TypeVar

from repro.errors import ExperimentError

__all__ = [
    "EXIT_DEGRADED",
    "FAILURE_FATES",
    "ON_FAILURE_MODES",
    "FailureLedger",
    "RetryPolicy",
    "RunFailure",
    "RunTimeoutError",
    "TaskFailure",
    "failure_from_exception",
    "run_with_deadline",
    "stable_unit_interval",
    "traceback_digest",
]

#: Exit code of a campaign that *completed* but degraded (quarantined or
#: skipped tasks, dropped scenarios) — distinct from ``1`` (hard failure)
#: and ``2`` (argparse usage errors).
EXIT_DEGRADED = 3

#: What the coordinator does once a task's retry budget is exhausted.
ON_FAILURE_MODES = ("raise", "skip", "quarantine")

#: What ultimately happened to a failed attempt.
FAILURE_FATES = ("retried", "quarantined", "skipped", "fatal", "tolerated")

_T = TypeVar("_T")


def stable_unit_interval(token: str) -> float:
    """Map ``token`` deterministically onto ``[0, 1)``.

    The uniform source behind every deterministic "random" decision of
    the fault layer (retry jitter, chaos trip rates): a SHA-256 of the
    token, so the same token yields the same draw in every process on
    every platform.
    """
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def traceback_digest(text: Optional[str]) -> Optional[str]:
    """A short stable digest of a traceback, or ``None`` for none.

    The ledger stores the digest instead of the full text: enough to
    group identical failures across attempts and workers without
    shipping kilobytes of frames per record.
    """
    if not text:
        return None
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class RunFailure:
    """One failed task attempt, as recorded in the failure ledger.

    Serialised via :func:`repro.io.run_failure_to_dict` under the
    ``wavm3-failure/1`` schema.
    """

    task_id: str
    scenario: str
    run_indices: Tuple[int, ...]
    attempt: int
    worker: str
    kind: str                              # exception class name
    message: str
    traceback_digest: Optional[str] = None
    wall_s: Optional[float] = None
    at: float = 0.0
    fate: str = "retried"                  # one of FAILURE_FATES

    def __post_init__(self) -> None:
        if self.fate not in FAILURE_FATES:
            raise ExperimentError(
                f"unknown failure fate {self.fate!r} (expected one of {FAILURE_FATES})"
            )

    def with_fate(self, fate: str) -> "RunFailure":
        """A copy of this record with its final ``fate`` filled in."""
        return replace(self, fate=fate)


def failure_from_exception(
    exc: BaseException,
    *,
    task_id: str,
    scenario: str,
    run_indices: Tuple[int, ...],
    attempt: int,
    worker: str,
    traceback_text: Optional[str] = None,
    wall_s: Optional[float] = None,
    at: Optional[float] = None,
) -> RunFailure:
    """Build a :class:`RunFailure` from a raised exception.

    A :class:`TaskFailure` already carrying a structured record is
    unwrapped (the backend-side record knows the true worker id); only
    the attempt number and timestamp are overridden with the
    coordinator's view.
    """
    stamp = time.time() if at is None else at
    inner = getattr(exc, "failure", None)
    if isinstance(inner, RunFailure):
        return replace(inner, attempt=attempt, at=stamp)
    return RunFailure(
        task_id=task_id,
        scenario=scenario,
        run_indices=tuple(run_indices),
        attempt=attempt,
        worker=worker,
        kind=type(exc).__name__,
        message=str(exc),
        traceback_digest=traceback_digest(traceback_text),
        wall_s=wall_s,
        at=stamp,
    )


class TaskFailure(ExperimentError):
    """A task attempt failed; carries the structured record.

    Distributed backends resolve a task future with this exception so
    the coordinator sees *structured* failure data (worker id, exception
    class, traceback digest) instead of a bare message.  ``retryable``
    is the backend's verdict: ``False`` means re-dispatching is known to
    be futile (e.g. the server-side stale-lease budget is exhausted) and
    the coordinator should go straight to quarantine/skip/raise.
    """

    def __init__(
        self,
        message: str,
        failure: Optional[RunFailure] = None,
        retryable: bool = True,
    ) -> None:
        super().__init__(message)
        self.failure = failure
        self.retryable = retryable


class RunTimeoutError(ExperimentError):
    """A run (or batch) exceeded its wall-clock deadline (watchdog)."""


def run_with_deadline(
    fn: Callable[[], _T],
    timeout_s: Optional[float],
    label: str = "task",
) -> _T:
    """Run ``fn`` under a wall-clock deadline.

    ``fn`` executes on a daemon thread joined with ``timeout_s``; on
    expiry a :class:`RunTimeoutError` is raised and the runaway thread
    is abandoned (daemonised, so it cannot block process exit).  This is
    the portable worker-side watchdog — no ``SIGALRM``, so it works on
    every platform and inside worker threads.

    Parameters
    ----------
    fn:
        Zero-argument callable (close over the task).
    timeout_s:
        Deadline in seconds; ``None`` runs ``fn`` inline with no
        watchdog (and no extra thread).
    label:
        Human-readable task name for the timeout message.

    Returns
    -------
    The callable's return value.

    Raises
    ------
    RunTimeoutError
        When the deadline expires before ``fn`` returns.
    """
    if timeout_s is None:
        return fn()
    if timeout_s <= 0:
        raise ExperimentError(f"timeout_s must be > 0, got {timeout_s}")
    box: dict = {}
    done = threading.Event()

    def _target() -> None:
        try:
            box["result"] = fn()
        except BaseException as exc:  # noqa: BLE001 - mirrored to the caller
            box["error"] = exc
        finally:
            done.set()

    thread = threading.Thread(target=_target, daemon=True, name=f"watchdog-{label}")
    thread.start()
    if not done.wait(timeout_s):
        raise RunTimeoutError(
            f"{label} exceeded its {timeout_s:g}s wall-clock deadline"
        )
    if "error" in box:
        raise box["error"]
    return box["result"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    The delay before re-dispatching a task after its ``attempt``-th
    failure is ``min(cap_s, base_s * 2**(attempt-1))``, scaled by a
    jitter factor in ``[1-jitter, 1+jitter]`` drawn deterministically
    from the task id and attempt number — so retry schedules are
    reproducible run-to-run yet decorrelated across tasks.
    """

    base_s: float = 0.5
    cap_s: float = 30.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ExperimentError(
                f"invalid backoff bounds: base={self.base_s} cap={self.cap_s}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ExperimentError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Backoff before the retry that follows failed attempt ``attempt``."""
        if attempt < 1:
            raise ExperimentError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.cap_s, self.base_s * (2.0 ** (attempt - 1)))
        unit = stable_unit_interval(f"retry:{token}:{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))


class FailureLedger:
    """The per-campaign accumulator of :class:`RunFailure` records.

    Records live in memory always and — when ``path`` is given — are
    appended to an NDJSON file (``wavm3-failure/1`` lines) as they
    arrive, so a crashed coordinator leaves a readable ledger behind.
    The executor resets the ledger at campaign start; persistence
    failures are swallowed (the ledger must never take a campaign down).
    """

    def __init__(self, path=None) -> None:
        self.path = path
        self.records: list[RunFailure] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.records)

    def reset(self) -> None:
        """Start a fresh campaign: drop records, truncate the file."""
        with self._lock:
            self.records = []
            if self.path is not None:
                try:
                    pathlib.Path(self.path).unlink(missing_ok=True)
                except OSError:
                    pass

    def record(self, failure: RunFailure) -> RunFailure:
        """Append one record (and persist it when a path is configured)."""
        with self._lock:
            self.records.append(failure)
            if self.path is not None:
                try:
                    from repro.io import append_failure_record

                    append_failure_record(failure, self.path)
                except OSError:
                    pass
        return failure

    def counts_by_fate(self) -> dict:
        """``{fate: count}`` over the recorded failures (insertion order)."""
        counts: dict = {}
        with self._lock:
            for record in self.records:
                counts[record.fate] = counts.get(record.fate, 0) + 1
        return counts

    def summary_line(self) -> str:
        """One human line for the campaign summary (``failures: …``)."""
        counts = self.counts_by_fate()
        total = sum(counts.values())
        if total == 0:
            return "failures: none"
        parts = ", ".join(
            f"{count} {fate}" for fate, count in sorted(counts.items())
        )
        suffix = f" — ledger: {self.path}" if self.path is not None else ""
        return f"failures: {total} recorded ({parts}){suffix}"
