"""Result containers: run → scenario → experiment.

* :class:`RunResult` — one instrumented migration run; converts itself to
  the :class:`~repro.models.features.MigrationSample` format (per host
  role) consumed by every energy model;
* :class:`ScenarioResult` — the ≥ 10 repetitions of one scenario, with
  energy statistics and the run-averaged, migration-aligned power series
  used to draw the paper's figures;
* :class:`ExperimentResult` — a set of scenarios (one experiment family
  or the full Table IIa campaign) with train/test plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.design import MigrationScenario
from repro.models.features import HostRole, MigrationSample
from repro.phases.timeline import MigrationPhase, PhaseTimeline
from repro.regression.training import TrainTestSplit, split_runs
from repro.telemetry.integration import integrate_power
from repro.telemetry.traces import PowerTrace, SeriesTrace

__all__ = [
    "ProgressEvent",
    "RunResult",
    "ScenarioResult",
    "ExperimentResult",
    "FigureSeries",
    "run_sample_count",
]


@dataclass(frozen=True)
class ProgressEvent:
    """One worker's announcement that a campaign run finished.

    The live-progress record of the telemetry control plane's campaign
    half: emitted after every completed run and carried through whichever
    channel the backend already uses for task handoff — kept in memory by
    the in-process backends, appended to per-worker NDJSON sidecars in the
    spool (queue backend), POSTed to ``/progress`` (HTTP backend) — then
    surfaced by ``wavm3 campaign-status --follow`` and aggregated into the
    campaign summary.  The stream also feeds the adaptive scheduler's
    :class:`~repro.experiments.scheduler.ThroughputModel` (per-worker
    EWMA throughput → wave span sizing, straggler speculation); it can
    reshape *dispatch*, never results — runs are deterministic in
    ``(seed, label, index)`` whatever lane executes them.
    """

    #: Spool/service task identifier (``<key16>-<index>``), or
    #: ``<label>#<index>`` when no cache key exists (in-process backends).
    task_id: str
    #: Scenario label of the completed run.
    scenario: str
    #: Run index within the scenario's stream.
    run_index: int
    #: Worker identifier (``<hostname>-<pid>`` by convention).
    worker: str
    #: Runs this worker has completed so far (its lifetime counter).
    runs_completed: int
    #: Telemetry samples recorded by the run (power + feature rows).
    samples: int
    #: Wall-clock seconds the run took on the worker.
    wall_s: float
    #: Simulation samples produced per wall second (``samples / wall_s``).
    samples_per_s: float
    #: Unix timestamp of the announcement (``time.time()``).
    at: float


def run_sample_count(run: "RunResult") -> int:
    """Telemetry samples recorded by one run (the progress-rate numerator)."""
    return len(run.source_trace) + len(run.target_trace) + len(run.features)


@dataclass(frozen=True)
class RunResult:
    """Artifacts of one instrumented migration run."""

    scenario: MigrationScenario
    run_index: int
    timeline: PhaseTimeline
    source_trace: PowerTrace
    target_trace: PowerTrace
    features: SeriesTrace
    source_idle_w: float
    target_idle_w: float
    vm_ram_mb: int

    # ------------------------------------------------------------------
    def trace_for(self, role: HostRole) -> PowerTrace:
        """The power trace of one host role."""
        return self.source_trace if role is HostRole.SOURCE else self.target_trace

    def idle_power_for(self, role: HostRole) -> float:
        """Catalogued idle draw of one host role."""
        return self.source_idle_w if role is HostRole.SOURCE else self.target_idle_w

    def phase_energy_j(self, role: HostRole, phase: MigrationPhase) -> float:
        """Measured energy (J) of one phase on one host."""
        trace = self.trace_for(role)
        t0, t1 = self.timeline.phase_interval(phase)
        return integrate_power(trace.times, trace.watts, t0, t1)

    def total_energy_j(self, role: HostRole) -> float:
        """Measured migration energy (J) of one host (Eq. 4)."""
        return sum(
            self.phase_energy_j(role, phase)
            for phase in (
                MigrationPhase.INITIATION,
                MigrationPhase.TRANSFER,
                MigrationPhase.ACTIVATION,
            )
        )

    # ------------------------------------------------------------------
    def sample_for(self, role: HostRole) -> MigrationSample:
        """Convert the run into a model sample for one host role.

        Features are attributed per role exactly as Section IV does:
        ``CPU(v,t)`` and ``DR(v,t)`` count only while the VM is placed on
        that role's host (0 on the target until it resumes there; 0 on
        the source afterwards).
        """
        self.timeline.validate()
        assert self.timeline.ms is not None and self.timeline.me is not None
        assert self.timeline.ts is not None and self.timeline.te is not None
        trace = self.trace_for(role)
        times = trace.times
        mask = (times >= self.timeline.ms) & (times <= self.timeline.me)
        if mask.sum() < 4:
            raise ExperimentError(
                f"run {self.scenario.label}#{self.run_index}: migration window "
                f"holds only {int(mask.sum())} readings"
            )
        window = times[mask]
        power = trace.watts[mask]

        ft = self.features.times
        def col(name: str) -> np.ndarray:
            return np.interp(window, ft, self.features.column(name))

        on_target = col("vm_on_target") > 0.5
        on_this = on_target if role is HostRole.TARGET else ~on_target
        cpu_vm = col("cpu_vm_pct") * on_this
        dr = col("dr_pct") * on_this
        cpu_host = col("cpu_src_pct") if role is HostRole.SOURCE else col("cpu_tgt_pct")
        bw = col("bw_bps")

        phase = np.full(window.size, 2, dtype=np.int64)
        phase[window < self.timeline.te] = 1
        phase[window < self.timeline.ts] = 0

        transfer_bw = bw[phase == 1]
        mean_bw = float(transfer_bw.mean()) if transfer_bw.size else 0.0

        return MigrationSample(
            scenario=self.scenario.label,
            experiment=self.scenario.experiment,
            live=self.scenario.live,
            family=self.scenario.family,
            role=role,
            run_index=self.run_index,
            times=window,
            power_w=power,
            phase=phase,
            cpu_host_pct=cpu_host,
            cpu_vm_pct=cpu_vm,
            bw_bps=bw,
            dr_pct=dr,
            data_bytes=float(self.timeline.bytes_total),
            mem_mb=float(self.vm_ram_mb),
            mean_bw_bps=mean_bw,
            energy_initiation_j=self.phase_energy_j(role, MigrationPhase.INITIATION),
            energy_transfer_j=self.phase_energy_j(role, MigrationPhase.TRANSFER),
            energy_activation_j=self.phase_energy_j(role, MigrationPhase.ACTIVATION),
            downtime_s=self.timeline.downtime,
            notes={"idle_power_w": self.idle_power_for(role)},
        )


@dataclass(frozen=True)
class FigureSeries:
    """A run-averaged power series aligned at migration start.

    ``times`` are seconds relative to ``pre_s`` before ``ms`` (so the
    x-axis reads like the paper's figures); phase marks are run-averaged
    offsets on the same axis.
    """

    label: str
    times: np.ndarray
    watts: np.ndarray
    mark_ms: float
    mark_ts: float
    mark_te: float
    mark_me: float


class ScenarioResult:
    """All runs of one scenario plus aggregate views."""

    def __init__(self, scenario: MigrationScenario, runs: Sequence[RunResult]) -> None:
        if not runs:
            raise ExperimentError(f"scenario {scenario.label!r} has no runs")
        self.scenario = scenario
        self.runs = list(runs)

    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        """Number of repetitions executed."""
        return len(self.runs)

    def total_energies_j(self, role: HostRole) -> np.ndarray:
        """Per-run measured migration energies for one host role."""
        return np.array([r.total_energy_j(role) for r in self.runs])

    def mean_energy_j(self, role: HostRole) -> float:
        """Mean migration energy across runs."""
        return float(self.total_energies_j(role).mean())

    def std_energy_j(self, role: HostRole) -> float:
        """Standard deviation of migration energy across runs."""
        return float(self.total_energies_j(role).std(ddof=1)) if self.n_runs > 1 else 0.0

    def mean_phase_energy_j(self, role: HostRole, phase: MigrationPhase) -> float:
        """Mean energy of one phase across runs."""
        return float(np.mean([r.phase_energy_j(role, phase) for r in self.runs]))

    def mean_duration_s(self) -> float:
        """Mean total migration duration across runs."""
        return float(np.mean([r.timeline.total_duration for r in self.runs]))

    def mean_downtime_s(self) -> float:
        """Mean VM downtime across runs."""
        return float(np.mean([r.timeline.downtime for r in self.runs]))

    # ------------------------------------------------------------------
    def figure_series(
        self,
        role: HostRole,
        pre_s: float = 20.0,
        post_s: float = 20.0,
        dt: float = 0.5,
    ) -> FigureSeries:
        """Run-averaged power aligned at migration start (figure data).

        Each run's trace is re-sampled on a grid anchored ``pre_s`` before
        its own ``ms``, then averaged — the "average each result over ten
        experimental runs" of Section VI.
        """
        span = pre_s + max(r.timeline.total_duration for r in self.runs) + post_s
        grid = np.arange(0.0, span + dt / 2, dt)
        stack = np.empty((len(self.runs), grid.size))
        for i, run in enumerate(self.runs):
            trace = run.trace_for(role)
            assert run.timeline.ms is not None
            anchor = run.timeline.ms - pre_s
            stack[i] = np.interp(anchor + grid, trace.times, trace.watts)
        marks = np.array(
            [
                [
                    pre_s,
                    pre_s + r.timeline.initiation_duration,
                    pre_s + r.timeline.initiation_duration + r.timeline.transfer_duration,
                    pre_s + r.timeline.total_duration,
                ]
                for r in self.runs
            ]
        ).mean(axis=0)
        return FigureSeries(
            label=f"{self.scenario.label}:{role.value}",
            times=grid,
            watts=stack.mean(axis=0),
            mark_ms=float(marks[0]),
            mark_ts=float(marks[1]),
            mark_te=float(marks[2]),
            mark_me=float(marks[3]),
        )

    def samples(self, roles: Iterable[HostRole] = (HostRole.SOURCE, HostRole.TARGET)) -> list[MigrationSample]:
        """Model samples of every run for the requested roles."""
        return [run.sample_for(role) for run in self.runs for role in roles]


class ExperimentResult:
    """A campaign over several scenarios (one family or all of Table IIa)."""

    def __init__(self, scenario_results: Sequence[ScenarioResult]) -> None:
        if not scenario_results:
            raise ExperimentError("experiment has no scenario results")
        self.scenario_results = list(scenario_results)

    # ------------------------------------------------------------------
    @property
    def scenarios(self) -> tuple[MigrationScenario, ...]:
        """The scenarios covered."""
        return tuple(sr.scenario for sr in self.scenario_results)

    def result_for(self, label: str) -> ScenarioResult:
        """Look up one scenario's result by label."""
        for sr in self.scenario_results:
            if sr.scenario.label == label:
                return sr
        raise ExperimentError(f"no scenario {label!r} in this experiment")

    def all_runs(self) -> list[RunResult]:
        """Every run across every scenario, in campaign order."""
        return [run for sr in self.scenario_results for run in sr.runs]

    def samples(
        self,
        roles: Iterable[HostRole] = (HostRole.SOURCE, HostRole.TARGET),
        live: Optional[bool] = None,
    ) -> list[MigrationSample]:
        """Model samples of the whole campaign, optionally kind-filtered."""
        return list(self.iter_samples(roles=roles, live=live))

    def iter_samples(
        self,
        roles: Iterable[HostRole] = (HostRole.SOURCE, HostRole.TARGET),
        live: Optional[bool] = None,
    ) -> Iterator[MigrationSample]:
        """Stream the campaign's samples lazily, in :meth:`samples` order.

        Only one sample is materialised at a time on the producer side,
        so a streaming consumer — the columnar aggregator
        (:mod:`repro.experiments.aggregate`), an incremental JSON writer
        — folds a large campaign in O(flush window) memory instead of
        holding the full sample list.
        """
        roles = tuple(roles)
        for sr in self.scenario_results:
            if live is not None and sr.scenario.live is not live:
                continue
            for run in sr.runs:
                for role in roles:
                    yield run.sample_for(role)

    def train_test_split(
        self,
        training_fraction: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> tuple[list[RunResult], list[RunResult], TrainTestSplit]:
        """Scenario-stratified run split (the paper's 20 % protocol)."""
        runs = self.all_runs()
        split = split_runs(
            [r.scenario.label for r in runs],
            training_fraction=training_fraction,
            rng=rng,
        )
        train, test = split.partition(runs)
        return train, test, split
