"""Experiment harness (subsystem S9) — Section V of the paper.

* :mod:`repro.experiments.instances` — the VM instance catalog of
  Table IIb (``load-cpu``, ``migrating-cpu``, ``migrating-mem``, dom-0);
* :mod:`repro.experiments.testbed` — builds the instrumented two-host
  testbeds of Table IIc (m01–m02 and o1–o2 with their switches/meters);
* :mod:`repro.experiments.design` — the experiment families of Table IIa
  (CPULOAD-SOURCE/-TARGET, MEMLOAD-VM/-SOURCE/-TARGET) expanded into
  concrete migration scenarios;
* :mod:`repro.experiments.runner` — executes scenarios with the paper's
  measurement protocol (stabilise → migrate → stabilise; repeat until the
  run-variance delta drops under 10 %, at least ten runs);
* :mod:`repro.experiments.executor` — fans campaign runs out across
  pluggable execution backends (serial / process pool) and caches run
  results on disk, bit-identical to the serial path (see
  ``docs/parallel_campaigns.md``);
* :mod:`repro.experiments.queue_backend` — the distributed backend: a
  file-based work queue over a shared spool directory, served by any
  number of ``campaign-worker`` processes depositing into one shared
  run cache;
* :mod:`repro.experiments.http_backend` — the network backend: an
  embedded stdlib HTTP task-handoff service (``/claim``, ``/heartbeat``,
  ``/result``, ``/status``) polled by ``campaign-worker --connect``
  processes that need nothing but the coordinator's URL;
* :mod:`repro.experiments.faults` — the campaign fault-tolerance layer:
  failure taxonomy and ledger (``wavm3-failure/1``), retry budgets with
  capped deterministic backoff, quarantine semantics and run watchdogs
  (see ``docs/robustness.md``);
* :mod:`repro.experiments.chaos` — the deterministic chaos harness:
  seeded fault injection at named execution seams, for drills and the
  chaos soak tests;
* :mod:`repro.experiments.results` — run/scenario/experiment result
  containers and the conversion to model samples.
"""

from repro.experiments.design import (
    MigrationScenario,
    all_scenarios,
    consolidation_scenarios,
    cpuload_source_scenarios,
    cpuload_target_scenarios,
    memload_source_scenarios,
    memload_target_scenarios,
    memload_vm_scenarios,
    LOAD_VM_COUNTS,
    DIRTY_PERCENTS,
)
from repro.experiments.chaos import ChaosError, ChaosRule, ChaosSchedule
from repro.experiments.executor import (
    CampaignExecutor,
    ExecutorBackend,
    ExecutorStats,
    ProcessBackend,
    RunBatchTask,
    RunCache,
    RunTask,
    SerialBackend,
    execute_batch,
)
from repro.experiments.faults import (
    EXIT_DEGRADED,
    FailureLedger,
    RetryPolicy,
    RunFailure,
    RunTimeoutError,
    TaskFailure,
    run_with_deadline,
)
from repro.experiments.http_backend import (
    CampaignHTTPServer,
    HttpBackend,
    fetch_status,
    run_http_worker,
)
from repro.experiments.queue_backend import (
    QueueBackend,
    QueueStats,
    WorkerStats,
    run_worker,
    spool_gc,
    spool_status,
)
from repro.experiments.instances import INSTANCE_CATALOG, InstanceSpec, make_instance_vm
from repro.experiments.results import (
    ExperimentResult,
    ProgressEvent,
    RunResult,
    ScenarioResult,
    run_sample_count,
)
from repro.experiments.runner import ScenarioRunner, resolve_run_count
from repro.experiments.testbed import Testbed

__all__ = [
    "CampaignExecutor",
    "CampaignHTTPServer",
    "ChaosError",
    "ChaosRule",
    "ChaosSchedule",
    "EXIT_DEGRADED",
    "ExecutorBackend",
    "ExecutorStats",
    "FailureLedger",
    "HttpBackend",
    "RetryPolicy",
    "RunFailure",
    "RunTimeoutError",
    "TaskFailure",
    "run_with_deadline",
    "ProcessBackend",
    "QueueBackend",
    "QueueStats",
    "RunBatchTask",
    "RunCache",
    "RunTask",
    "SerialBackend",
    "WorkerStats",
    "execute_batch",
    "fetch_status",
    "run_http_worker",
    "run_worker",
    "spool_gc",
    "spool_status",
    "resolve_run_count",
    "MigrationScenario",
    "all_scenarios",
    "consolidation_scenarios",
    "cpuload_source_scenarios",
    "cpuload_target_scenarios",
    "memload_source_scenarios",
    "memload_target_scenarios",
    "memload_vm_scenarios",
    "LOAD_VM_COUNTS",
    "DIRTY_PERCENTS",
    "INSTANCE_CATALOG",
    "InstanceSpec",
    "make_instance_vm",
    "ExperimentResult",
    "ProgressEvent",
    "RunResult",
    "run_sample_count",
    "ScenarioResult",
    "ScenarioRunner",
    "Testbed",
]
