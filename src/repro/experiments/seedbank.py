"""Seed-bank execution: the vectorized batch interior of ``run_batch``.

PR 6's batch dispatch ships a span of replicate runs to a worker as one
task; this module executes that span's *interior* as one SoA pass.  A
:class:`SeedBank` builds every run's testbed up front, drives each run's
measurement protocol (:meth:`ScenarioRunner._run_protocol`) as a
coroutine, and groups the runs that request the *same* simulated advance
into lockstep cohorts.  For every cohort member whose upcoming window is
**event-free** — no heap event, no control hook, no active power
transient — the window is advanced *banked*: each instrument's sampler
tick grid is computed per run (`sampler_tick_grid`, bit-identical to
`PeriodicSampler.advance_to`), the per-run grids stack into a 2-D
``[seed, tick]`` matrix, and the fused interval kernels evaluate the
whole bank at once (:func:`~repro.simulator.kernels.power_block_bank`
and friends), filling all runs' noise tick grids in one batched
hash sweep first.  Runs whose timelines diverge — a migration chunk
event, a manager decision, a different stabilisation cut — simply fall
out of the bank for that window and advance through the untouched
per-run engine path (``sim.run_for``), rejoining the bank whenever their
requested advance matches again.

**Bit-identity.**  Banked and per-run windows perform the same IEEE-754
elementwise operations on the same values (a ``[B, n]`` matrix operation
is per-row identical to the ``[n]`` row operations), consume each run's
RNG streams in the same order, and publish to each run's traces and
stabilisation trackers with the same block boundaries as the per-run
batched path.  Runs with different instrument parameters or grid sizes
never share a bank in the first place (they are grouped by role
signature), and where a banked precondition fails for a window — scalar
compute mode, a pending event or control hook, active transients — the
driver falls back to the exact per-run code for that run and window.
The cross-bank golden tests assert byte-identical
campaign samples JSON against the per-run interior on every scenario
archetype, compute mode and backend.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.experiments.results import RunResult
from repro.experiments.testbed import FeatureRecorder, Testbed
from repro.simulator.kernels import (
    cpu_percent_block_bank,
    host_bank_key,
    power_block_bank,
    sampler_tick_grid,
    util_block_bank,
)
from repro.simulator.sampling import PeriodicSampler
from repro.telemetry.dstat import DstatMonitor
from repro.telemetry.powermeter import PowerMeter

__all__ = ["SeedBank"]

#: Interval-hook roles the banked window knows how to drive.  Anything
#: else (an unknown instrument, a future hook type) drops the run to the
#: per-run path for that window.
_ROLE_TAGS = {
    PowerMeter: "meter",
    DstatMonitor: "dstat",
    FeatureRecorder: "recorder",
}


class _BankedRun:
    """One run's in-flight protocol state inside a bank."""

    __slots__ = (
        "index", "bed", "gen", "stab_spent", "stab_budget", "target",
        "result", "done", "hooks_sig", "roles", "role_sig",
    )

    def __init__(self, index: int, bed: Testbed, gen) -> None:
        self.index = index
        self.bed = bed
        self.gen = gen
        #: Stabilisation-wait bookkeeping (``None`` outside a wait).
        self.stab_spent = None
        self.stab_budget = None
        #: Absolute simulated time at which the protocol resumes — the
        #: exact ``float(now + duration)`` the per-run ``run_for`` would
        #: land on, so the protocol sees identical clock values no
        #: matter how the driver splits the advance into windows.
        self.target = 0.0
        self.result: Optional[RunResult] = None
        self.done = False
        #: Cached interval-hook decomposition (rebuilt when the hook
        #: list changes, e.g. when instrumentation starts or stops).
        self.hooks_sig: tuple = ()
        self.roles = None
        self.role_sig: tuple = ()


class SeedBank:
    """Drives up to ``width`` runs of one scenario in lockstep.

    Parameters
    ----------
    runner:
        The owning :class:`~repro.experiments.runner.ScenarioRunner`.
    scenario:
        The (already validated) scenario.
    indices:
        Distinct run indices, in result order (need not be contiguous —
        cache holes bank just as well; each run's seed depends only on
        its own index).
    width:
        Maximum runs banked concurrently; longer spans run as
        consecutive full-width banks.
    on_run:
        Optional per-run callback, invoked in ``indices`` order as a
        growing prefix of finished runs (so incremental cache deposits
        and progress events keep the per-run loop's ordering contract).
    """

    def __init__(
        self,
        runner,
        scenario,
        indices: list[int],
        width: int,
        on_run: Optional[Callable[[RunResult], None]] = None,
    ) -> None:
        self.runner = runner
        self.scenario = scenario
        self.indices = list(indices)
        self.width = max(int(width), 2)
        self.on_run = on_run

    # ------------------------------------------------------------------
    def execute(self) -> list[RunResult]:
        """Run every index; returns results in ``indices`` order."""
        results: dict[int, RunResult] = {}
        fired = 0
        for pos in range(0, len(self.indices), self.width):
            chunk = self.indices[pos:pos + self.width]
            for run in self._run_chunk(chunk):
                results[run.run_index] = run
                if self.on_run is not None:
                    # Fire the completed prefix, preserving index order.
                    while (
                        fired < len(self.indices)
                        and self.indices[fired] in results
                    ):
                        self.on_run(results[self.indices[fired]])
                        fired += 1
        return [results[index] for index in self.indices]

    # ------------------------------------------------------------------
    def _run_chunk(self, chunk: list[int]):
        """Drive one bank of runs to completion; yields finished runs.

        All runs in a chunk start at the same simulated instant and are
        advanced along one *shared timeline*: each window runs every
        live run forward to the earliest protocol resume point
        (``min(run.target)``) — banked where the window is event-free,
        through the engine otherwise — and only the runs whose own
        target was reached resume their protocol generator.  Splitting
        a run's requested advance across several windows is bits-neutral
        (anchor-based tick grids and block-split RNG draws make window
        boundaries invisible to the samples), and each run's clock lands
        on the exact ``float(now + duration)`` values ``run_once`` would
        produce because targets are carried as absolute floats, never
        re-accumulated.
        """
        runner = self.runner
        scenario = self.scenario
        live: list[_BankedRun] = []
        for index in chunk:
            bed = runner.build_testbed(scenario, index)
            gen = runner._run_protocol(bed, scenario, index)
            live.append(_BankedRun(index, bed, gen))
        ready = list(live)
        while True:
            self._assign_targets(ready)
            done = [run for run in live if run.done]
            live = [run for run in live if not run.done]
            for run in done:
                yield run.result
            if not live:
                return
            t1 = min(run.target for run in live)
            self._advance_window(live, t1)
            ready = [run for run in live if run.target <= t1]

    def _assign_targets(self, ready: list[_BankedRun]) -> None:
        """Give every run that reached its target a new resume target.

        Runs inside a ``("stabilise", budget)`` wait are *coordinated*:
        each computes the deficit look-ahead skip :meth:`ScenarioRunner.
        _run_until_stable` would take from this check, and all of them
        advance by the cohort-wide **minimum** — so stabilising runs
        share every subsequent check boundary and stack into one bank.
        Taking fewer steps than a run's own look-ahead allows only adds
        checks the look-ahead proved false (the deficit bound is sound
        at every boundary), so each run still leaves the wait at exactly
        the check ``run_once`` leaves it at, and budget exhaustion lands
        on the same total (each skip is capped by the remaining budget,
        mirroring ``_run_until_stable``'s cap).
        """
        runner = self.runner
        check = runner.settings.check_interval_s
        rule = runner.stabilization
        waiting: list[tuple[_BankedRun, int]] = []
        for run in ready:
            while True:
                if run.stab_spent is not None:
                    bed = run.bed
                    if run.stab_spent >= run.stab_budget or (
                        bed.source_meter.stabilised(rule)
                        and bed.target_meter.stabilised(rule)
                    ):
                        run.stab_spent = None  # wait over: resume protocol
                    else:
                        deficit = max(
                            bed.source_meter.stabilisation_deficit(rule),
                            bed.target_meter.stabilisation_deficit(rule),
                        )
                        period = min(
                            bed.source_meter.period_s,
                            bed.target_meter.period_s,
                        )
                        max_steps = max(1, math.ceil(
                            (run.stab_budget - run.stab_spent) / check
                        ))
                        steps = 1
                        while (
                            steps < max_steps
                            and math.floor(steps * check / period) + 1 < deficit
                        ):
                            steps += 1
                        waiting.append((run, steps))
                        break
                try:
                    step = next(run.gen)
                except StopIteration as stop:
                    run.result = stop.value
                    run.done = True
                    break
                if isinstance(step, tuple):  # ("stabilise", budget_s)
                    run.stab_spent = 0.0
                    run.stab_budget = step[1]
                    continue
                if step <= 0:  # pragma: no cover - defensive: no-op advance
                    run.bed.sim.run_for(step)
                    continue
                run.target = run.bed.sim._now + step
                break
        if waiting:
            steps = min(s for _run, s in waiting)
            advance = check * steps
            for run, _s in waiting:
                run.target = run.bed.sim._now + advance
                run.stab_spent += advance

    # ------------------------------------------------------------------
    # Window advancement
    # ------------------------------------------------------------------
    def _advance_window(self, live: list[_BankedRun], t1: float) -> None:
        """Advance every live run to the shared boundary ``t1``.

        Runs whose window is bankable advance through the stacked
        kernels; the rest take the per-run engine path (``run(until)``)
        — including singleton "banks", where stacking buys nothing.
        """
        subgroups: dict[tuple, list[tuple[_BankedRun, list]]] = {}
        solo: list[_BankedRun] = []
        for run in live:
            plan = (
                self._window_plan(run, t1) if self._bankable(run, t1) else None
            )
            if plan is None:
                solo.append(run)
                continue
            key = (run.role_sig, tuple(
                0 if grid is None else grid.size for grid, _k in plan
            ))
            subgroups.setdefault(key, []).append((run, plan))
        for members in subgroups.values():
            if len(members) < 2:
                solo.extend(run for run, _plan in members)
                continue
            self._advance_banked(members, t1)
        for run in solo:
            run.bed.sim.run(until=t1)

    def _bankable(self, run: _BankedRun, t1: float) -> bool:
        """Whether the run's window up to ``t1`` can leave the engine loop.

        The banked window replays ``Simulator.run(until)`` for the case
        it is specialised to: no control hooks registered, no heap event
        at or before the window end, and no active power transients
        (their lazy pruning is the one stateful read inside the power
        pipeline; expired entries are pruned here — at the window start,
        where an expired transient contributes zero everywhere in the
        window — which the scalar path would do on its next read
        anyway).
        """
        bed = run.bed
        if bed._compute_resolved == "python":
            return False
        sim = bed.sim
        if sim._control_hooks:
            return False
        head = sim.peek()
        if head is not None and head <= t1:
            return False
        for host in (bed.source, bed.target):
            pool = host.power_model.transients
            if pool.active_count:
                pool.value(sim.now)  # prune transients already expired
                if pool.active_count:
                    return False
        return True

    def _window_plan(self, run: _BankedRun, t1: float):
        """Per-hook tick grids for the run's window ending at ``t1``.

        Computes, for every registered interval hook in registration
        order, the exact tick grid ``advance_to`` would deliver (and the
        tick index it would leave behind) without committing anything.
        The hook decomposition — role tags, instruments and their static
        parameters — is cached on the run and revalidated by hook-list
        identity, so steady-state windows only pay for the grids; an
        unsupported hook type returns ``None`` and the run advances
        per-run instead.
        """
        sim = run.bed.sim
        hooks = sim._interval_hooks
        sig = tuple(map(id, hooks))
        if sig != run.hooks_sig:
            run.hooks_sig = sig
            run.roles = self._resolve_roles(run, hooks)
        if run.roles is None:
            return None
        plan = []
        for _tag, hook, _instrument in run.roles:
            if hook._anchor is None:
                run.hooks_sig = ()  # a stopped sampler: re-resolve
                return None
            plan.append(sampler_tick_grid(
                hook._anchor + hook._phase, hook._tick_index, hook._period, t1
            ))
        return plan

    def _resolve_roles(self, run: _BankedRun, hooks) -> Optional[list]:
        """Decompose the hook list into banked roles (or ``None``).

        Also rebuilds ``run.role_sig``, the static uniformity signature
        two runs must share to stack: role tags in registration order
        plus each instrument's measurement parameters and its kernels'
        :func:`host_bank_key` statics.  Subgrouping by this signature
        makes every bank uniform by construction.
        """
        roles = []
        sig = []
        for hook in hooks:
            if type(hook) is not PeriodicSampler:
                return None
            callback = hook._batch_callback
            if callback is None:
                return None
            instrument = getattr(callback, "__self__", None)
            tag = _ROLE_TAGS.get(type(instrument))
            if tag is None:
                return None
            if tag == "meter":
                kernel = instrument.host.attach_kernel(mode=instrument._compute)
                sig.append((
                    tag, instrument._compute, instrument._accuracy,
                    instrument._quantisation, host_bank_key(kernel),
                ))
            elif tag == "dstat":
                kernel = instrument.host.attach_kernel(mode=instrument._compute)
                sig.append((tag, instrument._compute, host_bank_key(kernel)))
            else:
                src = instrument.source.attach_kernel(mode=instrument._compute)
                tgt = instrument.target.attach_kernel(mode=instrument._compute)
                vm_kernel = instrument.vm.attach_kernel()
                sig.append((
                    tag, instrument._compute, host_bank_key(src),
                    host_bank_key(tgt), vm_kernel._quantum,
                ))
            roles.append((tag, hook, instrument))
        run.role_sig = tuple(sig)
        return roles

    def _advance_banked(
        self, members: list[tuple[_BankedRun, list]], t1: float
    ) -> None:
        """One banked window across ``members`` (same role/grid shapes).

        Replays what ``run(until=t1)`` does under the bankability
        preconditions: every interval hook advances across the window in
        registration order (tick index committed, then the block
        delivered), and the clock lands on exactly ``float(t1)``.  The
        per-role blocks are evaluated across the stacked bank.
        """
        roles = members[0][0].roles
        for role, (tag, _hook, _inst) in enumerate(roles):
            grids = []
            for run, plan in members:
                grid, k_next = plan[role]
                run.roles[role][1]._tick_index = k_next
                grids.append(grid)
            if grids[0] is None:
                continue  # no tick in this window for this role
            times_bank = np.stack(grids)
            instruments = [run.roles[role][2] for run, _plan in members]
            if tag == "meter":
                self._meter_block_bank(instruments, times_bank)
            elif tag == "dstat":
                self._dstat_block_bank(instruments, times_bank)
            else:
                self._recorder_block_bank(instruments, times_bank)
        for run, _plan in members:
            run.bed.sim._now = float(t1)

    # ------------------------------------------------------------------
    # Banked instrument blocks (one role, all runs)
    # ------------------------------------------------------------------
    def _meter_block_bank(
        self, meters: list[PowerMeter], times_bank: np.ndarray
    ) -> None:
        """Banked `PowerMeter._sample_block` across stacked grids.

        Uniformity (same compute mode, accuracy, quantisation and
        kernel statics across the bank) is guaranteed by the role-
        signature subgrouping in :meth:`_advance_window`.
        """
        n = times_bank.shape[1]
        m0 = meters[0]
        kernels = [
            meter.host.attach_kernel(mode=meter._compute) for meter in meters
        ]
        true_power = power_block_bank(kernels, times_bank)
        if m0._accuracy:
            noise_sigma = m0._accuracy / 3.0 * true_power
            if not np.all(noise_sigma > 0):  # pragma: no cover - defensive
                for meter, row in zip(meters, times_bank):
                    meter._sample_block(row)
                return
            draws = np.empty_like(true_power)
            for b, meter in enumerate(meters):
                draws[b] = meter._rng.standard_normal(n)
            readings = true_power + noise_sigma * draws
        else:  # pragma: no cover - meters always carry accuracy
            readings = true_power
        if m0._quantisation > 0:
            readings = np.round(readings / m0._quantisation) * m0._quantisation
        readings = np.maximum(readings, 0.0)
        for b, meter in enumerate(meters):
            row = times_bank[b]
            buf_t, buf_w, start = meter.trace._reserve(n, float(row[0]))
            buf_t[start:start + n] = row
            buf_w[start:start + n] = readings[b]
            meter.trace._commit(n)
            for tracker in meter._trackers.values():
                tracker.observe_block(readings[b])

    def _dstat_block_bank(
        self, monitors: list[DstatMonitor], times_bank: np.ndarray
    ) -> None:
        """Banked `DstatMonitor._sample_block` across stacked grids.

        Uniformity across the bank is guaranteed by the role-signature
        subgrouping in :meth:`_advance_window`.
        """
        n = times_bank.shape[1]
        kernels = [
            monitor.host.attach_kernel(mode=monitor._compute)
            for monitor in monitors
        ]
        cpu = util_block_bank(kernels, times_bank) * 100.0
        for b, monitor in enumerate(monitors):
            row = times_bank[b]
            host = monitor.host
            buf_t, (b_cpu, b_mem, b_tx, b_rx), start = (
                monitor.trace._reserve(n, float(row[0]))
            )
            end = start + n
            buf_t[start:end] = row
            b_cpu[start:end] = cpu[b]
            b_mem[start:end] = host.memory_activity_fraction()
            b_tx[start:end] = host.nic_tx_bps()
            b_rx[start:end] = host.nic_rx_bps()
            monitor.trace._commit(n)

    def _recorder_block_bank(
        self, recorders: list[FeatureRecorder], times_bank: np.ndarray
    ) -> None:
        """Banked `FeatureRecorder._sample_block` across stacked grids.

        Uniformity across the bank is guaranteed by the role-signature
        subgrouping in :meth:`_advance_window`.
        """
        n = times_bank.shape[1]
        src_kernels = [
            rec.source.attach_kernel(mode=rec._compute) for rec in recorders
        ]
        tgt_kernels = [
            rec.target.attach_kernel(mode=rec._compute) for rec in recorders
        ]
        vm_kernels = [rec.vm.attach_kernel() for rec in recorders]
        # The jittered utilisations are recomputed from the (pure) noise
        # grids rather than read through the hosts' per-timestamp memo;
        # a fresh compute equals a cached read bit for bit.
        src_pct = util_block_bank(src_kernels, times_bank) * 100.0
        tgt_pct = util_block_bank(tgt_kernels, times_bank) * 100.0
        vm_pct = cpu_percent_block_bank(vm_kernels, times_bank)
        for b, recorder in enumerate(recorders):
            row = times_bank[b]
            on_target = 1.0 if recorder.vm.host is recorder.target else 0.0
            job = recorder._current_job()
            bw = job.current_bandwidth_bps if job is not None else 0.0
            dr = recorder.vm.dirtying_ratio_percent()
            buf_t, (b_src, b_tgt, b_vm, b_on, b_bw, b_dr), start = (
                recorder.trace._reserve(n, float(row[0]))
            )
            end = start + n
            buf_t[start:end] = row
            b_src[start:end] = src_pct[b]
            b_tgt[start:end] = tgt_pct[b]
            b_vm[start:end] = vm_pct[b]
            b_on[start:end] = on_target
            b_bw[start:end] = bw
            b_dr[start:end] = dr
            recorder.trace._commit(n)
