"""Scenario execution with the paper's measurement protocol.

Section V-B, reproduced step by step per run:

1. boot the scenario's guests and start measuring;
2. wait until both hosts' power **stabilises** (twenty consecutive
   readings within 0.3 %);
3. issue the migration through the toolstack;
4. keep measuring until the migration completes *and* power stabilises
   again;
5. repeat the run until the variance of the measured migration energy
   changes by less than 10 % between consecutive repetition counts —
   with **at least ten runs** (``min_runs``).

Every run gets an independent seed derived from
``(master seed, scenario label, run index)``, so campaigns are exactly
reproducible and runs are statistically independent.
"""

from __future__ import annotations

import math
import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle avoided at runtime
    from repro.experiments.scheduler import SpeculationPolicy

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.design import MigrationScenario
from repro.experiments.instances import make_instance_vm
from repro.experiments.results import ExperimentResult, RunResult, ScenarioResult
from repro.experiments.testbed import Testbed
from repro.hypervisor.migration import MigrationConfig
from repro.models.features import HostRole
from repro.simulator.rng import derive_seed
from repro.telemetry.stabilization import StabilizationRule

__all__ = [
    "CONSOLIDATION_PERIOD_S",
    "CONSOLIDATION_PHASE_S",
    "CONSOLIDATION_UNDERLOAD",
    "RunnerSettings",
    "ScenarioRunner",
    "resolve_run_count",
]

#: Monitoring cadence of the consolidation-driver scenarios (the
#: Section III-B(a) manager "constantly monitors" loop, scaled to the
#: simulated protocol).
CONSOLIDATION_PERIOD_S = 5.0

#: First-tick offset after the manager starts.  Deliberately off every
#: telemetry grid (meters tick on the 0.5 s grid, dstat on 1 s): a
#: migration issue must never share an exact float timestamp with a
#: sampler reading, because the two telemetry modes order such a tie
#: differently (batched: action first; events: scheduling history).
CONSOLIDATION_PHASE_S = CONSOLIDATION_PERIOD_S + 0.137

#: Hosts below this CPU utilisation fraction are drain candidates.  Sits
#: between one idling migrating guest (~14 % of the 32-thread m-pair) and
#: the ≥ 3-load-VM levels (~38 %) the consolidation scenarios place on
#: the target, so the drain direction is never ambiguous.
CONSOLIDATION_UNDERLOAD = 0.20


def resolve_run_count(
    energies: Sequence[float],
    min_runs: int,
    max_runs: int,
    variance_delta: float,
) -> Optional[int]:
    """Replay the paper's variance-stopping rule over ordered run energies.

    The rule (Section V-B): stop at the first repetition count ``n`` with
    ``n >= min_runs`` whose sample variance differs from the variance at
    ``n - 1`` runs by less than ``variance_delta`` (relative).  The
    previous-variance chain is tracked from ``n = 2`` onwards — including
    the repetition counts below ``min_runs`` where the criterion itself is
    not yet checked — so the "consecutive repetition counts" comparison at
    ``n = min_runs`` uses the variance of the ``min_runs - 1`` prefix.

    Because the decision is a pure function of the ordered energy sequence,
    the serial loop and the parallel executor share it and are guaranteed
    to keep exactly the same runs.

    Returns
    -------
    Optional[int]
        The number of runs to keep, or ``None`` if the criterion is still
        undecided after ``len(energies)`` runs (i.e. more runs are needed;
        never ``None`` once ``len(energies) >= max_runs``).
    """
    if min_runs < 2 or max_runs < min_runs:
        raise ExperimentError(f"invalid run bounds: min={min_runs} max={max_runs}")
    previous_var: Optional[float] = None
    for n in range(2, min(len(energies), max_runs) + 1):
        current_var = float(np.var(np.asarray(energies[:n], dtype=np.float64), ddof=1))
        if (
            n >= min_runs
            and previous_var is not None
            and previous_var > 0
            and abs(current_var - previous_var) / previous_var < variance_delta
        ):
            return n
        previous_var = current_var
    if len(energies) >= max_runs:
        return max_runs
    return None


@dataclass(frozen=True)
class RunnerSettings:
    """Execution-protocol knobs (defaults = the paper's protocol).

    ``telemetry`` selects the sampling implementation, not the protocol:
    ``"batched"`` (default) drives all instruments through the vectorized
    interval-hook fast path, ``"events"`` keeps the one-heap-event-per-
    sample reference path.  ``compute`` selects the kernel implementation
    inside the batched blocks the same way: ``"python"`` is the all-
    scalar reference, ``"numpy"`` (default) the adaptive array-kernel
    hybrid, ``"numba"`` the hybrid with njit-compiled loops (resolved to
    ``"numpy"`` when numba is missing).  ``seed_bank`` selects the batch
    *interior* the same way: values ``>= 2`` let :meth:`run_batch` drive
    up to that many runs in lockstep through the seed-bank SoA pass
    (:mod:`repro.experiments.seedbank`), ``0``/``1`` keep the per-run
    loop.  Results are bit-identical along all three axes (the
    cross-path golden tests assert byte-identical campaign samples
    JSON), which is why the run cache deliberately ignores all three
    fields.
    """

    min_warmup_s: float = 12.0          # before the stabilisation check starts
    max_warmup_s: float = 90.0          # hard cap on the pre-migration wait
    min_post_s: float = 12.0            # post-migration measurement floor
    max_post_s: float = 120.0           # hard cap on the post-migration wait
    check_interval_s: float = 2.5       # cadence of stabilisation checks
    migration_timeout_s: float = 900.0  # a migration must finish within this
    min_runs: int = 10                  # paper: "at least ten runs"
    max_runs: int = 16                  # safety cap on the variance loop
    variance_delta: float = 0.10        # paper: "less than 10 %"
    telemetry: str = "batched"          # "batched" fast path | "events" reference
    compute: str = "numpy"              # "python" reference | "numpy" | "numba"
    seed_bank: int = 16                 # max runs banked per SoA pass (0/1 = off)

    def __post_init__(self) -> None:
        if self.telemetry not in ("batched", "events"):
            raise ExperimentError(
                f"telemetry must be 'batched' or 'events', got {self.telemetry!r}"
            )
        if self.compute not in ("python", "numpy", "numba"):
            raise ExperimentError(
                f"compute must be 'python', 'numpy' or 'numba', got {self.compute!r}"
            )
        if (
            not isinstance(self.seed_bank, int)
            or isinstance(self.seed_bank, bool)
            or self.seed_bank < 0
        ):
            raise ExperimentError(
                f"seed_bank must be a non-negative integer, got {self.seed_bank!r}"
            )


class ScenarioRunner:
    """Runs migration scenarios on freshly built testbeds.

    Parameters
    ----------
    seed:
        Master seed of the campaign.
    settings:
        Measurement-protocol knobs.
    migration_config:
        Optional migration-engine override (ablation studies).
    stabilization:
        The stability criterion (defaults to the paper's 20×0.3 % rule).
    """

    def __init__(
        self,
        seed: int = 0,
        settings: Optional[RunnerSettings] = None,
        migration_config: Optional[MigrationConfig] = None,
        stabilization: StabilizationRule = StabilizationRule(),
    ) -> None:
        self.seed = int(seed)
        self.settings = settings or RunnerSettings()
        self.migration_config = migration_config
        self.stabilization = stabilization
        #: Stats of the most recent parallel/cached campaign (``None`` until
        #: :meth:`run_campaign` is called with ``parallel``/``cache_dir``).
        self.last_executor_stats = None

    # ------------------------------------------------------------------
    def build_testbed(self, scenario: MigrationScenario, run_index: int) -> Testbed:
        """The run's freshly seeded testbed (exactly :meth:`run_once`'s)."""
        run_seed = derive_seed(self.seed, f"{scenario.label}#{run_index}")
        cfg = self.settings
        return Testbed(
            family=scenario.family,
            seed=run_seed,
            telemetry=cfg.telemetry,
            compute=cfg.compute,
        )

    def run_once(self, scenario: MigrationScenario, run_index: int = 0) -> RunResult:
        """Execute one instrumented run of a scenario."""
        bed = self.build_testbed(scenario, run_index)
        protocol = self._run_protocol(bed, scenario, run_index)
        try:
            while True:
                step = next(protocol)
                if isinstance(step, tuple):  # ("stabilise", budget_s)
                    self._run_until_stable(bed, step[1])
                else:
                    bed.sim.run_for(step)
        except StopIteration as stop:
            return stop.value

    def _run_protocol(
        self, bed: Testbed, scenario: MigrationScenario, run_index: int
    ):
        """The Section V-B measurement protocol as a coroutine.

        Performs every protocol action on ``bed`` but *yields* instead of
        advancing simulated time: plain floats ask the driver to advance
        that many seconds, and ``("stabilise", budget_s)`` marks a
        stabilisation wait so the driver can choose how to walk the check
        grid — :meth:`run_once` delegates to :meth:`_run_until_stable`
        (the look-ahead loop), the seed-bank driver expands it into
        single-check lockstep steps (:meth:`_lockstep_stable_steps`).
        The two walks take identical samples and detect stabilisation at
        the identical check (the look-ahead elides only provably-false
        checks; ``tests/test_telemetry_batched.py`` pins the
        equivalence), so *who* drives the generator never changes a byte
        of the returned :class:`~repro.experiments.results.RunResult`.
        """
        cfg = self.settings
        run_seed = bed.seed

        # --- guests -----------------------------------------------------
        vm = make_instance_vm(
            scenario.migrating_instance,
            name="migrating",
            dirty_percent=scenario.dirty_percent,
            noise_seed=derive_seed(run_seed, "vm:migrating"),
        )
        bed.toolstack.create(bed.source_name, vm)
        load_host = (
            bed.source_name if scenario.load_on == "source" else bed.target_name
        )
        for i in range(scenario.load_vm_count):
            bed.toolstack.create(
                load_host,
                make_instance_vm(
                    "load-cpu",
                    name=f"load-{i}",
                    noise_seed=derive_seed(run_seed, f"vm:load-{i}"),
                ),
            )

        # --- instrumentation ---------------------------------------------
        recorder = bed.make_feature_recorder(vm)
        bed.start_instrumentation()
        recorder.start()

        # --- phase 0: stabilise ------------------------------------------
        yield cfg.min_warmup_s
        yield ("stabilise", cfg.max_warmup_s)

        # --- migrate -------------------------------------------------------
        if scenario.driver == "manager":
            job = yield from self._manager_steps(bed, scenario, recorder)
        else:
            job = bed.toolstack.migrate(
                "migrating",
                bed.source_name,
                bed.target_name,
                bed.path,
                live=scenario.live,
                config=self.migration_config,
            )
        recorder.attach_job(job)
        deadline = bed.sim.now + cfg.migration_timeout_s
        while not job.finished:
            if bed.sim.now >= deadline:
                raise ExperimentError(
                    f"migration did not finish within {cfg.migration_timeout_s}s "
                    f"({scenario.label}#{run_index})"
                )
            yield cfg.check_interval_s

        # --- post-migration stabilisation ----------------------------------
        yield cfg.min_post_s
        yield ("stabilise", cfg.max_post_s)

        recorder.stop()
        bed.stop_instrumentation()

        return RunResult(
            scenario=scenario,
            run_index=run_index,
            timeline=job.timeline,
            source_trace=bed.source_meter.trace,
            target_trace=bed.target_meter.trace,
            features=recorder.trace,
            source_idle_w=bed.source.idle_power_w(),
            target_idle_w=bed.target.idle_power_w(),
            vm_ram_mb=vm.memory.ram_mb,
        )

    def run_batch(
        self,
        scenario: MigrationScenario,
        run_indices: Sequence[int],
        on_run=None,
    ) -> list[RunResult]:
        """Execute several runs of one scenario through this runner.

        The batch-of-runs execution path (``RunBatchTask``): scenario
        validation — family machine pair, switch spec, instance-catalog
        membership — is hoisted out of the per-run loop and paid once per
        batch, while each run still derives its own independent seed via
        ``derive_seed(master, f"{label}#{index}")`` and builds its own
        testbed.  With ``settings.seed_bank >= 2`` the batch *interior*
        runs through the seed-bank SoA pass
        (:class:`~repro.experiments.seedbank.SeedBank`): lockstep runs
        share one vectorized kernel evaluation per event-free interval
        and drop to the per-run engine path wherever their timelines
        diverge.  Every run is therefore **bit-identical** to what
        :meth:`run_once` returns for the same index, whatever the batch
        shape or bank width.

        Parameters
        ----------
        scenario:
            The scenario to run.
        run_indices:
            The run indices to execute, in order (need not be contiguous:
            a worker resuming a partially-cached batch passes the holes).
        on_run:
            Optional callback invoked with each finished
            :class:`~repro.experiments.results.RunResult` as soon as it
            exists — distributed workers use it to announce progress and
            deposit into the shared cache incrementally instead of only
            after the whole batch.

        Returns
        -------
        list[RunResult]
            One result per index, in ``run_indices`` order.

        Raises
        ------
        ExperimentError
            On an empty or invalid index list, or any run failure.
        """
        from repro.cluster.machines import machine_pair, switch_spec  # local: keep import light
        from repro.experiments.instances import INSTANCE_CATALOG

        indices = list(run_indices)
        if not indices:
            raise ExperimentError("run_batch needs at least one run index")
        invalid = [
            index
            for index in indices
            if not isinstance(index, int) or isinstance(index, bool) or index < 0
        ]
        if invalid:
            # Report *every* offending index: a malformed task spec is
            # fixed in one round trip instead of one index at a time.
            raise ExperimentError(
                f"run indices must be non-negative integers, got {invalid!r}"
            )
        # Hoisted scenario validation: these raise exactly as the per-run
        # path would, just once per batch instead of once per run.
        machine_pair(scenario.family)
        switch_spec(scenario.family)
        if scenario.migrating_instance not in INSTANCE_CATALOG:
            raise ExperimentError(
                f"unknown instance {scenario.migrating_instance!r} "
                f"(catalog: {sorted(INSTANCE_CATALOG)})"
            )

        if (
            self.settings.seed_bank >= 2
            and len(indices) >= 2
            and len(set(indices)) == len(indices)
        ):
            from repro.experiments.seedbank import SeedBank  # local: avoid cycle

            return SeedBank(
                self,
                scenario,
                indices,
                width=self.settings.seed_bank,
                on_run=on_run,
            ).execute()

        runs: list[RunResult] = []
        for index in indices:
            run = self.run_once(scenario, run_index=index)
            runs.append(run)
            if on_run is not None:
                on_run(run)
        return runs

    def _manager_steps(self, bed: Testbed, scenario: MigrationScenario, recorder):
        """Let a consolidation manager detect and drain the source host.

        Builds a :class:`~repro.consolidation.datacenter.DataCenter` view
        over the testbed's own components (shared simulator, hypervisors,
        toolstack and instrumented network path), starts the manager on
        the shared :class:`~repro.simulator.control.ControlLoop` cadence
        in the runner's telemetry mode, and advances the simulation on the
        check grid until the manager's energy-aware policy issues the
        drain.  The feature recorder is pointed at ``manager.active_job``
        up front, so bandwidth rows are correct from the issue tick
        itself — not from the check-grid poll that later notices it.
        Returns the issued migration job; the measurement protocol then
        proceeds exactly as in the scripted path.
        """
        from repro.cluster.machines import switch_spec  # local: keep import light
        from repro.consolidation import (
            ConsolidationManager,
            DataCenter,
            EnergyAwarePolicy,
            Wavm3PlanningEstimator,
        )
        from repro.models.coefficients import paper_wavm3_coefficients

        cfg = self.settings
        dc = DataCenter.adopt(
            bed.sim,
            {bed.source_name: bed.source_xen, bed.target_name: bed.target_xen},
            bed.toolstack,
            switch_spec(scenario.family),
            seed=bed.seed,
            paths={(bed.source_name, bed.target_name): bed.path},
        )
        estimator = Wavm3PlanningEstimator(
            paper_wavm3_coefficients(live=scenario.live),
            config=self.migration_config,
        )
        manager = ConsolidationManager(
            dc,
            EnergyAwarePolicy(estimator, live=scenario.live),
            underload_threshold=CONSOLIDATION_UNDERLOAD,
            period_s=CONSOLIDATION_PERIOD_S,
            phase_s=CONSOLIDATION_PHASE_S,
            live=scenario.live,
            telemetry=cfg.telemetry,
            migration_config=self.migration_config,
        )
        recorder.attach_job_provider(lambda: manager.active_job)
        manager.start()
        deadline = bed.sim.now + cfg.migration_timeout_s
        try:
            while manager.migrations_issued == 0:
                if bed.sim.now >= deadline:
                    raise ExperimentError(
                        f"consolidation manager issued no migration within "
                        f"{cfg.migration_timeout_s}s ({scenario.label})"
                    )
                yield cfg.check_interval_s
        finally:
            # One measured migration per run: stop monitoring so the
            # post-migration phases stay manager-free.
            manager.stop()
        job = manager.active_job
        assert job is not None
        return job

    def _run_until_stable(self, bed: Testbed, budget_s: float) -> None:
        """Advance simulation until both meters satisfy the rule (or budget).

        Checks run on the ``check_interval_s`` grid, with a *look-ahead*:
        a meter that still needs ``k`` more in-tolerance readings cannot
        possibly satisfy the rule at a check reached before ``k`` new
        samples exist, so such checks are provably false and are elided
        by advancing several intervals at once.  The elision changes
        neither the samples taken nor the check at which stabilisation is
        first detected (only no-op checks are skipped), and it is
        evaluated identically under both telemetry modes — it simply
        lets the batched fast path process longer event-free intervals.
        """
        spent = 0.0
        check = self.settings.check_interval_s
        rule = self.stabilization
        period = min(bed.source_meter.period_s, bed.target_meter.period_s)
        while spent < budget_s:
            if bed.source_meter.stabilised(rule) and bed.target_meter.stabilised(rule):
                return
            deficit = max(
                bed.source_meter.stabilisation_deficit(rule),
                bed.target_meter.stabilisation_deficit(rule),
            )
            # The original loop would run ceil(remaining / check) more
            # checks; never skip beyond that.
            max_steps = max(1, math.ceil((budget_s - spent) / check))
            steps = 1
            # A j-interval window of length j*check holds at most
            # floor(j*check/period) + 1 sample instants.
            while (
                steps < max_steps
                and math.floor(steps * check / period) + 1 < deficit
            ):
                steps += 1
            bed.sim.run_for(check * steps)
            spent += check * steps
        # Budget exhausted: proceed — matching lab practice where a run is
        # not discarded for residual ripple, just measured longer.

    # ------------------------------------------------------------------
    def run_scenario(
        self,
        scenario: MigrationScenario,
        min_runs: Optional[int] = None,
        max_runs: Optional[int] = None,
    ) -> ScenarioResult:
        """Repeat a scenario until the paper's variance criterion holds."""
        lo = min_runs if min_runs is not None else self.settings.min_runs
        hi = max_runs if max_runs is not None else self.settings.max_runs
        if lo < 2 or hi < lo:
            raise ExperimentError(f"invalid run bounds: min={lo} max={hi}")

        runs: list[RunResult] = []
        energies: list[float] = []
        for index in range(hi):
            run = self.run_once(scenario, run_index=index)
            runs.append(run)
            energies.append(run.total_energy_j(HostRole.SOURCE))
            kept = resolve_run_count(energies, lo, hi, self.settings.variance_delta)
            if kept is not None:
                break
        return ScenarioResult(scenario, runs)

    def run_campaign(
        self,
        scenarios: Sequence[MigrationScenario],
        min_runs: Optional[int] = None,
        max_runs: Optional[int] = None,
        parallel: Optional[Union[int, str]] = None,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        spool_dir: Optional[Union[str, pathlib.Path]] = None,
        queue_options: Optional[dict] = None,
        serve: Optional[str] = None,
        http_options: Optional[dict] = None,
        batch_size: Optional[int] = 1,
        speculation: Optional["SpeculationPolicy"] = None,
    ) -> ExperimentResult:
        """Run a list of scenarios into one :class:`ExperimentResult`.

        Parameters
        ----------
        scenarios:
            The scenarios to measure (at least one).
        min_runs / max_runs:
            Bounds of the variance-stopping loop; default to
            :attr:`settings`.
        parallel:
            Number of worker processes to fan runs out across, the
            string ``"queue"`` to dispatch runs through the file-based
            distributed work queue (requires ``cache_dir`` and
            ``spool_dir``; see :mod:`repro.experiments.queue_backend`),
            or the string ``"http"`` to serve runs over the network
            task-handoff service (requires ``cache_dir`` and ``serve``;
            see :mod:`repro.experiments.http_backend`).  ``None`` or
            ``1`` keeps the in-process serial path (unless a
            ``cache_dir`` is given); results are bit-identical in every
            mode because every run's seed depends only on
            ``(master seed, scenario label, run index)``.
        cache_dir:
            Optional on-disk run cache (see
            :class:`~repro.experiments.executor.RunCache`); re-running an
            unchanged campaign then performs zero simulation runs.
        spool_dir:
            Shared task spool of the ``"queue"`` mode, served by
            ``campaign-worker`` processes (ignored otherwise).
        queue_options:
            Extra ``"queue"``-mode knobs forwarded to
            :class:`~repro.experiments.queue_backend.QueueBackend`.
        serve:
            ``HOST:PORT`` the ``"http"`` mode binds its campaign service
            to, polled by ``campaign-worker --connect`` processes
            (ignored otherwise).
        http_options:
            Extra ``"http"``-mode knobs forwarded to
            :class:`~repro.experiments.http_backend.HttpBackend`.
        batch_size:
            Runs per dispatched task: ``1`` (default) keeps the classic
            one-task-per-run dispatch, larger values batch contiguous
            seed ranges into ``RunBatchTask`` units, and ``None`` sizes
            batches automatically from backend capacity.  Results are
            bit-identical for every value.
        speculation:
            Optional
            :class:`~repro.experiments.scheduler.SpeculationPolicy`
            enabling straggler re-dispatch in the executor-backed modes
            (first valid result wins; duplicates dedupe through the run
            cache, so results stay bit-identical).  Ignored on the plain
            serial path, where there is nothing to race.

        Returns
        -------
        ExperimentResult
            One :class:`~repro.experiments.results.ScenarioResult` per
            scenario, in input order.

        Raises
        ------
        ExperimentError
            On an empty scenario list, invalid ``parallel``/run bounds,
            missing companion arguments of a distributed mode, or any
            propagated run failure.
        """
        if not scenarios:
            raise ExperimentError("campaign needs at least one scenario")
        if isinstance(parallel, str) and parallel not in ("queue", "http"):
            raise ExperimentError(
                f"parallel must be an int, 'queue' or 'http', got {parallel!r}"
            )
        if parallel in ("queue", "http"):
            from repro.experiments.executor import CampaignExecutor  # local: avoid cycle

            executor = CampaignExecutor(
                self, backend=parallel, cache_dir=cache_dir,
                spool_dir=spool_dir, queue_options=queue_options,
                serve=serve, http_options=http_options,
                batch_size=batch_size, speculation=speculation,
            )
            result = executor.run_campaign(scenarios, min_runs=min_runs, max_runs=max_runs)
            self.last_executor_stats = executor.stats
            return result
        if parallel is not None and parallel < 1:
            raise ExperimentError(f"parallel must be >= 1, got {parallel}")
        if (parallel is not None and parallel > 1) or cache_dir is not None:
            from repro.experiments.executor import CampaignExecutor  # local: avoid cycle

            executor = CampaignExecutor(
                self, jobs=parallel or 1, cache_dir=cache_dir,
                batch_size=batch_size, speculation=speculation,
            )
            result = executor.run_campaign(scenarios, min_runs=min_runs, max_runs=max_runs)
            self.last_executor_stats = executor.stats
            return result
        return ExperimentResult(
            [self.run_scenario(s, min_runs=min_runs, max_runs=max_runs) for s in scenarios]
        )
