"""Adaptive campaign scheduling: throughput modelling + speculation policy.

The wave scheduler in :mod:`repro.experiments.executor` historically
sized ``--batch-size auto`` chunks as ``ceil(missing / capacity)`` —
correct when every lane is equally fast, but a heterogeneous fleet then
finishes each wave at the pace of its slowest worker.  This module turns
the live :class:`~repro.experiments.results.ProgressEvent` stream
(already collected via ``ExecutorBackend.drain_progress()`` for the
campaign summary) into a control signal:

* :class:`ThroughputModel` keeps a per-worker EWMA of observed run and
  sample throughput and plans wave spans **proportional to worker
  speed**, so every lane's expected finish time is equal.  With no
  observations yet (cold start) it reproduces the legacy even split
  exactly, byte for byte of dispatch behaviour.

* :class:`SpeculationPolicy` decides when a still-outstanding chunk has
  become a *straggler* — the wave is mostly done and the chunk has been
  out longer than ``slowdown ×`` its expected duration — and is worth
  cloning to an idle lane.  Because every run is deterministic in
  ``(seed, label, index)`` and results are deduplicated through the
  per-run :class:`~repro.experiments.executor.RunCache` keys, a clone
  can never change campaign bytes; it can only finish earlier.

Scheduling decisions affect *only* dispatch shape and wall-clock time —
the variance-stopping rule still sees index-ordered energies, so the
returned result stays bit-identical to the serial path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.results import ProgressEvent

__all__ = [
    "SpeculationPolicy",
    "ThroughputModel",
]


class ThroughputModel:
    """Per-worker EWMA throughput tracker feeding adaptive wave planning.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in ``(0, 1]``: the weight of the newest
        observation.  ``1.0`` tracks only the latest run; small values
        smooth over noisy per-run walls.
    window:
        How many recent per-run wall times feed :meth:`median_run_wall`
        (the speculation policy's notion of a "normal" run).
    """

    def __init__(self, alpha: float = 0.3, window: int = 64) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ExperimentError(f"alpha must be in (0, 1], got {alpha}")
        if window < 1:
            raise ExperimentError(f"window must be >= 1, got {window}")
        self.alpha = float(alpha)
        self.window = int(window)
        #: worker id -> EWMA runs/sec.
        self._run_rates: dict[str, float] = {}
        #: worker id -> EWMA samples/sec (observability; not used to plan).
        self._sample_rates: dict[str, float] = {}
        #: Recent per-run wall times (all workers), newest last.
        self._recent_walls: list[float] = []
        #: ``(task_id, at)`` of events already folded in — drains overlap
        #: (sidecars are re-read, the HTTP history is not consumed), so
        #: the same announcement must never update the EWMA twice.
        self._seen: set[tuple[str, float]] = set()
        self.observations = 0

    # -- feeding --------------------------------------------------------
    def observe(self, event: ProgressEvent) -> bool:
        """Fold one progress announcement in; ``False`` if already seen."""
        stamp = (event.task_id, event.at)
        if stamp in self._seen:
            return False
        self._seen.add(stamp)
        wall = float(event.wall_s)
        if wall <= 0.0 or not math.isfinite(wall):
            return False
        run_rate = 1.0 / wall
        previous = self._run_rates.get(event.worker)
        self._run_rates[event.worker] = (
            run_rate
            if previous is None
            else self.alpha * run_rate + (1.0 - self.alpha) * previous
        )
        sample_rate = float(event.samples_per_s)
        if sample_rate > 0.0 and math.isfinite(sample_rate):
            previous = self._sample_rates.get(event.worker)
            self._sample_rates[event.worker] = (
                sample_rate
                if previous is None
                else self.alpha * sample_rate + (1.0 - self.alpha) * previous
            )
        self._recent_walls.append(wall)
        if len(self._recent_walls) > self.window:
            del self._recent_walls[: -self.window]
        self.observations += 1
        return True

    def observe_all(self, events: Sequence[ProgressEvent]) -> int:
        """Fold a drained batch in; returns how many were new."""
        return sum(1 for event in events if self.observe(event))

    # -- queries --------------------------------------------------------
    def run_rate(self, worker: str) -> Optional[float]:
        """The worker's EWMA runs/sec, or ``None`` if never observed."""
        return self._run_rates.get(worker)

    def sample_rate(self, worker: str) -> Optional[float]:
        """The worker's EWMA samples/sec, or ``None`` if never observed."""
        return self._sample_rates.get(worker)

    def workers(self) -> list[str]:
        """Workers observed so far, fastest first."""
        return sorted(self._run_rates, key=self._run_rates.__getitem__, reverse=True)

    def median_run_wall(self) -> Optional[float]:
        """Median of the recent per-run wall times (``None`` when empty)."""
        if not self._recent_walls:
            return None
        ordered = sorted(self._recent_walls)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    # -- planning -------------------------------------------------------
    def plan_spans(self, missing: int, lanes: int) -> list[int]:
        """Chunk sizes for a wave of ``missing`` runs across ``lanes``.

        With no observations the plan is exactly the legacy even split:
        ``ceil(missing / lanes)``-sized chunks.  Once workers have
        reported throughput, sizes are proportional to per-worker EWMA
        rates (largest-remainder rounding; lanes beyond the observed
        workers are assumed to run at the mean observed rate), ordered
        fastest-lane-first so the biggest chunk is claimable first.
        Sizes always sum to ``missing`` and are each >= 1 after zero
        spans are dropped.

        Parameters
        ----------
        missing:
            Runs to cover (>= 0; ``0`` plans nothing).
        lanes:
            Dispatch lanes available (>= 1).

        Returns
        -------
        list[int]
            Chunk sizes, summing to ``missing``.
        """
        if lanes < 1:
            raise ExperimentError(f"lanes must be >= 1, got {lanes}")
        if missing <= 0:
            return []
        rates = [self._run_rates[w] for w in self.workers()]
        if not rates or missing <= lanes:
            # Cold start (or nothing to balance): the legacy even split.
            size = max(1, math.ceil(missing / lanes))
            spans = [size] * (missing // size)
            if missing % size:
                spans.append(missing % size)
            return spans
        mean = sum(rates) / len(rates)
        weights = (rates[:lanes] + [mean] * max(0, lanes - len(rates)))
        total = sum(weights)
        raw = [missing * w / total for w in weights]
        sizes = [int(r) for r in raw]
        remainder = missing - sum(sizes)
        by_fraction = sorted(
            range(len(sizes)), key=lambda i: raw[i] - sizes[i], reverse=True
        )
        for i in by_fraction[:remainder]:
            sizes[i] += 1
        return [s for s in sizes if s > 0]


@dataclass(frozen=True)
class SpeculationPolicy:
    """When to clone a straggling chunk to an idle lane.

    A chunk qualifies for speculation when **all** of:

    * the policy is ``enabled``;
    * its scenario's wave is at least ``wave_fraction`` complete (runs
      finished out of the current target), so speculation spends idle
      tail capacity, not mid-wave bandwidth;
    * the chunk has been outstanding longer than ``slowdown ×`` its
      expected duration (``run count × median observed per-run wall``),
      with at least ``min_elapsed_s`` on the clock so trivial waves
      never speculate;
    * an idle lane exists and the chunk has not been cloned already.

    Cloning is always safe: results are deterministic and deduplicated
    through the per-run cache keys, so the first valid publication wins
    and the loser costs only the duplicated work.
    """

    enabled: bool = True
    wave_fraction: float = 0.5
    slowdown: float = 2.0
    min_elapsed_s: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.wave_fraction <= 1.0:
            raise ExperimentError(
                f"wave_fraction must be in [0, 1], got {self.wave_fraction}"
            )
        if self.slowdown <= 0:
            raise ExperimentError(f"slowdown must be > 0, got {self.slowdown}")
        if self.min_elapsed_s < 0:
            raise ExperimentError(
                f"min_elapsed_s must be >= 0, got {self.min_elapsed_s}"
            )

    def is_straggler(
        self,
        elapsed_s: float,
        run_count: int,
        median_run_wall: Optional[float],
        wave_done_fraction: float,
    ) -> bool:
        """Whether an outstanding chunk should be cloned now."""
        if not self.enabled or median_run_wall is None:
            return False
        if wave_done_fraction < self.wave_fraction:
            return False
        expected = max(run_count, 1) * median_run_wall
        return elapsed_s >= max(self.slowdown * expected, self.min_elapsed_s)
