"""Distributed campaign backend: a file-based work queue over a shared dir.

The wave scheduler of :class:`~repro.experiments.executor.CampaignExecutor`
only needs ``submit()`` plus completed-future semantics, so a campaign can
span machines with nothing more exotic than a directory both sides can
see (local disk for co-located workers, NFS for a cluster):

* the **coordinator** (:class:`QueueBackend`) serialises each
  :class:`~repro.experiments.executor.RunTask` to a JSON spec file in
  ``<spool>/tasks/`` and then polls the shared content-addressed
  :class:`~repro.experiments.executor.RunCache` for the result — the
  variance-stopping rule keeps running centrally, so results stay
  bit-identical to the serial path;
* any number of **workers** (:func:`run_worker`, CLI subcommand
  ``campaign-worker``) claim specs by atomically renaming them into
  ``<spool>/claims/`` (``os.rename`` — atomic on POSIX, including NFS),
  execute them through the same pure ``_execute_run`` path every other
  backend uses, and deposit results into the shared cache.

Fault tolerance is lease-based: a worker heartbeats its claim file's
mtime while executing; the coordinator requeues claims whose heartbeat
is older than ``stale_timeout`` (worker died mid-task), and a corrupt
result file is deleted and its task resubmitted rather than returned.
Because every run is deterministic given its spec, re-execution after
any of these failures reproduces the original result exactly.

Workers also publish **live progress** through the spool: after every
completed run they append a ``wavm3-progress/1`` NDJSON line to their own
sidecar under ``progress/`` (task id, runs completed, samples/sec, wall
time).  The stream is strictly observational — nothing reads it to make
scheduling decisions — but ``wavm3 campaign-status`` (and ``--follow``)
renders it, and the coordinator folds it into the campaign summary.

Spool layout::

    <spool>/
      tasks/      open task specs (one JSON file per run)
      claims/     specs claimed by a worker; mtime = worker heartbeat
      failed/     terminal task failures (error + traceback JSON)
      quarantine/ specs parked after an exhausted retry budget
                  (``on_failure="quarantine"``) — inspect and re-spool by hand
      workers/    one heartbeat file per live worker (capacity introspection)
      progress/   per-worker NDJSON progress sidecars (live campaign progress)
      stop        sentinel: workers drain and exit when it appears

Abandoned campaigns leave all of this behind; :func:`spool_gc` (CLI:
``wavm3 campaign --gc-spool``) removes artifacts older than a grace age,
with a dry-run mode.

See ``docs/parallel_campaigns.md`` ("Distributed campaigns") for the
operational guide.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import threading
import time
import traceback
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Collection, Optional, Set, Union

from repro.errors import ExperimentError
from repro.experiments.chaos import ChaosError, chaos_trip
from repro.experiments.executor import (
    ExecutorBackend,
    RunCache,
    RunTask,
    execute_batch,
)
from repro.experiments.faults import (
    RunFailure,
    TaskFailure,
    run_with_deadline,
    traceback_digest,
)
from repro.experiments.results import ProgressEvent, run_sample_count
from repro.io import (
    PersistenceError,
    append_progress_event,
    load_progress_events,
    load_run_result,
    load_task_spec,
    save_task_spec,
)

__all__ = [
    "QueueBackend",
    "QueueStats",
    "WorkerStats",
    "run_worker",
    "spool_gc",
    "spool_status",
    "task_id_for",
]

#: Schema tag of the ``failed/`` error records.
TASK_FAILURE_SCHEMA = "wavm3-taskfailure/1"

#: Schema tag of the campaign-status documents (shared by
#: :func:`spool_status` and the HTTP service's ``GET /status``).
STATUS_SCHEMA = "wavm3-campaign-status/1"


def task_id_for(task) -> str:
    """Stable spool identifier of a task: cache key prefix + run range.

    Single-run tasks keep the historical ``<key16>-NNNN`` shape; batch
    tasks append the run count (``<key16>-NNNNxC``) so a batch and its
    first run never collide in the spool.
    """
    if task.key is None:
        raise ExperimentError("queue tasks need a cache key")
    if getattr(task, "run_count", None) is not None:
        return f"{task.key[:16]}-{task.run_start:04d}x{task.run_count}"
    return f"{task.key[:16]}-{task.run_index:04d}"


def _task_run_indices(task) -> list[int]:
    """The run indices a task covers (one for :class:`RunTask`)."""
    if getattr(task, "run_count", None) is not None:
        return list(task.run_indices)
    return [task.run_index]


def _progress_ids_for(task) -> list[str]:
    """Per-run progress task ids for a task.

    Progress stays per-run even for batch tasks: each run announces
    under the id its single-run dispatch would have used, so the
    campaign summary and ``campaign-status`` are batching-agnostic.
    """
    if task.key is None:
        raise ExperimentError("queue tasks need a cache key")
    return [f"{task.key[:16]}-{index:04d}" for index in _task_run_indices(task)]


class _Spool:
    """Paths of one spool directory; creates the layout on construction
    (unless ``create=False`` — read-only inspection)."""

    def __init__(self, root: Union[str, pathlib.Path], create: bool = True) -> None:
        self.root = pathlib.Path(root)
        self.tasks = self.root / "tasks"
        self.claims = self.root / "claims"
        self.failed = self.root / "failed"
        self.quarantine = self.root / "quarantine"
        self.workers = self.root / "workers"
        self.progress = self.root / "progress"
        self.stop = self.root / "stop"
        if create:
            for directory in (
                self.tasks, self.claims, self.failed, self.quarantine,
                self.workers, self.progress,
            ):
                directory.mkdir(parents=True, exist_ok=True)

    def task_path(self, task_id: str) -> pathlib.Path:
        return self.tasks / f"{task_id}.json"

    def claim_path(self, task_id: str) -> pathlib.Path:
        return self.claims / f"{task_id}.json"

    def failure_path(self, task_id: str) -> pathlib.Path:
        return self.failed / f"{task_id}.json"

    def quarantine_path(self, task_id: str) -> pathlib.Path:
        return self.quarantine / f"{task_id}.json"


def _write_json_atomic(path: pathlib.Path, payload: dict) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8")
    tmp.replace(path)


def _measure_spool_skew(root: pathlib.Path) -> float:
    """File-server clock minus local clock, in seconds.

    Spool freshness math compares local ``time.time()`` against mtimes
    the *file server* stamped (worker heartbeats, claim leases).  On NFS
    those clocks can disagree, making live claims look abandoned (skewed
    requeue → duplicate execution) or live artifacts look GC-able.  A
    freshly-touched probe file's mtime *is* the file-server clock, so
    the difference calibrates every age computation.

    Local filesystems stamp with the local clock, so the skew is ~0
    there and the correction is a no-op.  Any OSError (read-only spool,
    probe raced away) degrades to 0 — the uncorrected behaviour.
    """
    probe = root / f".clock-probe-{os.getpid()}-{threading.get_ident()}"
    try:
        probe.touch()
        try:
            return probe.stat().st_mtime - time.time()
        finally:
            probe.unlink(missing_ok=True)
    except OSError:
        return 0.0


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------
@dataclass
class QueueStats:
    """Accounting of one coordinator's queue traffic."""

    tasks_submitted: int = 0   # specs written into the spool
    tasks_requeued: int = 0    # stale claims returned to the open queue
    tasks_resubmitted: int = 0 # lost/corrupt tasks re-spooled
    corrupt_results: int = 0   # cache files that failed validation
    leases_failed: int = 0     # claims failed after the stale-requeue budget
    tasks_quarantined: int = 0 # specs parked in quarantine/


class _QueueFuture(Future):
    """A pending queue task; resolved by the coordinator's poll loop."""

    def __init__(self, task, task_id: str) -> None:
        super().__init__()
        self.task = task
        self.task_id = task_id
        #: The result was produced into the shared cache by a worker, so
        #: the executor must not redundantly re-write it.
        self.result_in_cache = True


class QueueBackend(ExecutorBackend):
    """Coordinator end of the file-based distributed work queue.

    Parameters
    ----------
    spool_dir:
        Directory shared with the workers (created if missing).
    cache:
        The shared :class:`RunCache` workers deposit results into; the
        coordinator polls it for completions.
    poll_interval:
        Seconds between completion polls in :meth:`wait`.
    stale_timeout:
        A claim whose heartbeat mtime is older than this is considered
        abandoned and requeued.  Must comfortably exceed the workers'
        heartbeat interval (clock skew on NFS counts against it too).
    stop_workers_on_shutdown:
        Write the ``stop`` sentinel when the campaign finishes, telling
        workers to exit instead of idling for more work.
    worker_fresh_s:
        A worker-heartbeat file younger than this counts as a live worker
        for :attr:`capacity`.
    max_requeues:
        Stale-requeue budget per task (per submit): once a task's lease
        has expired this many times it is *failed* (a ``failed/`` record
        with ``retryable: false``) instead of recycled forever — the
        executor's ``on_failure`` policy then decides its fate.  ``None``
        (default) keeps the historical unbounded requeue behaviour.
    """

    name = "queue"

    def __init__(
        self,
        spool_dir: Union[str, pathlib.Path],
        cache: RunCache,
        poll_interval: float = 0.2,
        stale_timeout: float = 60.0,
        stop_workers_on_shutdown: bool = False,
        worker_fresh_s: float = 15.0,
        max_requeues: Optional[int] = None,
    ) -> None:
        if poll_interval <= 0:
            raise ExperimentError(f"poll_interval must be positive, got {poll_interval}")
        if stale_timeout <= 0:
            raise ExperimentError(f"stale_timeout must be positive, got {stale_timeout}")
        if max_requeues is not None and int(max_requeues) < 0:
            raise ExperimentError(f"max_requeues must be >= 0, got {max_requeues}")
        self.spool = _Spool(spool_dir)
        self.cache = cache
        self.poll_interval = float(poll_interval)
        self.stale_timeout = float(stale_timeout)
        self.stop_workers_on_shutdown = bool(stop_workers_on_shutdown)
        self.worker_fresh_s = float(worker_fresh_s)
        self.max_requeues = None if max_requeues is None else int(max_requeues)
        #: Stale-lease requeues per task id since its last submit.
        self._requeue_counts: dict[str, int] = {}
        self.stats = QueueStats()
        #: Task ids submitted by this coordinator: drain_progress uses it
        #: to keep sidecar events of *other* campaigns sharing the spool
        #: out of this campaign's summary.
        self._session_task_ids: Set[str] = set()
        # Spool clock-skew calibration, re-measured at most once per
        # poll interval (see _measure_spool_skew).
        self._skew = 0.0
        self._skew_measured_at: Optional[float] = None

    # -- clock-skew calibration ------------------------------------------
    def _spool_now(self) -> float:
        """The current time *on the file server's clock*.

        All freshness decisions subtract spool mtimes from this value
        (never from raw ``time.time()``), so coordinator/file-server
        clock skew cancels out.  The probe is memoized for one poll
        interval — one extra stat per poll, not per file.
        """
        mono = time.monotonic()
        if (
            self._skew_measured_at is None
            or mono - self._skew_measured_at >= self.poll_interval
        ):
            self._skew = _measure_spool_skew(self.spool.root)
            self._skew_measured_at = mono
        return time.time() + self._skew

    # -- capacity introspection -----------------------------------------
    def active_workers(self) -> int:
        """Workers whose heartbeat file is fresh enough to be alive."""
        now = self._spool_now()
        alive = 0
        for beat in self.spool.workers.glob("*.json"):
            try:
                if max(now - beat.stat().st_mtime, 0.0) <= self.worker_fresh_s:
                    alive += 1
            except OSError:
                continue  # vanished between glob and stat
        return alive

    @property
    def capacity(self) -> Optional[int]:
        """Live worker count, or ``None`` while nobody has heartbeat yet.

        ``None`` is deliberate at cold start: workers typically attach
        *after* the coordinator spools its first wave, so the executor
        falls back to its ``jobs`` setting for initial wave/batch sizing
        and re-reads capacity on every subsequent top-up.
        """
        return self.active_workers() or None

    # -- protocol --------------------------------------------------------
    def submit(self, task) -> Future:
        task_id = task_id_for(task)
        # A failure record from an earlier campaign must not resolve the
        # fresh attempt, so clear it before the spec becomes claimable;
        # a fresh attempt also gets a fresh stale-requeue budget.
        self.spool.failure_path(task_id).unlink(missing_ok=True)
        self._requeue_counts.pop(task_id, None)
        save_task_spec(task, self.spool.task_path(task_id))
        self.stats.tasks_submitted += 1
        # Workers announce progress per *run*, so a batch task owns one
        # progress id per covered index.
        self._session_task_ids.update(_progress_ids_for(task))
        return _QueueFuture(task, task_id)

    def drain_progress(self) -> list:
        """Worker progress sidecar events belonging to this campaign.

        Reads every ``progress/*.ndjson`` sidecar and keeps the events
        whose task id was submitted by this coordinator (spools are
        reusable, so sidecars may also hold lines from earlier
        campaigns).  A stale-requeued task re-executed by a second worker
        announces twice; only the latest announcement per task survives,
        so the campaign summary counts each run exactly once.
        """
        events = []
        for sidecar in sorted(self.spool.progress.glob("*.ndjson")):
            events.extend(
                e for e in load_progress_events(sidecar)
                if e.task_id in self._session_task_ids
            )
        events.sort(key=lambda e: e.at)
        latest = {e.task_id: e for e in events}
        return sorted(latest.values(), key=lambda e: e.at)

    def wait(
        self, pending: Collection[Future], timeout: Optional[float] = None
    ) -> Set[Future]:
        started = time.monotonic()
        while True:
            self._requeue_stale_claims()
            done = {future for future in pending if self._poll(future)}
            if done:
                return done
            if (
                timeout is not None
                and time.monotonic() - started + self.poll_interval > timeout
            ):
                return done  # empty: the scheduler has timers to service
            time.sleep(self.poll_interval)

    def shutdown(self) -> None:
        if self.stop_workers_on_shutdown:
            self.spool.stop.touch()

    def quarantine(self, task, task_id: str) -> bool:
        """Park a budget-exhausted task's spec in ``quarantine/``.

        The spec is preserved verbatim for post-mortem inspection (and
        manual re-spooling into ``tasks/``); its open/claimed copies are
        removed so no worker picks it up again.  The ``failed/`` record
        of the final attempt is left in place — ``spool_status()``
        reports both.
        """
        save_task_spec(task, self.spool.quarantine_path(task_id))
        self.spool.task_path(task_id).unlink(missing_ok=True)
        self.spool.claim_path(task_id).unlink(missing_ok=True)
        self.stats.tasks_quarantined += 1
        return True

    # -- internals -------------------------------------------------------
    def _poll(self, future: _QueueFuture) -> bool:
        """Resolve a future from the shared cache / failure records."""
        task = future.task
        indices = _task_run_indices(task)
        # A batch resolves only once *every* covered run is deposited and
        # valid; a corrupt run invalidates just that one cache file.
        runs = []
        complete = True
        for index in indices:
            run_path = self.cache._run_path(task.key, index)
            if not run_path.exists():
                complete = False
                continue
            run = None
            try:
                run = load_run_result(run_path)
            except PersistenceError:
                pass
            if (
                run is not None
                and run.scenario == task.scenario
                and run.run_index == index
            ):
                runs.append(run)
                continue
            # Corrupt or mismatched result: discard it and recompute —
            # a bad cache file must never reach the campaign.
            run_path.unlink(missing_ok=True)
            self.stats.corrupt_results += 1
            complete = False
        if complete and len(runs) == len(indices):
            if getattr(task, "run_count", None) is not None:
                future.set_result(runs)
            else:
                future.set_result(runs[0])
            return True
        failure = self.spool.failure_path(future.task_id)
        if failure.exists():
            try:
                record = json.loads(failure.read_text(encoding="utf-8"))
                message = record.get("error", "unknown worker failure")
            except (json.JSONDecodeError, OSError):
                record = {}
                message = "unreadable worker failure record"
            # Structured failure for the coordinator's retry budget: the
            # record's "kind"/"retryable" fields are written by current
            # workers; older records degrade to a parsed exception-class
            # prefix and a retryable default.
            head = message.split(":", 1)[0]
            kind = record.get("kind") or (
                head if head.isidentifier() else "WorkerFailure"
            )
            run_failure = RunFailure(
                task_id=future.task_id,
                scenario=task.scenario.label,
                run_indices=tuple(indices),
                attempt=1,  # the executor stamps its own attempt count
                worker=str(record.get("worker", "?")),
                kind=str(kind),
                message=str(message),
                traceback_digest=traceback_digest(record.get("traceback")),
                at=time.time(),
            )
            future.set_exception(
                TaskFailure(
                    f"queue task {future.task_id} failed: {message}",
                    failure=run_failure,
                    retryable=bool(record.get("retryable", True)),
                )
            )
            return True
        # No result, no failure: the spec must still be claimable or
        # claimed.  If both files are gone (corrupt result deleted above,
        # or spool tampering), respool the spec so the run is recomputed.
        if (
            not self.spool.task_path(future.task_id).exists()
            and not self.spool.claim_path(future.task_id).exists()
        ):
            save_task_spec(task, self.spool.task_path(future.task_id))
            self.stats.tasks_resubmitted += 1
        return False

    def _requeue_stale_claims(self) -> None:
        """Return claims with an expired heartbeat to the open queue.

        With :attr:`max_requeues` set, a task whose lease keeps expiring
        is failed (``retryable: false``) once the budget is spent — a
        worker-killing task must not be recycled to every worker in the
        fleet forever.
        """
        now = self._spool_now()
        for claim in self.spool.claims.glob("*.json"):
            try:
                if max(now - claim.stat().st_mtime, 0.0) <= self.stale_timeout:
                    continue
            except OSError:
                continue  # completed between glob and stat
            task_id = claim.stem
            spent = self._requeue_counts.get(task_id, 0)
            if self.max_requeues is not None and spent >= self.max_requeues:
                _write_json_atomic(
                    self.spool.failure_path(task_id),
                    {
                        "schema": TASK_FAILURE_SCHEMA,
                        "task_id": task_id,
                        "worker": "coordinator",
                        "error": (
                            f"lease expired {spent + 1} times "
                            f"(stale-requeue budget {self.max_requeues} exhausted)"
                        ),
                        "kind": "StaleLease",
                        "retryable": False,
                        "traceback": None,
                    },
                )
                claim.unlink(missing_ok=True)
                self.stats.leases_failed += 1
                continue
            try:
                claim.rename(self.spool.tasks / claim.name)
                self.stats.tasks_requeued += 1
                self._requeue_counts[task_id] = spent + 1
            except OSError:
                continue  # another coordinator beat us to it


def spool_status(
    spool_dir: Union[str, pathlib.Path],
    stale_timeout: float = 60.0,
    worker_fresh_s: float = 15.0,
) -> dict:
    """Summarise a spool directory for ``wavm3 campaign-status``.

    A strictly read-only scan — nothing is claimed, requeued, deleted or
    even created, so it is safe to run against a live campaign from any
    machine that can see the spool (and usable post-mortem on an
    abandoned one).

    Parameters
    ----------
    spool_dir:
        The spool directory to inspect.
    stale_timeout:
        Claims whose heartbeat mtime is older than this are reported as
        stale (the coordinator would requeue them).
    worker_fresh_s:
        Worker heartbeat files younger than this count as live.

    Returns
    -------
    dict
        Counts and details: ``tasks_open``, ``tasks_leased``,
        ``leases_stale``, ``tasks_failed``, ``tasks_quarantined`` (plus
        the ``quarantined`` task-id list), ``workers``/``workers_live``,
        ``stopping``, a ``failures`` list of the ``failed/`` records
        (task id, worker, error, kind), plus live progress: ``progress`` (one
        entry per worker sidecar — runs completed, samples/sec, last
        task, age of the last announcement) and ``progress_events`` (the
        total event count across sidecars).

    Raises
    ------
    ExperimentError
        If ``spool_dir`` does not exist — a typo'd path must not report
        an idle, healthy campaign.
    """
    root = pathlib.Path(spool_dir)
    if not root.is_dir():
        raise ExperimentError(f"spool directory {root} does not exist")
    spool = _Spool(root, create=False)
    now = time.time()

    def _ages(directory: pathlib.Path) -> list[tuple[str, float]]:
        entries = []
        for path in sorted(directory.glob("*.json")):
            try:
                entries.append((path.stem, now - path.stat().st_mtime))
            except OSError:
                continue  # vanished between glob and stat
        return entries

    claims = _ages(spool.claims)
    workers = [
        {"worker": name, "age_s": round(age, 3), "live": age <= worker_fresh_s}
        for name, age in _ages(spool.workers)
    ]
    progress = []
    progress_events = 0
    for sidecar in sorted(spool.progress.glob("*.ndjson")) if spool.progress.is_dir() else []:
        events = load_progress_events(sidecar)
        if not events:
            continue
        progress_events += len(events)
        last = events[-1]
        progress.append(
            {
                "worker": last.worker,
                "runs_completed": last.runs_completed,
                "samples_per_s": round(last.samples_per_s, 1),
                "last_task": f"{last.scenario}#{last.run_index}",
                "age_s": round(max(now - last.at, 0.0), 3),
            }
        )
    failures = []
    for path in sorted(spool.failed.glob("*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            record = {}
        failures.append(
            {
                "task_id": record.get("task_id", path.stem),
                "worker": record.get("worker", "?"),
                "error": record.get("error", "unreadable failure record"),
                "kind": record.get("kind", "?"),
            }
        )
    quarantined = (
        sorted(path.stem for path in spool.quarantine.glob("*.json"))
        if spool.quarantine.is_dir()
        else []
    )
    return {
        "schema": STATUS_SCHEMA,
        "backend": "queue",
        "spool_dir": str(spool.root),
        "tasks_open": len(list(spool.tasks.glob("*.json"))),
        "tasks_leased": len(claims),
        "leases_stale": sum(1 for _, age in claims if age > stale_timeout),
        "tasks_failed": len(failures),
        "failures": failures,
        "tasks_quarantined": len(quarantined),
        "quarantined": quarantined,
        "workers": workers,
        "workers_live": sum(1 for w in workers if w["live"]),
        "progress": progress,
        "progress_events": progress_events,
        "stopping": spool.stop.exists(),
    }


# ---------------------------------------------------------------------------
# Spool janitor
# ---------------------------------------------------------------------------
def spool_gc(
    spool_dir: Union[str, pathlib.Path],
    max_age_s: float = 3600.0,
    dry_run: bool = False,
) -> dict:
    """Garbage-collect artifacts of abandoned campaigns from a spool.

    Spools are reusable across campaigns, so a crashed coordinator (or a
    worker that never came back) leaves debris behind: unclaimed task
    specs no coordinator is polling for, claims whose lease died with
    their worker, failure records, worker heartbeats, progress sidecars,
    and the ``stop`` sentinel.  This removes every such file whose mtime
    is older than ``max_age_s`` — young files are presumed to belong to a
    live campaign and are left alone.  CLI:
    ``wavm3 campaign --gc-spool --spool-dir …`` (with ``--dry-run``).

    Parameters
    ----------
    spool_dir:
        The spool directory to clean.
    max_age_s:
        Grace age in seconds; files younger than this survive.  ``0``
        cleans everything (only safe once the campaign is known dead).
    dry_run:
        Report what *would* be removed without touching anything.

    Returns
    -------
    dict
        Per-category removal counts (``tasks``, ``claims``, ``failures``,
        ``quarantine``, ``workers``, ``progress``, ``stop``),
        ``removed_total``, the
        ``files`` list (spool-relative paths, sorted), and the echoed
        ``dry_run`` flag.

    Raises
    ------
    ExperimentError
        If ``spool_dir`` does not exist.
    """
    root = pathlib.Path(spool_dir)
    if not root.is_dir():
        raise ExperimentError(f"spool directory {root} does not exist")
    if max_age_s < 0:
        raise ExperimentError(f"max_age_s must be non-negative, got {max_age_s}")
    spool = _Spool(root, create=False)
    # Ages are judged on the file server's clock (mtimes), so calibrate
    # once for the whole sweep — a skewed coordinator clock must not GC
    # a live campaign's artifacts.
    now = time.time() + _measure_spool_skew(spool.root)
    counts = {
        "tasks": 0, "claims": 0, "failures": 0, "quarantine": 0,
        "workers": 0, "progress": 0, "stop": 0,
    }
    removed: list[str] = []

    def _sweep(directory: pathlib.Path, pattern: str, category: str) -> None:
        if not directory.is_dir():
            return
        for path in sorted(directory.glob(pattern)):
            try:
                if max(now - path.stat().st_mtime, 0.0) < max_age_s:
                    continue
                if not dry_run:
                    path.unlink()
            except OSError:
                continue  # claimed/completed underneath us: not ours to count
            counts[category] += 1
            removed.append(str(path.relative_to(spool.root)))

    _sweep(spool.tasks, "*.json", "tasks")
    _sweep(spool.claims, "*.json", "claims")
    _sweep(spool.failed, "*.json", "failures")
    _sweep(spool.quarantine, "*.json", "quarantine")
    _sweep(spool.workers, "*.json", "workers")
    _sweep(spool.progress, "*.ndjson", "progress")
    # Orphaned atomic-write temp files (writer died mid-rename).  The
    # progress dir gets them too (worker sidecar flushes), and the stop
    # sentinel's temp lands at the spool root.
    for directory, category in (
        (spool.tasks, "tasks"), (spool.claims, "claims"),
        (spool.failed, "failures"), (spool.quarantine, "quarantine"),
        (spool.workers, "workers"), (spool.progress, "progress"),
    ):
        _sweep(directory, "*.tmp", category)
    _sweep(spool.root, "stop.*.tmp", "stop")
    try:
        if spool.stop.exists() and max(now - spool.stop.stat().st_mtime, 0.0) >= max_age_s:
            if not dry_run:
                spool.stop.unlink()
            counts["stop"] += 1
            removed.append("stop")
    except OSError:
        pass
    return {
        **counts,
        "removed_total": sum(counts.values()),
        "files": removed,
        "dry_run": bool(dry_run),
    }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
@dataclass
class WorkerStats:
    """Accounting of one :func:`run_worker` invocation."""

    claimed: int = 0    # specs successfully renamed into claims/
    executed: int = 0   # runs actually simulated
    cached: int = 0     # claims satisfied by an existing cache entry
    failed: int = 0     # claims that ended in a failure record


class _ClaimHeartbeat(threading.Thread):
    """Touches a claim file's mtime so the coordinator sees a live lease."""

    def __init__(self, path: pathlib.Path, interval_s: float) -> None:
        super().__init__(daemon=True)
        self._path = path
        self._interval_s = interval_s
        self._stopped = threading.Event()

    def run(self) -> None:
        while not self._stopped.wait(self._interval_s):
            try:
                chaos_trip("heartbeat", tag=self._path.stem)
                os.utime(self._path)
            except ChaosError:
                return  # injected beat loss: the lease goes stale and is requeued
            except OSError:
                return  # claim vanished (task finished or was requeued)

    def stop(self) -> None:
        self._stopped.set()
        self.join(timeout=self._interval_s + 1.0)


def _claim_next_task(spool: _Spool) -> Optional[pathlib.Path]:
    """Atomically claim the lexicographically first open task, if any.

    ``os.rename`` either succeeds exactly once across all racing workers
    or raises ``FileNotFoundError`` for the losers — no locks needed.
    """
    for path in sorted(spool.tasks.glob("*.json")):
        target = spool.claims / path.name
        try:
            path.rename(target)
        except OSError:
            continue  # lost the race for this spec
        try:
            # rename preserves mtime, so a spec that sat in the queue longer
            # than the stale timeout would look abandoned the instant it is
            # claimed: start the lease fresh.
            os.utime(target)
        except OSError:
            # The rename already succeeded, so this claim is ours.  A
            # failed utime usually means the coordinator requeued the
            # "abandoned" spec in the race window (the claim file moved
            # back) — skip it then.  But if the claim file is still in
            # place (e.g. a transient filesystem error refreshing the
            # timestamp), abandoning a successfully claimed spec would
            # leak it until the stale scan: execute it anyway, and let
            # the heartbeat bring the lease fresh.
            if not target.exists():
                continue
        return target
    return None


def _record_failure(
    spool: _Spool, task_id: str, claim: pathlib.Path, worker_id: str,
    error: str, trace: Optional[str] = None,
    kind: Optional[str] = None, retryable: bool = True,
) -> None:
    _write_json_atomic(
        spool.failure_path(task_id),
        {
            "schema": TASK_FAILURE_SCHEMA,
            "task_id": task_id,
            "worker": worker_id,
            "error": error,
            "kind": kind,
            "retryable": bool(retryable),
            "traceback": trace,
        },
    )
    claim.unlink(missing_ok=True)


def run_worker(
    spool_dir: Union[str, pathlib.Path],
    cache_dir: Union[str, pathlib.Path],
    poll_interval: float = 0.5,
    heartbeat_s: float = 5.0,
    max_tasks: Optional[int] = None,
    idle_exit_s: Optional[float] = None,
    worker_id: Optional[str] = None,
    verify_keys: bool = True,
    run_timeout: Optional[float] = None,
) -> WorkerStats:
    """Serve a spool directory until stopped: claim, execute, deposit.

    Parameters
    ----------
    spool_dir / cache_dir:
        The shared spool and run cache (same values the coordinator uses).
    poll_interval:
        Base sleep between scans while the queue is empty; consecutive
        empty scans back off exponentially (capped near ``heartbeat_s``)
        so a big idle fleet does not hammer the shared filesystem.
    heartbeat_s:
        Cadence of claim-mtime and worker-liveness heartbeats; must stay
        well under the coordinator's ``stale_timeout``.
    max_tasks:
        Exit after claiming this many specs (``None`` = unbounded).
    idle_exit_s:
        Exit after this long without claimable work (``None`` = serve
        forever, until the ``stop`` sentinel appears).
    worker_id:
        Spool-unique identifier; defaults to ``<hostname>-<pid>``.
    verify_keys:
        Recompute each spec's cache key and refuse mismatching specs
        (defence against corrupted or tampered spool files).
    run_timeout:
        Watchdog deadline per run, in seconds: a claimed batch may take
        at most ``run_timeout * len(batch)`` of wall clock before the
        worker abandons it with a failure record instead of hanging the
        lease forever.  ``None`` disables the watchdog.

    Returns
    -------
    WorkerStats
        What this worker claimed, executed, served from cache and failed.
    """
    spool = _Spool(spool_dir)
    cache = RunCache(cache_dir)
    wid = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    beat_path = spool.workers / f"{wid}.json"
    stats = WorkerStats()
    idle_since = time.monotonic()
    last_beat = 0.0
    idle_scans = 0
    # Idle polls back off exponentially, but never so far that the worker
    # misses its own heartbeat cadence (which also bounds stop latency).
    idle_cap = max(poll_interval, min(poll_interval * 16.0, heartbeat_s))

    try:
        while True:
            if spool.stop.exists():
                break
            if max_tasks is not None and stats.claimed >= max_tasks:
                break
            now = time.monotonic()
            if now - last_beat >= heartbeat_s or not beat_path.exists():
                _write_json_atomic(beat_path, {"worker": wid, "pid": os.getpid()})
                last_beat = now
            try:
                chaos_trip("claim", tag=wid)
                claim = _claim_next_task(spool)
            except ChaosError:
                claim = None  # injected claim loss: retry on the next scan
            if claim is None:
                if idle_exit_s is not None and now - idle_since >= idle_exit_s:
                    break
                time.sleep(min(poll_interval * (2.0 ** idle_scans), idle_cap))
                idle_scans = min(idle_scans + 1, 16)  # 2**16 already clears any cap
                continue
            idle_scans = 0
            stats.claimed += 1
            _process_claim(
                spool, cache, claim, wid, heartbeat_s, verify_keys, stats,
                run_timeout=run_timeout,
            )
            # Execution time must not count as idle time, so the clock
            # restarts only after the claim is fully processed.
            idle_since = time.monotonic()
    finally:
        beat_path.unlink(missing_ok=True)
    return stats


def _process_claim(
    spool: _Spool,
    cache: RunCache,
    claim: pathlib.Path,
    worker_id: str,
    heartbeat_s: float,
    verify_keys: bool,
    stats: WorkerStats,
    run_timeout: Optional[float] = None,
) -> None:
    task_id = claim.stem
    try:
        task = load_task_spec(claim)
        if verify_keys:
            expected = RunCache.scenario_key(
                task.seed, task.scenario, task.settings,
                task.migration_config, task.stabilization,
            )
            if task.key != expected:
                raise PersistenceError(
                    f"embedded cache key {task.key!r} does not match the spec"
                )
    except PersistenceError as exc:
        if not claim.exists():
            return  # lease lost (requeued mid-read) — not this worker's task
        _record_failure(
            spool, task_id, claim, worker_id, str(exc),
            kind=type(exc).__name__,
        )
        stats.failed += 1
        return

    def _announce(run, counted: int) -> None:
        """Append the progress line *before* the result becomes visible in
        the cache: a coordinator that resolves the final run and drains the
        sidecars immediately must still see every announcement.  Each run
        announces under its own per-run id (which equals the claim stem
        for single-run tasks), so batching is invisible to the stream."""
        nonlocal mark
        wall = max(time.perf_counter() - mark, 1e-9)
        mark = time.perf_counter()
        samples = run_sample_count(run)
        event = ProgressEvent(
            task_id=f"{task.key[:16]}-{run.run_index:04d}",
            scenario=task.scenario.label,
            run_index=run.run_index,
            worker=worker_id,
            runs_completed=counted,
            samples=samples,
            wall_s=wall,
            samples_per_s=samples / wall,
            at=time.time(),
        )
        try:
            chaos_trip("publish", tag=task.scenario.label)
            append_progress_event(event, spool.progress / f"{worker_id}.ndjson")
        except (OSError, ChaosError):
            pass  # progress is observational: never fail the task over it

    def _deposit(run) -> None:
        stats.executed += 1
        _announce(run, stats.executed + stats.cached)
        cache.put(task.key, run, key_payload=task.key_payload())

    heartbeat = _ClaimHeartbeat(claim, heartbeat_s)
    heartbeat.start()
    mark = time.perf_counter()
    try:
        # Runs already in the cache (a requeued-but-actually-completed
        # task, or part of a batch a previous worker half-finished)
        # short-circuit here instead of re-simulating.
        missing = []
        for index in _task_run_indices(task):
            run = cache.get(task.key, task.scenario, index)
            if run is not None:
                stats.cached += 1
                _announce(run, stats.executed + stats.cached)
            else:
                missing.append(index)
        if missing:
            # One runner instance serves the whole seed wave — scenario
            # validation is hoisted, per-run seeds stay derive_seed-exact.
            # The watchdog deadline scales with the batch: every run gets
            # its run_timeout allowance.
            run_with_deadline(
                lambda: execute_batch(
                    task.seed, task.settings, task.migration_config,
                    task.stabilization, task.scenario, missing,
                    on_run=_deposit,
                ),
                None if run_timeout is None else run_timeout * len(missing),
                label=f"task {task_id} ({len(missing)} runs)",
            )
    except Exception as exc:  # noqa: BLE001 - any failure must reach the coordinator
        _record_failure(
            spool, task_id, claim, worker_id,
            f"{type(exc).__name__}: {exc}", traceback.format_exc(),
            kind=type(exc).__name__,
        )
        stats.failed += 1
    else:
        claim.unlink(missing_ok=True)
    finally:
        heartbeat.stop()
