"""Streaming columnar campaign-sample aggregation (``wavm3-columnar/1``).

A full Table IIa campaign holds hundreds of runs and every run yields
two :class:`~repro.models.features.MigrationSample` records with seven
per-reading arrays each; :func:`repro.io.save_samples_json` materialises
the complete sample list, one dict per sample *and* the final dump
string — O(total runs) coordinator memory three times over.  This module
keeps aggregation at **O(flush window)**:

* :class:`ColumnarStore` appends samples into numpy-backed column
  buffers and spills one compressed ``.npz`` shard per flush window,
  with an NDJSON *manifest* recording, in order, one row per sample
  (scalar fields + ``(shard, slot)`` addressing) and one row per shard.
  Online per-column :class:`OnlineMoments` (count/mean/variance) are
  maintained while streaming and written as the manifest's ``summary``
  row, so campaign statistics never need a second pass.

* :func:`iter_columnar_samples` streams the store back in insertion
  order, holding one shard in memory at a time.

* :func:`write_samples_json_streaming` emits exactly the bytes of
  :func:`repro.io.save_samples_json` — same schema envelope, same
  ``json.dumps`` separators, same per-record field order — while
  holding one sample at a time, so the columnar path is **byte-
  identical** to the JSON path on every scenario archetype (pinned by
  ``tests/test_aggregate.py``).

Wire format (``wavm3-columnar/1``)::

    <dir>/manifest.ndjson      # header, then sample/shard/summary rows
    <dir>/shard-00000.npz      # one per flush window (compressed)

Shard layout: for every array field ``F`` of the samples schema the
shard holds ``F`` (all samples' values concatenated) and ``F_len``
(int64 per-sample lengths, so slot offsets are a cumulative sum).
Scalar fields, role and notes live in the manifest's sample rows —
JSON-native types round-trip losslessly, which the byte-identity
guarantee requires.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Iterable, Iterator, Optional, Union

import numpy as np

from repro.errors import ExperimentError
from repro.io import (
    COLUMNAR_SCHEMA,
    SAMPLES_SCHEMA,
    PersistenceError,
    _ARRAY_FIELDS,
    _SCALAR_FIELDS,
    _sample_from_dict,
    _sample_to_dict,
)
from repro.models.features import MigrationSample

__all__ = [
    "ColumnarStore",
    "OnlineMoments",
    "iter_columnar_samples",
    "load_columnar_summary",
    "write_samples_json_streaming",
]

_PathLike = Union[str, pathlib.Path]

#: Scalar sample fields folded into the online summary statistics (the
#: string/bool/index fields are identifiers, not measurements).
_NUMERIC_SCALARS = (
    "data_bytes", "mem_mb", "mean_bw_bps",
    "energy_initiation_j", "energy_transfer_j", "energy_activation_j",
    "downtime_s",
)


class OnlineMoments:
    """Streaming count/mean/variance (Welford / Chan merge form).

    Numerically stable single-pass accumulation: scalars fold in via
    :meth:`push`, whole array chunks via :meth:`push_many` (the chunk's
    moments are computed vectorised, then merged).  ``variance`` matches
    ``np.var(..., ddof=1)`` up to floating-point reassociation — these
    are observability statistics, not part of any byte-identity
    contract.
    """

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def push(self, value: float) -> None:
        """Fold one observation in."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def push_many(self, values) -> None:
        """Fold a chunk of observations in (vectorised, then merged)."""
        chunk = np.asarray(values, dtype=np.float64).ravel()
        n = chunk.size
        if n == 0:
            return
        chunk_mean = float(chunk.mean())
        chunk_m2 = float(((chunk - chunk_mean) ** 2).sum())
        if self.count == 0:
            self.count, self.mean, self._m2 = n, chunk_mean, chunk_m2
            return
        total = self.count + n
        delta = chunk_mean - self.mean
        self._m2 += chunk_m2 + delta * delta * self.count * n / total
        self.mean += delta * n / total
        self.count = total

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN below two observations."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); NaN below two observations."""
        variance = self.variance
        return math.sqrt(variance) if not math.isnan(variance) else variance

    def as_dict(self) -> dict:
        """JSON-ready ``{count, mean, var}`` (NaN serialised as ``None``)."""
        variance = self.variance
        return {
            "count": self.count,
            "mean": self.mean if self.count else None,
            "var": None if math.isnan(variance) else variance,
        }


class ColumnarStore:
    """Append-only streaming writer of a ``wavm3-columnar/1`` store.

    Parameters
    ----------
    root:
        Directory of the store (created if missing).  Refuses a
        directory that already holds a manifest — stores are per
        campaign, never mixed.
    flush_window:
        Samples buffered before spilling one compressed shard; this is
        the aggregation path's entire working-set bound.

    Raises
    ------
    ExperimentError
        On an invalid flush window or a root already holding a store.
    """

    MANIFEST = "manifest.ndjson"

    def __init__(self, root: _PathLike, flush_window: int = 256) -> None:
        if flush_window < 1:
            raise ExperimentError(f"flush_window must be >= 1, got {flush_window}")
        self.root = pathlib.Path(root)
        self.flush_window = int(flush_window)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest = self.root / self.MANIFEST
        if self._manifest.exists():
            raise ExperimentError(
                f"{self.root} already holds a columnar store "
                "(one store per campaign; pick a fresh directory)"
            )
        self.samples = 0
        self.shards = 0
        self.moments: dict[str, OnlineMoments] = {
            name: OnlineMoments() for name in _ARRAY_FIELDS + _NUMERIC_SCALARS
        }
        self._buffer: list[MigrationSample] = []
        self._finalized = False
        self._append_line({
            "schema": COLUMNAR_SCHEMA,
            "flush_window": self.flush_window,
        })

    # -- writing --------------------------------------------------------
    def append(self, sample: MigrationSample) -> None:
        """Buffer one sample; spills a shard every ``flush_window``."""
        if self._finalized:
            raise ExperimentError("columnar store is finalized")
        self._buffer.append(sample)
        for name in _ARRAY_FIELDS:
            self.moments[name].push_many(getattr(sample, name))
        for name in _NUMERIC_SCALARS:
            self.moments[name].push(float(getattr(sample, name)))
        self.samples += 1
        if len(self._buffer) >= self.flush_window:
            self._flush()

    def extend(self, samples: Iterable[MigrationSample]) -> None:
        """Append every sample of an iterable (streaming, in order)."""
        for sample in samples:
            self.append(sample)

    def finalize(self) -> dict:
        """Spill the tail shard and write the manifest's summary row.

        Returns
        -------
        dict
            The summary row: total sample/shard counts plus per-column
            online moments.
        """
        if self._finalized:
            raise ExperimentError("columnar store is already finalized")
        if self._buffer:
            self._flush()
        summary = {
            "kind": "summary",
            "samples": self.samples,
            "shards": self.shards,
            "columns": {
                name: self.moments[name].as_dict()
                for name in _ARRAY_FIELDS + _NUMERIC_SCALARS
            },
        }
        self._append_line(summary)
        self._finalized = True
        return summary

    def _shard_path(self, index: int) -> pathlib.Path:
        return self.root / f"shard-{index:05d}.npz"

    def _flush(self) -> None:
        """One shard: array columns to ``.npz``, sample rows to the manifest."""
        index = self.shards
        arrays: dict[str, np.ndarray] = {}
        for name in _ARRAY_FIELDS:
            dtype = np.int64 if name == "phase" else np.float64
            columns = [
                np.asarray(getattr(sample, name), dtype=dtype)
                for sample in self._buffer
            ]
            arrays[name] = (
                np.concatenate(columns) if columns else np.empty(0, dtype=dtype)
            )
            arrays[f"{name}_len"] = np.array(
                [column.size for column in columns], dtype=np.int64
            )
        np.savez_compressed(self._shard_path(index), **arrays)
        lines = []
        for slot, sample in enumerate(self._buffer):
            row = {"kind": "sample", "shard": index, "slot": slot,
                   "role": sample.role.value, "notes": dict(sample.notes)}
            for name in _SCALAR_FIELDS:
                row[name] = getattr(sample, name)
            lines.append(row)
        lines.append({
            "kind": "shard",
            "index": index,
            "file": self._shard_path(index).name,
            "samples": len(self._buffer),
        })
        self._append_line(*lines)
        self.shards += 1
        self._buffer = []

    def _append_line(self, *rows: dict) -> None:
        with self._manifest.open("a", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")


def _manifest_rows(root: pathlib.Path) -> Iterator[dict]:
    """Validated manifest rows of a store (header checked, then yielded)."""
    manifest = root / ColumnarStore.MANIFEST
    try:
        lines = manifest.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise PersistenceError(f"{manifest}: unreadable manifest: {exc}") from exc
    header: Optional[dict] = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"{manifest}: malformed row: {exc}") from exc
        if header is None:
            header = row
            if not isinstance(row, dict) or row.get("schema") != COLUMNAR_SCHEMA:
                raise PersistenceError(
                    f"{manifest}: unexpected schema "
                    f"{row.get('schema') if isinstance(row, dict) else row!r} "
                    f"(want {COLUMNAR_SCHEMA!r})"
                )
            continue
        yield row


class _ShardReader:
    """Slot-addressable view of one shard (arrays split per sample)."""

    def __init__(self, root: pathlib.Path, index: int) -> None:
        path = root / f"shard-{index:05d}.npz"
        try:
            with np.load(path) as payload:
                self._columns = {}
                for name in _ARRAY_FIELDS:
                    lengths = payload[f"{name}_len"]
                    offsets = np.concatenate(([0], np.cumsum(lengths)))
                    data = payload[name]
                    self._columns[name] = [
                        data[offsets[i]:offsets[i + 1]]
                        for i in range(lengths.size)
                    ]
        except (OSError, KeyError, ValueError) as exc:
            raise PersistenceError(f"{path}: unreadable shard: {exc}") from exc

    def arrays_for(self, slot: int) -> dict:
        try:
            return {name: self._columns[name][slot] for name in _ARRAY_FIELDS}
        except IndexError as exc:
            raise PersistenceError(f"shard has no slot {slot}") from exc


def iter_columnar_samples(root: _PathLike) -> Iterator[MigrationSample]:
    """Stream a store's samples back in insertion order, one shard at a time.

    Parameters
    ----------
    root:
        A directory written by :class:`ColumnarStore`.

    Yields
    ------
    MigrationSample
        Each sample, bit-identical arrays and all (float64/int64 columns
        round-trip exactly through the ``.npz`` shards, scalar fields
        through the JSON manifest).

    Raises
    ------
    PersistenceError
        On a missing/malformed manifest or shard.
    """
    root = pathlib.Path(root)
    reader: Optional[_ShardReader] = None
    reader_index = -1
    for row in _manifest_rows(root):
        if row.get("kind") != "sample":
            continue
        shard, slot = int(row["shard"]), int(row["slot"])
        if shard != reader_index:
            reader = _ShardReader(root, shard)
            reader_index = shard
        record = {"role": row["role"], "notes": row.get("notes", {})}
        try:
            for name in _SCALAR_FIELDS:
                record[name] = row[name]
        except KeyError as exc:
            raise PersistenceError(f"manifest sample row missing {exc}") from exc
        assert reader is not None
        record.update(reader.arrays_for(slot))
        yield _sample_from_dict(record)


def load_columnar_summary(root: _PathLike) -> Optional[dict]:
    """The manifest's ``summary`` row, or ``None`` if never finalized."""
    summary = None
    for row in _manifest_rows(pathlib.Path(root)):
        if row.get("kind") == "summary":
            summary = row
    return summary


def write_samples_json_streaming(
    samples: Iterable[MigrationSample], path: _PathLike
) -> int:
    """Write a samples JSON file holding one sample in memory at a time.

    Emits **exactly** the bytes of :func:`repro.io.save_samples_json`
    for the same sample sequence: the envelope is assembled with the
    same ``json.dumps`` default separators (``", "`` between items,
    ``": "`` after keys) the one-shot dump uses, and each record goes
    through the same :func:`repro.io._sample_to_dict` field order.

    Parameters
    ----------
    samples:
        The sample stream (e.g. :func:`iter_columnar_samples` or
        :meth:`~repro.experiments.results.ExperimentResult.iter_samples`).
    path:
        Output file.

    Returns
    -------
    int
        How many samples were written.
    """
    path = pathlib.Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write('{"schema": ' + json.dumps(SAMPLES_SCHEMA) + ', "samples": [')
        for sample in samples:
            if count:
                handle.write(", ")
            handle.write(json.dumps(_sample_to_dict(sample)))
            count += 1
        handle.write("]}")
    return count
