"""Parallel campaign execution with a content-addressed run cache.

The paper's measurement protocol repeats every scenario at least ten
times and a full Table IIa campaign multiplies that across 42 scenarios —
yet every run is seeded independently via
``derive_seed(master, f"{label}#{index}")``, which makes a campaign
embarrassingly parallel at run granularity.  This module exploits that:

* :class:`CampaignExecutor` fans runs out across an
  :class:`ExecutorBackend` — worker processes (``process`` backend on
  :class:`concurrent.futures.ProcessPoolExecutor`), inline execution
  (``serial`` backend), a shared-filesystem work queue served by
  remote worker processes (``queue`` backend,
  :mod:`repro.experiments.queue_backend`) or an embedded HTTP
  task-handoff service polled by remote workers over the network
  (``http`` backend, :mod:`repro.experiments.http_backend`) — while
  preserving the
  adaptive variance-stopping loop of Section V-B.  Runs are dispatched in
  *waves*: each scenario starts with ``min_runs`` runs, the 10 % variance
  criterion is evaluated on the completed, index-ordered energies
  (:func:`~repro.experiments.runner.resolve_run_count` — the same pure
  function the serial path uses), and unsatisfied scenarios are topped up
  wave by wave until ``max_runs``.  Speculative top-up runs beyond the
  stopping point are discarded from the result (but kept in the cache),
  so the returned :class:`~repro.experiments.results.ExperimentResult` is
  **bit-identical** to the serial path for any worker count.

* :class:`RunCache` is a content-addressed on-disk cache of individual
  run results.  The key is a SHA-256 over the canonical JSON of the
  master seed, the scenario spec, the :class:`RunnerSettings`, the
  :class:`MigrationConfig` override and the stabilisation rule — so any
  change to the execution protocol invalidates the cache, while
  analysis-only changes re-use every run.  Layout::

      <cache-dir>/<key[:2]>/<key>/meta.json     # human-readable key inputs
      <cache-dir>/<key[:2]>/<key>/run-0003.pkl  # one RunResult per run

* :class:`ExecutorBackend` is the formal protocol the wave scheduler
  drives: ``submit()`` a :class:`RunTask`, ``wait()`` for completions,
  ``shutdown()`` when the campaign is over, with :attr:`capacity`
  introspection feeding the default wave size.  Any object implementing
  it (a cluster scheduler, an RPC fan-out, …) can back a campaign.

See ``docs/parallel_campaigns.md`` for the full design discussion.
"""

from __future__ import annotations

import abc
import dataclasses
import hashlib
import json
import math
import os
import pathlib
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Collection, Optional, Sequence, Set, Union

from repro.errors import ExperimentError
from repro.experiments.chaos import ChaosError, chaos_trip
from repro.experiments.design import MigrationScenario
from repro.experiments.faults import (
    ON_FAILURE_MODES,
    FailureLedger,
    RetryPolicy,
    RunFailure,
    failure_from_exception,
    run_with_deadline,
)
from repro.experiments.results import (
    ExperimentResult,
    ProgressEvent,
    RunResult,
    ScenarioResult,
    run_sample_count,
)
from repro.experiments.runner import RunnerSettings, ScenarioRunner, resolve_run_count
from repro.experiments.scheduler import SpeculationPolicy, ThroughputModel
from repro.hypervisor.migration import MigrationConfig
from repro.io import PersistenceError, load_run_result, save_run_result
from repro.models.features import HostRole
from repro.telemetry.stabilization import StabilizationRule

__all__ = [
    "CampaignExecutor",
    "ExecutorBackend",
    "ExecutorStats",
    "ProcessBackend",
    "RunBatchTask",
    "RunCache",
    "RunTask",
    "SerialBackend",
    "execute_batch",
    "CACHE_KEY_SCHEMA",
]

#: Versions the cache-key derivation itself: bump to invalidate every
#: existing cache entry after a change to run semantics.
#: /2: MigrationScenario gained the ``driver`` field (consolidation-manager
#: scenarios), which changes the canonical scenario payload.
CACHE_KEY_SCHEMA = "wavm3-run-cache/2"


def _execute_run(
    seed: int,
    settings: RunnerSettings,
    migration_config: Optional[MigrationConfig],
    stabilization: StabilizationRule,
    scenario: MigrationScenario,
    run_index: int,
) -> RunResult:
    """Worker entry point: one instrumented run, self-contained and picklable."""
    chaos_trip("execute", tag=f"{scenario.label}#{run_index}")
    runner = ScenarioRunner(
        seed=seed,
        settings=settings,
        migration_config=migration_config,
        stabilization=stabilization,
    )
    return runner.run_once(scenario, run_index=run_index)


# ---------------------------------------------------------------------------
# Run task spec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RunTask:
    """Everything a backend needs to execute one run, picklable/serialisable.

    A task is the unit of dispatch of every backend: the process backend
    pickles it to a worker process, the queue backend serialises it to a
    JSON spool file (:func:`repro.io.save_task_spec`) claimed by remote
    ``campaign-worker`` processes.  ``key`` carries the scenario's
    :class:`RunCache` key when a cache is in play, so workers can deposit
    results straight into the shared cache.
    """

    seed: int
    settings: RunnerSettings
    migration_config: Optional[MigrationConfig]
    stabilization: StabilizationRule
    scenario: MigrationScenario
    run_index: int
    key: Optional[str] = None

    def execute(self) -> RunResult:
        """Run this task in the current process (the pure serial code path).

        Returns
        -------
        RunResult
            The instrumented run — identical bytes for every backend,
            because the run's seed depends only on
            ``(seed, scenario.label, run_index)``.
        """
        return _execute_run(
            self.seed,
            self.settings,
            self.migration_config,
            self.stabilization,
            self.scenario,
            self.run_index,
        )

    def key_payload(self) -> dict:
        """The cache-key ingredients of this task (see :class:`RunCache`).

        Returns
        -------
        dict
            The canonical key payload; its SHA-256 digest must equal
            :attr:`key` for a trustworthy task spec.
        """
        return RunCache._key_payload(
            self.seed, self.scenario, self.settings,
            self.migration_config, self.stabilization,
        )


def execute_batch(
    seed: int,
    settings: RunnerSettings,
    migration_config: Optional[MigrationConfig],
    stabilization: StabilizationRule,
    scenario: MigrationScenario,
    run_indices: Sequence[int],
    on_run=None,
) -> list[RunResult]:
    """Worker entry point for a whole seed wave through one runner.

    One :class:`ScenarioRunner` instance executes every index of the
    batch (scenario validation hoisted, per-run RNG streams still derived
    independently via ``derive_seed``), so the per-run interpreter and
    setup cost is paid once per batch rather than once per run.  Each
    run's bytes are identical to :func:`_execute_run` for the same index.

    Parameters
    ----------
    seed / settings / migration_config / stabilization / scenario:
        The shared run-stream parameters (see :class:`RunTask`).
    run_indices:
        The indices to execute, in order (not necessarily contiguous: a
        worker resuming a partially-cached batch passes only the holes).
    on_run:
        Optional per-run callback (progress announcement, incremental
        cache deposit); forwarded to
        :meth:`~repro.experiments.runner.ScenarioRunner.run_batch`.

    Returns
    -------
    list[RunResult]
        One result per index, in ``run_indices`` order.
    """
    # The "execute" chaos seam, tripped once per run of the batch (an
    # injected crash fails the whole claim, exactly like a real one).
    for index in run_indices:
        chaos_trip("execute", tag=f"{scenario.label}#{index}")
    runner = ScenarioRunner(
        seed=seed,
        settings=settings,
        migration_config=migration_config,
        stabilization=stabilization,
    )
    return runner.run_batch(scenario, run_indices, on_run=on_run)


@dataclass(frozen=True)
class RunBatchTask:
    """A contiguous seed range of one scenario, dispatched as one unit.

    The batch variant of :class:`RunTask` (``wavm3-taskspec/2`` on the
    wire): same scenario, same settings, runs ``run_start`` through
    ``run_start + run_count - 1``.  Executing it routes the whole wave
    through a single :class:`ScenarioRunner` (:func:`execute_batch`), so
    dispatch and setup overhead is amortised across the batch while every
    run's seed — and therefore its bytes — stays exactly what the per-run
    path produces.  Cache entries remain **per-run** (``run-NNNN.pkl``
    under the same scenario key), so warm reruns and per-run progress are
    unchanged.
    """

    seed: int
    settings: RunnerSettings
    migration_config: Optional[MigrationConfig]
    stabilization: StabilizationRule
    scenario: MigrationScenario
    run_start: int
    run_count: int
    key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.run_start < 0 or self.run_count < 1:
            raise ExperimentError(
                f"invalid batch range: start={self.run_start} count={self.run_count}"
            )

    @property
    def run_indices(self) -> range:
        """The run indices this batch covers, in execution order."""
        return range(self.run_start, self.run_start + self.run_count)

    def execute(self, on_run=None) -> list[RunResult]:
        """Run the whole batch in the current process.

        Parameters
        ----------
        on_run:
            Optional per-run callback (see :func:`execute_batch`).

        Returns
        -------
        list[RunResult]
            One result per index, in ascending index order.
        """
        return execute_batch(
            self.seed,
            self.settings,
            self.migration_config,
            self.stabilization,
            self.scenario,
            self.run_indices,
            on_run=on_run,
        )

    def key_payload(self) -> dict:
        """The cache-key ingredients (identical to the per-run task's)."""
        return RunCache._key_payload(
            self.seed, self.scenario, self.settings,
            self.migration_config, self.stabilization,
        )


def _contiguous_spans(indices: Sequence[int]) -> list[list[int]]:
    """Split ascending ``indices`` into maximal contiguous runs.

    Batch tasks carry a (start, count) range, so a gap — e.g. a cache
    hit in the middle of a wave — forces a span break.
    """
    spans: list[list[int]] = []
    for index in indices:
        if spans and index == spans[-1][-1] + 1:
            spans[-1].append(index)
        else:
            spans.append([index])
    return spans


def _execute_task(task, run_timeout: Optional[float] = None) -> Union[RunResult, list]:
    """Module-level trampoline so task dispatch can pickle (both
    :class:`RunTask` and :class:`RunBatchTask`).

    ``run_timeout`` arms the per-run watchdog
    (:func:`~repro.experiments.faults.run_with_deadline`): a batch task's
    deadline is ``run_timeout`` times its run count, so the budget scales
    with the dispatched work.
    """
    if run_timeout is None:
        return task.execute()
    count = int(getattr(task, "run_count", 1) or 1)
    return run_with_deadline(
        task.execute,
        run_timeout * count,
        label=f"task {task.scenario.label!r} ({count} run{'s' if count > 1 else ''})",
    )


def _execute_task_timed(task, run_timeout: Optional[float] = None):
    """Like :func:`_execute_task`, plus the worker-side wall time.

    The process backend uses this so progress events report the run's
    true execution time — submit-to-collect timing on the coordinator
    would fold pool queueing and collection delay into ``wall_s``.
    """
    started = time.perf_counter()
    run = _execute_task(task, run_timeout)
    return run, time.perf_counter() - started


# ---------------------------------------------------------------------------
# Run cache
# ---------------------------------------------------------------------------
class RunCache:
    """Content-addressed on-disk cache of individual run results.

    Every run is stored under a *scenario key* — the SHA-256 of the
    canonical JSON of everything that determines the run's outcome — plus
    its run index.  Unreadable or wrong-schema entries count as misses,
    and an entry whose ``meta.json`` fails schema/hash validation is
    distrusted wholesale: its runs are recomputed rather than returned.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        #: Payload bytes served from / persisted into the cache — the
        #: warm-rerun and speculation-dedup observability counters
        #: surfaced by the campaign summary and ``campaign-status``.
        self.bytes_read = 0
        self.bytes_written = 0
        #: Per-key memo of the meta.json validation verdict.
        self._meta_verdict: dict[str, bool] = {}

    def counters(self) -> dict:
        """Hit/miss/byte counters as a JSON-ready dict (status views)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    # -- keying ---------------------------------------------------------
    @staticmethod
    def scenario_key(
        seed: int,
        scenario: MigrationScenario,
        settings: RunnerSettings,
        migration_config: Optional[MigrationConfig],
        stabilization: StabilizationRule,
    ) -> str:
        """Hex digest identifying one scenario's run stream exhaustively."""
        payload = RunCache._key_payload(
            seed, scenario, settings, migration_config, stabilization
        )
        return RunCache._payload_digest(payload)

    @staticmethod
    def _payload_digest(payload: dict) -> str:
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @staticmethod
    def _key_payload(
        seed: int,
        scenario: MigrationScenario,
        settings: RunnerSettings,
        migration_config: Optional[MigrationConfig],
        stabilization: StabilizationRule,
    ) -> dict:
        settings_payload = dataclasses.asdict(settings)
        # The telemetry implementation ("batched" vs "events"), the
        # compute kernel ("python"/"numpy"/"numba") and the seed-bank
        # width (batch-interior banking) are proven bit-identical
        # (cross-path, cross-mode and cross-bank golden tests), so they
        # must not split the cache: a campaign warmed in one mode serves
        # every other.
        settings_payload.pop("telemetry", None)
        settings_payload.pop("compute", None)
        settings_payload.pop("seed_bank", None)
        return {
            "schema": CACHE_KEY_SCHEMA,
            "seed": int(seed),
            "scenario": dataclasses.asdict(scenario),
            "settings": settings_payload,
            "migration_config": (
                dataclasses.asdict(migration_config)
                if migration_config is not None
                else None
            ),
            "stabilization": dataclasses.asdict(stabilization),
        }

    def _entry_dir(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / key

    def _run_path(self, key: str, run_index: int) -> pathlib.Path:
        return self._entry_dir(key) / f"run-{run_index:04d}.pkl"

    def _meta_ok(self, key: str) -> bool:
        """Validate an entry's ``meta.json`` against the key, memoised.

        A missing meta is fine (run payloads are self-validating pickles;
        the meta may simply not have been written yet), but a meta that
        is unreadable, carries the wrong schema tag, or whose canonical
        JSON does not hash back to the key marks the whole entry as
        untrustworthy — runs under it are recomputed, never returned.
        """
        verdict = self._meta_verdict.get(key)
        if verdict is not None:
            return verdict
        path = self._entry_dir(key) / "meta.json"
        ok = True
        if path.exists():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                ok = (
                    isinstance(payload, dict)
                    and payload.get("schema") == CACHE_KEY_SCHEMA
                    and self._payload_digest(payload) == key
                )
            except (json.JSONDecodeError, OSError):
                ok = False
        self._meta_verdict[key] = ok
        return ok

    # -- access ---------------------------------------------------------
    def get(self, key: str, scenario: MigrationScenario, run_index: int) -> Optional[RunResult]:
        """Load a cached run, or ``None`` on any kind of miss.

        Parameters
        ----------
        key:
            The :meth:`scenario_key` the run was stored under.
        scenario:
            The scenario the caller expects — a stored run for any other
            scenario (hash collision, hand-edited cache) is a miss.
        run_index:
            The run's index within the scenario's stream.

        Returns
        -------
        Optional[RunResult]
            The cached run, or ``None`` if absent, unreadable,
            wrong-schema or mismatched (all counted in :attr:`misses`).
        """
        if not self._meta_ok(key):
            self.misses += 1
            return None
        path = self._run_path(key, run_index)
        if not path.exists():
            self.misses += 1
            return None
        try:
            run = load_run_result(path)
        except PersistenceError:
            self.misses += 1
            return None
        # Defence against hash collisions / hand-edited cache dirs.
        if run.scenario != scenario or run.run_index != run_index:
            self.misses += 1
            return None
        self.hits += 1
        try:
            self.bytes_read += path.stat().st_size
        except OSError:
            pass  # the payload is in hand; the counter is observability
        return run

    def put(
        self,
        key: str,
        run: RunResult,
        key_payload: Optional[dict] = None,
    ) -> None:
        """Store one run; (re)writes a valid ``meta.json`` describing the key.

        Parameters
        ----------
        key:
            The :meth:`scenario_key` to file the run under.
        run:
            The run to persist (its ``run_index`` names the file).
        key_payload:
            The key's ingredient dict (:meth:`_key_payload` output); when
            given, a missing or invalid ``meta.json`` is (re)written from
            it atomically.
        """
        entry = self._entry_dir(key)
        entry.mkdir(parents=True, exist_ok=True)
        meta = entry / "meta.json"
        if key_payload is not None and (not meta.exists() or not self._meta_ok(key)):
            # Atomic write: a half-written meta must never fail validation
            # for a concurrent reader of an otherwise-good entry.  The temp
            # name includes the thread id because in-process worker threads
            # (and the executor itself) may race on one entry's meta.
            tmp = meta.with_name(
                f"meta.json.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            tmp.write_text(
                json.dumps(key_payload, sort_keys=True, indent=1), encoding="utf-8"
            )
            tmp.replace(meta)
            self._meta_verdict[key] = True
        path = self._run_path(key, run.run_index)
        save_run_result(run, path)
        try:
            self.bytes_written += path.stat().st_size
        except OSError:
            pass  # counter only; the write itself already succeeded


# ---------------------------------------------------------------------------
# Backend protocol
# ---------------------------------------------------------------------------
class ExecutorBackend(abc.ABC):
    """What the wave scheduler needs from an execution substrate.

    The contract is deliberately small — ``submit()`` plus completed-
    future semantics — so a backend can be an in-process loop, a local
    process pool or a spool directory shared with remote workers
    (:class:`~repro.experiments.queue_backend.QueueBackend`), without the
    scheduler knowing the difference.
    """

    #: Human-readable backend identifier (``executor.backend`` reports it).
    name: str = "?"

    @property
    def capacity(self) -> Optional[int]:
        """How many tasks can usefully be in flight, or ``None`` if unknown.

        Feeds the executor's default wave size; a queue backend reports
        its currently-registered live workers here.
        """
        return None

    @abc.abstractmethod
    def submit(self, task: RunTask) -> Future:
        """Dispatch one run task.

        Parameters
        ----------
        task:
            The self-contained run spec to execute.

        Returns
        -------
        concurrent.futures.Future
            Resolves to the task's :class:`~repro.experiments.results.RunResult`;
            a worker-side failure surfaces as the future's exception.
        """

    def wait(
        self, pending: Collection[Future], timeout: Optional[float] = None
    ) -> Set[Future]:
        """Block until at least one pending future is done.

        Parameters
        ----------
        pending:
            Futures previously returned by :meth:`submit` that the
            scheduler has not collected yet (never empty).
        timeout:
            Optional upper bound in seconds on the block — the scheduler
            passes one when it has its own timers to service (retry
            backoff expiries, the campaign deadline).  ``None`` waits
            indefinitely.

        Returns
        -------
        set[concurrent.futures.Future]
            The subset of ``pending`` that is now done; may be empty
            only when ``timeout`` expired first.
        """
        done, _ = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
        return set(done)

    def quarantine(self, task, task_id: str) -> bool:
        """Move a task whose retry budget is exhausted into quarantine.

        Distributed backends persist the spec (queue: the
        ``quarantine/`` spool directory; http: the in-memory quarantine
        set surfaced by ``GET /status``) so operators can inspect and
        re-submit it.  The default — for in-process backends, which have
        no durable task store — records nothing.

        Parameters
        ----------
        task:
            The failed :class:`RunTask`/:class:`RunBatchTask`.
        task_id:
            Its stable task id (ledger/spool naming).

        Returns
        -------
        bool
            ``True`` when the task was captured in a quarantine store,
            ``False`` when the backend has none (the coordinator then
            records the failure as ``skipped`` rather than
            ``quarantined``).
        """
        return False

    def shutdown(self) -> None:
        """Release backend resources once the campaign is over.

        Process and queue backends may be reused after ``shutdown()``;
        the ``http`` backend's embedded service is gone for good (build
        a fresh executor for the next campaign).
        """

    def drain_progress(self) -> list:
        """Worker-reported progress events for the current campaign.

        Distributed backends override this to return the
        :class:`~repro.experiments.results.ProgressEvent` records their
        workers published through the task-handoff channel (spool NDJSON
        sidecars, ``POST /progress``).  The default — for in-process
        backends, whose workers cannot self-report — is an empty list,
        which makes the executor fall back to its own coordinator-side
        synthesis.

        Returns
        -------
        list[ProgressEvent]
            Events in announcement order; empty when the backend has no
            worker-side channel.
        """
        return []


class _SerialFuture(Future):
    """An already-resolved future: lets the serial backend share the
    process-backend scheduling loop unchanged."""

    def __init__(self, fn, *args) -> None:
        super().__init__()
        started = time.perf_counter()
        try:
            result = fn(*args)
        except BaseException as exc:  # noqa: BLE001 - mirrored to the caller
            self.set_exception(exc)
        else:
            #: True execution wall time — collection happens after *all*
            #: inline futures of a wave resolved, so the submit-to-collect
            #: clock the executor keeps would overstate serial runs.
            self.wall_s = time.perf_counter() - started
            self.set_result(result)


class SerialBackend(ExecutorBackend):
    """Inline execution: ``submit`` runs the task before returning."""

    name = "serial"

    def __init__(self, run_timeout: Optional[float] = None) -> None:
        self.run_timeout = run_timeout

    @property
    def capacity(self) -> Optional[int]:
        return 1

    def submit(self, task: RunTask) -> Future:
        return _SerialFuture(_execute_task, task, self.run_timeout)

    def wait(
        self, pending: Collection[Future], timeout: Optional[float] = None
    ) -> Set[Future]:
        return set(pending)  # serial futures resolve at submit time


class ProcessBackend(ExecutorBackend):
    """A lazily-created :class:`ProcessPoolExecutor` with ``jobs`` workers."""

    name = "process"

    def __init__(self, jobs: int, run_timeout: Optional[float] = None) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.run_timeout = run_timeout
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def capacity(self) -> Optional[int]:
        return self.jobs

    def submit(self, task: RunTask) -> Future:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        inner = self._pool.submit(_execute_task_timed, task, self.run_timeout)
        # Unwrap (run, wall) into a RunResult future carrying the
        # worker-side wall time as an attribute, mirroring _SerialFuture.
        outer: Future = Future()

        def _unwrap(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                outer.set_exception(exc)
            else:
                run, wall = done.result()
                outer.wall_s = wall
                outer.set_result(run)

        inner.add_done_callback(_unwrap)
        return outer

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------
@dataclass
class ExecutorStats:
    """Accounting of one :meth:`CampaignExecutor.run_campaign` call."""

    scenarios: int = 0
    runs_kept: int = 0        # runs in the returned ExperimentResult
    runs_executed: int = 0    # runs actually simulated (cache misses + no-cache)
    runs_cached: int = 0      # runs served from the cache
    runs_discarded: int = 0   # speculative runs beyond the stopping point
    failures: int = 0         # failed task attempts (see the failure ledger)
    tasks_retried: int = 0    # failed attempts re-dispatched under the budget
    tasks_quarantined: int = 0  # tasks captured in a backend quarantine store
    runs_abandoned: int = 0   # run indices given up after budget exhaustion
    scenarios_dropped: int = 0  # scenarios with zero usable runs
    tasks_speculated: int = 0   # straggler chunks cloned to an idle lane
    runs_deduped: int = 0       # duplicate speculative runs ignored idempotently

    @property
    def runs_total(self) -> int:
        """All runs obtained, kept or not."""
        return self.runs_executed + self.runs_cached

    @property
    def degraded(self) -> bool:
        """Whether the campaign completed with less than it was asked for."""
        return self.runs_abandoned > 0 or self.scenarios_dropped > 0


class _ScenarioState:
    """Book-keeping of one scenario's adaptive run stream."""

    __slots__ = ("scenario", "key", "runs", "inflight", "abandoned", "target", "resolved")

    def __init__(self, scenario: MigrationScenario, key: Optional[str], target: int) -> None:
        self.scenario = scenario
        self.key = key
        self.runs: dict[int, RunResult] = {}
        self.inflight: set[int] = set()
        self.abandoned: set[int] = set()  # indices lost to exhausted retry budgets
        self.target = target            # runs [0, target) currently wanted
        self.resolved: Optional[int] = None  # final kept count once decided


class CampaignExecutor:
    """Fan a measurement campaign out across an execution backend.

    Parameters
    ----------
    runner:
        The :class:`ScenarioRunner` holding seed and protocol knobs; the
        executor never mutates it and reproduces exactly the runs its
        serial :meth:`~ScenarioRunner.run_campaign` would keep.
    jobs:
        Worker-process count; ``1`` selects the serial backend under
        ``backend="auto"``.
    backend:
        ``"process"``, ``"serial"``, ``"queue"``, ``"http"``, ``"auto"``
        (process iff ``jobs > 1``) — or any :class:`ExecutorBackend`
        instance.  The ``queue`` backend additionally requires
        ``cache_dir`` (the shared result store) and ``spool_dir`` (the
        shared task spool served by ``campaign-worker`` processes); the
        ``http`` backend requires ``cache_dir`` and ``serve`` (the
        address its task-handoff service binds, polled by
        ``campaign-worker --connect`` processes).
    cache_dir:
        Optional directory for the content-addressed :class:`RunCache`.
    wave_size:
        Top-up wave size once ``min_runs`` energies fail the variance
        criterion; defaults to the backend's :attr:`~ExecutorBackend.capacity`
        (falling back to ``jobs``).  Affects only how much speculative
        work may run, never the returned result.
    batch_size:
        Runs per dispatched task.  ``1`` (default) keeps the classic
        one-:class:`RunTask`-per-run dispatch; larger values chunk each
        scenario's contiguous missing-index spans into
        :class:`RunBatchTask` units of at most this many runs; ``None``
        sizes chunks automatically at dispatch time — the missing runs
        divided evenly across the backend's current capacity (falling
        back to ``jobs`` while capacity is unknown), so a late-growing
        worker fleet still gets per-dispatch-sized batches.  Cache
        entries, progress events and results stay per-run and
        bit-identical for every value.
    spool_dir:
        Shared spool directory of the ``queue`` backend (ignored otherwise).
    queue_options:
        Extra keyword arguments forwarded to
        :class:`~repro.experiments.queue_backend.QueueBackend`
        (``poll_interval``, ``stale_timeout``, ``stop_workers_on_shutdown``, …).
    serve:
        ``HOST:PORT`` the ``http`` backend binds its campaign service to
        (ignored otherwise); port ``0`` selects an ephemeral port.
    http_options:
        Extra keyword arguments forwarded to
        :class:`~repro.experiments.http_backend.HttpBackend`
        (``stale_timeout``, ``stop_workers_on_shutdown``, ``stop_grace_s``, …).
    max_retries:
        Attempt budget per task: a failed task is re-dispatched (after
        :class:`~repro.experiments.faults.RetryPolicy` backoff) until it
        has failed ``max_retries`` times in total, then handed to
        ``on_failure``.  The default ``1`` keeps the classic single-
        attempt semantics.  Values above 1 also bound the distributed
        backends' stale-lease requeues (``max_requeues``), so a
        deterministically-crashing worker cannot recycle a task forever.
    on_failure:
        What exhausting the budget does: ``"raise"`` (default) aborts
        the campaign with the task's exception; ``"skip"`` abandons the
        task's run indices and completes the campaign degraded;
        ``"quarantine"`` additionally captures the task spec in the
        backend's quarantine store (queue: ``quarantine/`` spool dir,
        http: the ``GET /status`` quarantine set).  Either way every
        attempt lands in the failure ledger (:attr:`ledger`).
    retry_policy:
        Backoff schedule between attempts (default
        :class:`~repro.experiments.faults.RetryPolicy`: 0.5 s base,
        doubling, 30 s cap, ±25 % deterministic jitter).
    run_timeout:
        Per-run wall-clock watchdog for the in-process backends
        (serial/process), in seconds; a batch task gets ``run_timeout ×
        run_count``.  Distributed workers arm their own watchdog via
        ``campaign-worker --run-timeout``.
    campaign_timeout:
        Coordinator-side deadline in seconds for the whole campaign;
        on expiry every in-flight task is recorded in the ledger and the
        campaign aborts with :class:`~repro.errors.ExperimentError`
        instead of hanging.
    speculation:
        Optional :class:`~repro.experiments.scheduler.SpeculationPolicy`
        arming straggler re-dispatch: once a wave is mostly complete, a
        chunk outstanding far beyond its expected duration is cloned to
        an idle lane; the first valid result wins and the loser's
        publications are deduplicated idempotently through the per-run
        cache keys.  ``None`` (default) never speculates.
    throughput:
        Optional shared :class:`~repro.experiments.scheduler.ThroughputModel`
        seeding the adaptive span planner (e.g. warmed by a previous
        campaign on the same fleet); by default each executor builds its
        own, fed by the live progress stream and persisting across its
        campaigns.  With no observations yet, auto batch sizing is
        exactly the legacy even split.

    Raises
    ------
    ExperimentError
        On invalid ``jobs``/``wave_size``, an unknown backend name, or a
        backend whose required companion arguments are missing.
    """

    def __init__(
        self,
        runner: ScenarioRunner,
        jobs: int = 1,
        backend: Union[str, ExecutorBackend] = "auto",
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        wave_size: Optional[int] = None,
        spool_dir: Optional[Union[str, pathlib.Path]] = None,
        queue_options: Optional[dict] = None,
        serve: Optional[str] = None,
        http_options: Optional[dict] = None,
        batch_size: Optional[int] = 1,
        max_retries: int = 1,
        on_failure: str = "raise",
        retry_policy: Optional[RetryPolicy] = None,
        run_timeout: Optional[float] = None,
        campaign_timeout: Optional[float] = None,
        speculation: Optional[SpeculationPolicy] = None,
        throughput: Optional[ThroughputModel] = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if batch_size is not None and int(batch_size) < 1:
            raise ExperimentError(f"batch_size must be >= 1 or None, got {batch_size}")
        if int(max_retries) < 1:
            raise ExperimentError(f"max_retries must be >= 1, got {max_retries}")
        if on_failure not in ON_FAILURE_MODES:
            raise ExperimentError(
                f"unknown on_failure mode {on_failure!r} "
                f"(expected one of {ON_FAILURE_MODES})"
            )
        if run_timeout is not None and run_timeout <= 0:
            raise ExperimentError(f"run_timeout must be > 0, got {run_timeout}")
        if campaign_timeout is not None and campaign_timeout <= 0:
            raise ExperimentError(
                f"campaign_timeout must be > 0, got {campaign_timeout}"
            )
        self.runner = runner
        self.jobs = int(jobs)
        self.max_retries = int(max_retries)
        self.on_failure = on_failure
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.run_timeout = run_timeout
        self.campaign_timeout = campaign_timeout
        self.cache = RunCache(cache_dir) if cache_dir is not None else None
        #: The per-campaign failure ledger; persisted next to the cache
        #: (``failures.ndjson``) when a cache_dir is configured.
        self.ledger = FailureLedger(
            path=pathlib.Path(cache_dir) / "failures.ndjson"
            if cache_dir is not None
            else None
        )
        self._backend = self._make_backend(
            backend, spool_dir, queue_options, serve, http_options
        )
        self.backend = self._backend.name
        self._explicit_wave_size = None if wave_size is None else int(wave_size)
        if self._explicit_wave_size is not None and self._explicit_wave_size < 1:
            raise ExperimentError(f"wave_size must be >= 1, got {wave_size}")
        self.batch_size = None if batch_size is None else int(batch_size)
        #: Straggler re-dispatch policy; ``None`` disables speculation.
        self.speculation = speculation
        #: Per-worker EWMA throughput driving adaptive auto batch sizing
        #: (and the speculation policy's notion of an expected run wall).
        #: Deliberately *not* reset per campaign: a warm model keeps
        #: informing the next campaign on the same fleet.
        self.throughput = throughput if throughput is not None else ThroughputModel()
        self.stats = ExecutorStats()
        #: Attempt counter per task id of the current campaign.
        self._attempts: dict[str, int] = {}
        #: Per-run progress announcements of the most recent campaign:
        #: worker-reported events where the backend has a channel for them
        #: (queue sidecars, HTTP ``/progress``), coordinator-synthesised
        #: completion records otherwise.
        self.progress_events: list[ProgressEvent] = []

    @property
    def wave_size(self) -> int:
        """The top-up wave size that would be dispatched right now.

        Re-evaluated per top-up rather than frozen at construction: a
        queue backend's capacity is the number of live workers, which is
        typically zero when the executor is built and grows as workers
        register.  While capacity is still ``None`` (cold start: no
        worker has heartbeat yet), the size deliberately falls back to
        ``jobs`` — dispatching optimistically is harmless, because spool
        and HTTP tasks wait for whichever workers eventually join, and
        the next top-up re-reads the then-known capacity.
        """
        if self._explicit_wave_size is not None:
            return self._explicit_wave_size
        return max(self._backend.capacity or self.jobs, 1)

    def _plan_wave_chunks(
        self, missing: Sequence[int]
    ) -> list[tuple[int, ...]]:
        """Chunks (tuples of run indices) covering a wave's missing runs.

        Explicit ``batch_size`` keeps fixed-size chunks (with per-span
        tail remainders), exactly as before.  In auto mode, while the
        :attr:`throughput` model is cold the wave is divided evenly
        across the backend's *current* capacity (``jobs`` while capacity
        is unknown — the same cold-start fallback as :attr:`wave_size`)
        and chopped per contiguous span, reproducing the legacy dispatch
        shape bit for bit.  Once workers have reported throughput,
        chunk sizes come from :meth:`ThroughputModel.plan_spans` —
        proportional to per-worker EWMA rates so every lane's expected
        finish time is equal — and are carved across the spans in order
        (a planned size is cut at a span boundary; chunks never bridge a
        cache hole).  Evaluated at dispatch time, so capacity appearing
        mid-campaign reshapes only subsequent waves.
        """
        if not missing:
            return []
        spans = _contiguous_spans(missing)
        lanes = max(self._backend.capacity or self.jobs, 1)
        chunk_size: Optional[int]
        if self.batch_size is not None:
            chunk_size = self.batch_size
        elif not self.throughput.workers() or len(missing) <= lanes:
            chunk_size = max(1, math.ceil(len(missing) / lanes))
        else:
            chunk_size = None  # adaptive: proportional plan below
        chunks: list[tuple[int, ...]] = []
        if chunk_size is not None:
            for span in spans:
                for pos in range(0, len(span), chunk_size):
                    chunks.append(tuple(span[pos : pos + chunk_size]))
            return chunks
        sizes = iter(self.throughput.plan_spans(len(missing), lanes))
        carry = 0
        for span in spans:
            pos = 0
            while pos < len(span):
                take = carry if carry else next(sizes)
                carry = 0
                avail = len(span) - pos
                if take > avail:
                    carry = take - avail
                    take = avail
                chunks.append(tuple(span[pos : pos + take]))
                pos += take
        return chunks

    @property
    def serve_url(self) -> Optional[str]:
        """The ``http`` backend's bound service URL (workers ``--connect``
        here; resolves an ephemeral port), or ``None`` for other backends."""
        return getattr(self._backend, "url", None)

    @property
    def queue_stats(self):
        """The queue/http backend's traffic stats (a
        :class:`~repro.experiments.queue_backend.QueueStats`), or ``None``
        for in-process backends."""
        return getattr(self._backend, "stats", None)

    def _make_backend(
        self,
        backend: Union[str, ExecutorBackend],
        spool_dir: Optional[Union[str, pathlib.Path]],
        queue_options: Optional[dict],
        serve: Optional[str],
        http_options: Optional[dict],
    ) -> ExecutorBackend:
        if isinstance(backend, ExecutorBackend):
            return backend
        if backend not in ("auto", "process", "serial", "queue", "http"):
            raise ExperimentError(f"unknown backend {backend!r}")
        if backend == "auto":
            backend = "process" if self.jobs > 1 else "serial"
        if backend == "serial":
            return SerialBackend(run_timeout=self.run_timeout)
        if backend == "process":
            return ProcessBackend(self.jobs, run_timeout=self.run_timeout)
        if backend == "http":
            # http: workers upload into the coordinator's cache over the wire.
            if self.cache is None:
                raise ExperimentError("the http backend requires a cache_dir")
            if serve is None:
                raise ExperimentError(
                    "the http backend requires a serve address (HOST:PORT)"
                )
            from repro.experiments.http_backend import HttpBackend  # local: avoid cycle

            options = dict(http_options or {})
            if self.max_retries > 1:
                # A retry budget also bounds server-side stale-lease
                # requeues, so a crash-looping worker cannot recycle a
                # task forever (the default None keeps them unbounded).
                options.setdefault("max_requeues", self.max_retries)
            return HttpBackend(serve, self.cache, **options)
        # queue: remote workers share the cache, so both dirs are required.
        if self.cache is None:
            raise ExperimentError("the queue backend requires a cache_dir")
        if spool_dir is None:
            raise ExperimentError("the queue backend requires a spool_dir")
        from repro.experiments.queue_backend import QueueBackend  # local: avoid cycle

        options = dict(queue_options or {})
        if self.max_retries > 1:
            options.setdefault("max_requeues", self.max_retries)
        return QueueBackend(spool_dir, self.cache, **options)

    # ------------------------------------------------------------------
    def run_campaign(
        self,
        scenarios: Sequence[MigrationScenario],
        min_runs: Optional[int] = None,
        max_runs: Optional[int] = None,
    ) -> ExperimentResult:
        """Execute a campaign; bit-identical to the serial path.

        Parameters
        ----------
        scenarios:
            The scenarios to measure (at least one).
        min_runs / max_runs:
            Bounds of the Section V-B variance-stopping loop; default to
            the runner's :class:`~repro.experiments.runner.RunnerSettings`.

        Returns
        -------
        ExperimentResult
            Exactly the runs the serial path would keep, for any backend
            and worker count; accounting lands in :attr:`stats`.  Under
            ``on_failure="skip"``/``"quarantine"`` a scenario whose runs
            were partly abandoned keeps its contiguous run prefix, and a
            scenario with no usable runs is dropped (``stats.degraded``
            reports either case).

        Raises
        ------
        ExperimentError
            On an empty scenario list, invalid run bounds, a task
            failure that exhausts its retry budget under
            ``on_failure="raise"``, an expired campaign deadline, or —
            in the degraded modes — when *every* scenario lost all of
            its runs.
        """
        if not scenarios:
            raise ExperimentError("campaign needs at least one scenario")
        settings = self.runner.settings
        lo = min_runs if min_runs is not None else settings.min_runs
        hi = max_runs if max_runs is not None else settings.max_runs
        if lo < 2 or hi < lo:
            raise ExperimentError(f"invalid run bounds: min={lo} max={hi}")

        self.stats = ExecutorStats(scenarios=len(scenarios))
        self.progress_events = []
        self.ledger.reset()
        self._attempts = {}
        states = [
            _ScenarioState(s, self._key_for(s), target=lo) for s in scenarios
        ]
        try:
            self._drive(states, lo, hi)
        finally:
            try:
                # Worker-reported progress (richer: true worker ids and
                # worker-side wall times) supersedes the coordinator-side
                # synthesis per task id — not wholesale, so tasks whose
                # worker died before flushing its sidecar keep at least
                # the synthesized record.
                worker_reported = self._backend.drain_progress()
                if worker_reported:
                    reported_ids = {event.task_id for event in worker_reported}
                    merged = [
                        event
                        for event in self.progress_events
                        if event.task_id not in reported_ids
                    ]
                    merged.extend(worker_reported)
                    merged.sort(key=lambda event: event.at)
                    self.progress_events = merged
            finally:
                # drain_progress can raise (corrupt sidecar, dead spool
                # dir); the backend's worker pool must still come down,
                # or every failed drain leaks processes/threads.
                self._backend.shutdown()

        results = []
        for state in states:
            assert state.resolved is not None
            if state.resolved == 0:
                # Every run of this scenario was abandoned: drop it from
                # the result (ScenarioResult rejects empty run lists).
                self.stats.scenarios_dropped += 1
                self.stats.runs_discarded += len(state.runs)
                continue
            kept = [state.runs[i] for i in range(state.resolved)]
            self.stats.runs_kept += len(kept)
            self.stats.runs_discarded += len(state.runs) - len(kept)
            results.append(ScenarioResult(state.scenario, kept))
        if not results:
            raise ExperimentError(
                "campaign failed: every scenario lost all of its runs "
                f"({self.stats.failures} failures recorded in the ledger)"
            )
        return ExperimentResult(results)

    # ------------------------------------------------------------------
    def _key_for(self, scenario: MigrationScenario) -> Optional[str]:
        if self.cache is None:
            return None
        return RunCache.scenario_key(
            self.runner.seed,
            scenario,
            self.runner.settings,
            self.runner.migration_config,
            self.runner.stabilization,
        )

    def _task_for(self, state: _ScenarioState, index: int) -> RunTask:
        return RunTask(
            seed=self.runner.seed,
            settings=self.runner.settings,
            migration_config=self.runner.migration_config,
            stabilization=self.runner.stabilization,
            scenario=state.scenario,
            run_index=index,
            key=state.key,
        )

    def _batch_task_for(
        self, state: _ScenarioState, start: int, count: int
    ) -> RunBatchTask:
        return RunBatchTask(
            seed=self.runner.seed,
            settings=self.runner.settings,
            migration_config=self.runner.migration_config,
            stabilization=self.runner.stabilization,
            scenario=state.scenario,
            run_start=start,
            run_count=count,
            key=state.key,
        )

    def _task_progress_id(self, state: _ScenarioState, index: int) -> str:
        if state.key is not None:
            return f"{state.key[:16]}-{index:04d}"
        return f"{state.scenario.label}#{index}"

    def _chunk_task_id(self, state: _ScenarioState, chunk: Sequence[int]) -> str:
        """The stable task id of a dispatched chunk (matches the
        distributed backends' ``task_id_for`` naming)."""
        base = self._task_progress_id(state, chunk[0])
        return base if len(chunk) == 1 else f"{base}x{len(chunk)}"

    def _resolve_degraded(self, state: _ScenarioState, lo: int, hi: int) -> None:
        """Resolve a scenario whose wave completed with abandoned holes.

        The variance criterion needs the index-ordered energy prefix, so
        only the contiguous run prefix below the first hole is usable.
        If that prefix still satisfies the Section V-B stopping rule the
        scenario resolves exactly as the serial path would have; if not,
        the whole prefix is kept (degraded — possibly zero runs, in
        which case the scenario is dropped from the result).
        """
        prefix = 0
        while prefix in state.runs:
            prefix += 1
        kept = None
        if prefix >= lo:
            energies = [
                state.runs[i].total_energy_j(HostRole.SOURCE)
                for i in range(prefix)
            ]
            kept = resolve_run_count(
                energies, lo, hi, self.runner.settings.variance_delta
            )
        state.resolved = kept if kept is not None else prefix

    def _drive(self, states: Sequence[_ScenarioState], lo: int, hi: int) -> None:
        """The wave scheduler: dispatch, collect, evaluate, top up.

        Task failures are routed through the retry budget: a failed
        chunk re-dispatches after :attr:`retry_policy` backoff until it
        has failed :attr:`max_retries` times, then :attr:`on_failure`
        decides between aborting (``raise``) and abandoning the chunk's
        indices (``skip``/``quarantine``), with every attempt recorded
        in :attr:`ledger`.
        """
        pending: dict[Future, tuple[_ScenarioState, tuple[int, ...], object]] = {}
        submitted_at: dict[Future, float] = {}
        #: Chunks sitting out their backoff: (ready_at, state, chunk).
        retry_queue: list[tuple[float, _ScenarioState, tuple[int, ...]]] = []
        #: (id(state), chunk) -> live futures racing for that chunk.
        #: A chunk normally has one; a speculated straggler has two.
        clone_groups: dict[tuple[int, tuple[int, ...]], set[Future]] = {}
        policy = self.speculation
        speculation_armed = policy is not None and policy.enabled
        #: Only pay for mid-drive progress drains when something consumes
        #: them: adaptive auto-batching or the speculation policy.
        feed_live = self.batch_size is None or speculation_armed
        last_drain = 0.0
        deadline = (
            time.monotonic() + self.campaign_timeout
            if self.campaign_timeout is not None
            else None
        )

        def dispatch(
            state: _ScenarioState,
            chunk: Sequence[int],
            speculative: bool = False,
        ) -> None:
            """Submit one chunk (fresh, retry, or clone); count the attempt."""
            state.inflight.update(chunk)
            if len(chunk) == 1:
                task = self._task_for(state, chunk[0])
            else:
                task = self._batch_task_for(state, chunk[0], len(chunk))
            task_id = self._chunk_task_id(state, chunk)
            if speculative:
                # Clones are free re-dispatches, not attempts: the retry
                # budget keeps counting the original chunk only.
                self.stats.tasks_speculated += 1
            else:
                self._attempts[task_id] = self._attempts.get(task_id, 0) + 1
            # Clock starts before submit: the serial backend executes
            # inside submit(), and its wall time must not read as zero.
            t_submit = time.perf_counter()
            future = self._backend.submit(task)
            pending[future] = (state, tuple(chunk), task)
            submitted_at[future] = t_submit
            clone_groups.setdefault((id(state), tuple(chunk)), set()).add(future)

        def feed_model(now: float) -> None:
            """Throttled drain of live worker progress into the model.

            Both backends' ``drain_progress`` is non-consuming (sidecars
            are re-read; the HTTP history is copied), so mid-drive
            drains never starve the final campaign-summary merge, and
            the model dedupes overlapping drains by ``(task_id, at)``.
            """
            nonlocal last_drain
            if not feed_live or now - last_drain < 0.25:
                return
            last_drain = now
            try:
                events = self._backend.drain_progress()
            except (PersistenceError, OSError):
                return  # a torn sidecar must not take the campaign down
            self.throughput.observe_all(events)

        def maybe_speculate() -> None:
            """Clone straggling chunks onto idle lanes (first result wins)."""
            if not speculation_armed:
                return
            median = self.throughput.median_run_wall()
            if median is None:
                return
            capacity = max(self._backend.capacity or self.jobs, 1)
            budget = capacity - len(pending)
            if budget <= 0:
                return
            now_perf = time.perf_counter()
            for future, (state, indices, _task) in list(pending.items()):
                if budget <= 0:
                    break
                group = clone_groups.get((id(state), indices))
                if group is not None and len(group) > 1:
                    continue  # already racing a clone
                submitted = submitted_at.get(future)
                if submitted is None:
                    continue
                done_frac = len(state.runs) / max(state.target, 1)
                if policy.is_straggler(
                    now_perf - submitted, len(indices), median, done_frac
                ):
                    dispatch(state, indices, speculative=True)
                    budget -= 1

        def advance(state: _ScenarioState) -> None:
            """Dispatch missing runs below target; evaluate once complete."""
            while state.resolved is None:
                missing = []
                for index in range(state.target):
                    if (
                        index in state.runs
                        or index in state.inflight
                        or index in state.abandoned
                    ):
                        continue
                    cached = (
                        self.cache.get(state.key, state.scenario, index)
                        if self.cache is not None and state.key is not None
                        else None
                    )
                    if cached is not None:
                        state.runs[index] = cached
                        self.stats.runs_cached += 1
                    else:
                        missing.append(index)
                for chunk in self._plan_wave_chunks(missing):
                    dispatch(state, chunk)
                if state.inflight:
                    return  # evaluate when the wave completes
                if any(i in state.abandoned for i in range(state.target)):
                    self._resolve_degraded(state, lo, hi)
                    return
                energies = [
                    state.runs[i].total_energy_j(HostRole.SOURCE)
                    for i in range(state.target)
                ]
                kept = resolve_run_count(
                    energies, lo, hi, self.runner.settings.variance_delta
                )
                if kept is not None:
                    state.resolved = kept
                    return
                state.target = min(hi, state.target + self.wave_size)

        def fail(
            state: _ScenarioState,
            chunk: tuple[int, ...],
            task,
            exc: BaseException,
        ) -> None:
            """One failed attempt: retry under budget, else fate it."""
            task_id = self._chunk_task_id(state, chunk)
            attempt = self._attempts.get(task_id, 1)
            failure = failure_from_exception(
                exc,
                task_id=task_id,
                scenario=state.scenario.label,
                run_indices=chunk,
                attempt=attempt,
                worker=self.backend,
            )
            self.stats.failures += 1
            retryable = getattr(exc, "retryable", True)
            if retryable and attempt < self.max_retries:
                self.ledger.record(failure.with_fate("retried"))
                self.stats.tasks_retried += 1
                delay = self.retry_policy.delay_s(attempt, task_id)
                retry_queue.append((time.monotonic() + delay, state, chunk))
                return  # indices stay inflight until the re-dispatch
            if self.on_failure == "raise":
                self.ledger.record(failure.with_fate("fatal"))
                raise exc
            fate = "skipped"
            if self.on_failure == "quarantine" and self._backend.quarantine(
                task, task_id
            ):
                fate = "quarantined"
                self.stats.tasks_quarantined += 1
            self.ledger.record(failure.with_fate(fate))
            state.inflight.difference_update(chunk)
            state.abandoned.update(chunk)
            self.stats.runs_abandoned += len(chunk)
            if not state.inflight:
                advance(state)

        for state in states:
            advance(state)
        while pending or retry_queue:
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                self._abort_on_deadline(pending, retry_queue)
            feed_model(now)
            maybe_speculate()
            if retry_queue:
                due = [entry for entry in retry_queue if entry[0] <= now]
                if due:
                    retry_queue[:] = [e for e in retry_queue if e[0] > now]
                    for _, state, chunk in due:
                        dispatch(state, chunk)
            if not pending:
                # Only backoff timers outstanding: nap (bounded, so the
                # campaign deadline stays responsive) until one is due.
                next_ready = min(entry[0] for entry in retry_queue)
                limit = next_ready if deadline is None else min(next_ready, deadline)
                time.sleep(min(max(limit - time.monotonic(), 0.0), 0.25))
                continue
            timeout = None
            bounds = []
            if retry_queue:
                bounds.append(min(entry[0] for entry in retry_queue) - now)
            if deadline is not None:
                bounds.append(deadline - now)
            if speculation_armed:
                # Wake periodically even with nothing due, so straggler
                # checks run while a slow chunk is the only work left.
                bounds.append(0.25)
            if bounds:
                timeout = max(min(bounds), 0.0)
            done = self._backend.wait(list(pending), timeout=timeout)
            for future in done:
                if future not in pending:
                    continue  # a speculation sibling already covered it
                state, indices, task = pending.pop(future)
                group_key = (id(state), indices)
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001 - routed through the budget
                    submitted_at.pop(future, None)
                    # Failure fates the whole clone group: whether a
                    # sibling can still resolve is backend-specific (the
                    # HTTP backend orphans a re-submitted task's first
                    # future), so the retry budget arbitrates instead of
                    # waiting on a future that may never fire.
                    siblings = clone_groups.pop(group_key, set())
                    siblings.discard(future)
                    for sibling in siblings:
                        pending.pop(sibling, None)
                        submitted_at.pop(sibling, None)
                    fail(state, indices, task, exc)
                    continue
                runs = result if isinstance(result, list) else [result]
                if len(runs) != len(indices):
                    raise ExperimentError(
                        f"batch for {state.scenario.label!r} returned "
                        f"{len(runs)} runs, expected {len(indices)}"
                    )
                submitted = submitted_at.pop(future, None)
                # First valid result wins: the loser's futures (and any
                # backoff retry of the same chunk) are dropped here, and
                # its eventual publication deduplicates through the
                # per-run cache keys / the backend's duplicate handling.
                siblings = clone_groups.pop(group_key, set())
                siblings.discard(future)
                for sibling in siblings:
                    if pending.pop(sibling, None) is not None:
                        submitted_at.pop(sibling, None)
                        self.stats.runs_deduped += len(indices)
                if siblings:
                    retry_queue[:] = [
                        entry
                        for entry in retry_queue
                        if not (entry[1] is state and entry[2] == indices)
                    ]
                total_wall = getattr(future, "wall_s", None)
                if total_wall is None:
                    total_wall = time.perf_counter() - (
                        submitted or time.perf_counter()
                    )
                # Per-run accounting for a batch splits the batch wall
                # evenly: individual run walls are not observable from
                # the coordinator side of a batched dispatch.
                wall = max(total_wall / len(runs), 1e-9)
                worker = getattr(future, "worker", None) or self._backend.name
                for index, run in zip(indices, runs):
                    state.runs[index] = run
                    state.inflight.discard(index)
                    self.stats.runs_executed += 1
                    samples = run_sample_count(run)
                    event = ProgressEvent(
                        task_id=self._task_progress_id(state, index),
                        scenario=state.scenario.label,
                        run_index=index,
                        worker=worker,
                        runs_completed=self.stats.runs_executed,
                        samples=samples,
                        wall_s=wall,
                        samples_per_s=samples / wall,
                        at=time.time(),
                    )
                    self.progress_events.append(event)
                    # Coordinator-side observations keep the model warm
                    # even for backends without live progress sidecars.
                    self.throughput.observe(event)
                    # Queue futures resolve *from* the shared cache (a
                    # worker already deposited the result), so skip the
                    # re-write.
                    if (
                        self.cache is not None
                        and state.key is not None
                        and not getattr(future, "result_in_cache", False)
                    ):
                        try:
                            self.cache.put(
                                state.key,
                                run,
                                key_payload=RunCache._key_payload(
                                    self.runner.seed,
                                    state.scenario,
                                    self.runner.settings,
                                    self.runner.migration_config,
                                    self.runner.stabilization,
                                ),
                            )
                        except (PersistenceError, OSError, ChaosError) as exc:
                            # A failed cache write must never take the
                            # campaign down: the run is already in hand.
                            self.ledger.record(
                                RunFailure(
                                    task_id=self._task_progress_id(state, index),
                                    scenario=state.scenario.label,
                                    run_indices=(index,),
                                    attempt=self._attempts.get(
                                        self._chunk_task_id(state, indices), 1
                                    ),
                                    worker=self.backend,
                                    kind=type(exc).__name__,
                                    message=f"cache put failed: {exc}",
                                    at=time.time(),
                                    fate="tolerated",
                                )
                            )
                            self.stats.failures += 1
                if not state.inflight:
                    advance(state)

    def _abort_on_deadline(self, pending: dict, retry_queue: list) -> None:
        """Record every outstanding task and abort: deadlines never hang."""
        stamp = time.time()
        outstanding = [
            (state, indices) for (state, indices, _task) in pending.values()
        ] + [(state, chunk) for (_ready, state, chunk) in retry_queue]
        for state, indices in outstanding:
            task_id = self._chunk_task_id(state, indices)
            self.ledger.record(
                RunFailure(
                    task_id=task_id,
                    scenario=state.scenario.label,
                    run_indices=tuple(indices),
                    attempt=self._attempts.get(task_id, 1),
                    worker=self.backend,
                    kind="CampaignTimeout",
                    message=(
                        f"campaign deadline of {self.campaign_timeout:g}s "
                        "expired with the task outstanding"
                    ),
                    at=stamp,
                    fate="fatal",
                )
            )
            self.stats.failures += 1
        raise ExperimentError(
            f"campaign deadline of {self.campaign_timeout:g}s exceeded "
            f"with {len(outstanding)} tasks outstanding"
        )
