"""Parallel campaign execution with a content-addressed run cache.

The paper's measurement protocol repeats every scenario at least ten
times and a full Table IIa campaign multiplies that across 42 scenarios —
yet every run is seeded independently via
``derive_seed(master, f"{label}#{index}")``, which makes a campaign
embarrassingly parallel at run granularity.  This module exploits that:

* :class:`CampaignExecutor` fans runs out across worker processes
  (``process`` backend on :class:`concurrent.futures.ProcessPoolExecutor`)
  or executes them inline (``serial`` backend), while preserving the
  adaptive variance-stopping loop of Section V-B.  Runs are dispatched in
  *waves*: each scenario starts with ``min_runs`` runs, the 10 % variance
  criterion is evaluated on the completed, index-ordered energies
  (:func:`~repro.experiments.runner.resolve_run_count` — the same pure
  function the serial path uses), and unsatisfied scenarios are topped up
  wave by wave until ``max_runs``.  Speculative top-up runs beyond the
  stopping point are discarded from the result (but kept in the cache),
  so the returned :class:`~repro.experiments.results.ExperimentResult` is
  **bit-identical** to the serial path for any worker count.

* :class:`RunCache` is a content-addressed on-disk cache of individual
  run results.  The key is a SHA-256 over the canonical JSON of the
  master seed, the scenario spec, the :class:`RunnerSettings`, the
  :class:`MigrationConfig` override and the stabilisation rule — so any
  change to the execution protocol invalidates the cache, while
  analysis-only changes re-use every run.  Layout::

      <cache-dir>/<key[:2]>/<key>/meta.json     # human-readable key inputs
      <cache-dir>/<key[:2]>/<key>/run-0003.pkl  # one RunResult per run

See ``docs/parallel_campaigns.md`` for the full design discussion.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.experiments.design import MigrationScenario
from repro.experiments.results import ExperimentResult, RunResult, ScenarioResult
from repro.experiments.runner import RunnerSettings, ScenarioRunner, resolve_run_count
from repro.hypervisor.migration import MigrationConfig
from repro.io import PersistenceError, load_run_result, save_run_result
from repro.models.features import HostRole
from repro.telemetry.stabilization import StabilizationRule

__all__ = ["CampaignExecutor", "ExecutorStats", "RunCache", "CACHE_KEY_SCHEMA"]

#: Versions the cache-key derivation itself: bump to invalidate every
#: existing cache entry after a change to run semantics.
CACHE_KEY_SCHEMA = "wavm3-run-cache/1"


def _execute_run(
    seed: int,
    settings: RunnerSettings,
    migration_config: Optional[MigrationConfig],
    stabilization: StabilizationRule,
    scenario: MigrationScenario,
    run_index: int,
) -> RunResult:
    """Worker entry point: one instrumented run, self-contained and picklable."""
    runner = ScenarioRunner(
        seed=seed,
        settings=settings,
        migration_config=migration_config,
        stabilization=stabilization,
    )
    return runner.run_once(scenario, run_index=run_index)


# ---------------------------------------------------------------------------
# Run cache
# ---------------------------------------------------------------------------
class RunCache:
    """Content-addressed on-disk cache of individual run results.

    Every run is stored under a *scenario key* — the SHA-256 of the
    canonical JSON of everything that determines the run's outcome — plus
    its run index.  Unreadable or wrong-schema entries count as misses.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    # -- keying ---------------------------------------------------------
    @staticmethod
    def scenario_key(
        seed: int,
        scenario: MigrationScenario,
        settings: RunnerSettings,
        migration_config: Optional[MigrationConfig],
        stabilization: StabilizationRule,
    ) -> str:
        """Hex digest identifying one scenario's run stream exhaustively."""
        payload = RunCache._key_payload(
            seed, scenario, settings, migration_config, stabilization
        )
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @staticmethod
    def _key_payload(
        seed: int,
        scenario: MigrationScenario,
        settings: RunnerSettings,
        migration_config: Optional[MigrationConfig],
        stabilization: StabilizationRule,
    ) -> dict:
        return {
            "schema": CACHE_KEY_SCHEMA,
            "seed": int(seed),
            "scenario": dataclasses.asdict(scenario),
            "settings": dataclasses.asdict(settings),
            "migration_config": (
                dataclasses.asdict(migration_config)
                if migration_config is not None
                else None
            ),
            "stabilization": dataclasses.asdict(stabilization),
        }

    def _entry_dir(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / key

    def _run_path(self, key: str, run_index: int) -> pathlib.Path:
        return self._entry_dir(key) / f"run-{run_index:04d}.pkl"

    # -- access ---------------------------------------------------------
    def get(self, key: str, scenario: MigrationScenario, run_index: int) -> Optional[RunResult]:
        """Load a cached run, or ``None`` on any kind of miss."""
        path = self._run_path(key, run_index)
        if not path.exists():
            self.misses += 1
            return None
        try:
            run = load_run_result(path)
        except PersistenceError:
            self.misses += 1
            return None
        # Defence against hash collisions / hand-edited cache dirs.
        if run.scenario != scenario or run.run_index != run_index:
            self.misses += 1
            return None
        self.hits += 1
        return run

    def put(
        self,
        key: str,
        run: RunResult,
        key_payload: Optional[dict] = None,
    ) -> None:
        """Store one run; writes a ``meta.json`` describing the key once."""
        entry = self._entry_dir(key)
        entry.mkdir(parents=True, exist_ok=True)
        meta = entry / "meta.json"
        if key_payload is not None and not meta.exists():
            meta.write_text(
                json.dumps(key_payload, sort_keys=True, indent=1), encoding="utf-8"
            )
        save_run_result(run, self._run_path(key, run.run_index))


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------
@dataclass
class ExecutorStats:
    """Accounting of one :meth:`CampaignExecutor.run_campaign` call."""

    scenarios: int = 0
    runs_kept: int = 0        # runs in the returned ExperimentResult
    runs_executed: int = 0    # runs actually simulated (cache misses + no-cache)
    runs_cached: int = 0      # runs served from the cache
    runs_discarded: int = 0   # speculative runs beyond the stopping point

    @property
    def runs_total(self) -> int:
        """All runs obtained, kept or not."""
        return self.runs_executed + self.runs_cached


class _SerialFuture(Future):
    """An already-resolved future: lets the serial backend share the
    process-backend scheduling loop unchanged."""

    def __init__(self, fn, *args) -> None:
        super().__init__()
        try:
            self.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - mirrored to the caller
            self.set_exception(exc)


class _ScenarioState:
    """Book-keeping of one scenario's adaptive run stream."""

    __slots__ = ("scenario", "key", "runs", "inflight", "target", "resolved")

    def __init__(self, scenario: MigrationScenario, key: Optional[str], target: int) -> None:
        self.scenario = scenario
        self.key = key
        self.runs: dict[int, RunResult] = {}
        self.inflight: set[int] = set()
        self.target = target            # runs [0, target) currently wanted
        self.resolved: Optional[int] = None  # final kept count once decided


class CampaignExecutor:
    """Fan a measurement campaign out across worker processes.

    Parameters
    ----------
    runner:
        The :class:`ScenarioRunner` holding seed and protocol knobs; the
        executor never mutates it and reproduces exactly the runs its
        serial :meth:`~ScenarioRunner.run_campaign` would keep.
    jobs:
        Worker-process count; ``1`` selects the serial backend under
        ``backend="auto"``.
    backend:
        ``"process"``, ``"serial"`` or ``"auto"`` (process iff ``jobs > 1``).
    cache_dir:
        Optional directory for the content-addressed :class:`RunCache`.
    wave_size:
        Top-up wave size once ``min_runs`` energies fail the variance
        criterion; defaults to ``jobs``.  Affects only how much
        speculative work may run, never the returned result.
    """

    def __init__(
        self,
        runner: ScenarioRunner,
        jobs: int = 1,
        backend: str = "auto",
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        wave_size: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if backend not in ("auto", "process", "serial"):
            raise ExperimentError(f"unknown backend {backend!r}")
        if backend == "auto":
            backend = "process" if jobs > 1 else "serial"
        self.runner = runner
        self.jobs = int(jobs)
        self.backend = backend
        self.cache = RunCache(cache_dir) if cache_dir is not None else None
        self.wave_size = int(wave_size) if wave_size is not None else self.jobs
        if self.wave_size < 1:
            raise ExperimentError(f"wave_size must be >= 1, got {wave_size}")
        self.stats = ExecutorStats()

    # ------------------------------------------------------------------
    def run_campaign(
        self,
        scenarios: Sequence[MigrationScenario],
        min_runs: Optional[int] = None,
        max_runs: Optional[int] = None,
    ) -> ExperimentResult:
        """Execute a campaign; bit-identical to the serial path."""
        if not scenarios:
            raise ExperimentError("campaign needs at least one scenario")
        settings = self.runner.settings
        lo = min_runs if min_runs is not None else settings.min_runs
        hi = max_runs if max_runs is not None else settings.max_runs
        if lo < 2 or hi < lo:
            raise ExperimentError(f"invalid run bounds: min={lo} max={hi}")

        self.stats = ExecutorStats(scenarios=len(scenarios))
        states = [
            _ScenarioState(s, self._key_for(s), target=lo) for s in scenarios
        ]
        if self.backend == "process":
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                self._drive(states, pool, lo, hi)
        else:
            self._drive(states, None, lo, hi)

        results = []
        for state in states:
            assert state.resolved is not None
            kept = [state.runs[i] for i in range(state.resolved)]
            self.stats.runs_kept += len(kept)
            self.stats.runs_discarded += len(state.runs) - len(kept)
            results.append(ScenarioResult(state.scenario, kept))
        return ExperimentResult(results)

    # ------------------------------------------------------------------
    def _key_for(self, scenario: MigrationScenario) -> Optional[str]:
        if self.cache is None:
            return None
        return RunCache.scenario_key(
            self.runner.seed,
            scenario,
            self.runner.settings,
            self.runner.migration_config,
            self.runner.stabilization,
        )

    def _submit(self, pool: Optional[ProcessPoolExecutor], scenario: MigrationScenario, index: int) -> Future:
        args = (
            self.runner.seed,
            self.runner.settings,
            self.runner.migration_config,
            self.runner.stabilization,
            scenario,
            index,
        )
        if pool is None:
            return _SerialFuture(_execute_run, *args)
        return pool.submit(_execute_run, *args)

    def _drive(
        self,
        states: Sequence[_ScenarioState],
        pool: Optional[ProcessPoolExecutor],
        lo: int,
        hi: int,
    ) -> None:
        """The wave scheduler: dispatch, collect, evaluate, top up."""
        pending: dict[Future, tuple[_ScenarioState, int]] = {}

        def advance(state: _ScenarioState) -> None:
            """Dispatch missing runs below target; evaluate once complete."""
            while state.resolved is None:
                for index in range(state.target):
                    if index in state.runs or index in state.inflight:
                        continue
                    cached = (
                        self.cache.get(state.key, state.scenario, index)
                        if self.cache is not None and state.key is not None
                        else None
                    )
                    if cached is not None:
                        state.runs[index] = cached
                        self.stats.runs_cached += 1
                    else:
                        state.inflight.add(index)
                        pending[self._submit(pool, state.scenario, index)] = (state, index)
                if state.inflight:
                    return  # evaluate when the wave completes
                energies = [
                    state.runs[i].total_energy_j(HostRole.SOURCE)
                    for i in range(state.target)
                ]
                kept = resolve_run_count(
                    energies, lo, hi, self.runner.settings.variance_delta
                )
                if kept is not None:
                    state.resolved = kept
                    return
                state.target = min(hi, state.target + self.wave_size)

        for state in states:
            advance(state)
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                state, index = pending.pop(future)
                run = future.result()  # propagate worker exceptions
                state.runs[index] = run
                state.inflight.discard(index)
                self.stats.runs_executed += 1
                if self.cache is not None and state.key is not None:
                    self.cache.put(
                        state.key,
                        run,
                        key_payload=RunCache._key_payload(
                            self.runner.seed,
                            state.scenario,
                            self.runner.settings,
                            self.runner.migration_config,
                            self.runner.stabilization,
                        ),
                    )
                if not state.inflight:
                    advance(state)
