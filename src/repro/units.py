"""Unit constants and conversion helpers.

The paper (and therefore this library) mixes several unit systems:

* **memory** — VM sizes quoted in MB/GB, transferred state in bytes, and the
  dirtying ratio in *pages* (Xen tracks dirtying at page granularity);
* **bandwidth** — gigabit links, model feature ``BW(S,T,t)`` in bytes/s
  (inferred from the magnitude of the β(t) coefficients in Tables III–IV);
* **CPU** — utilisations in percent of host capacity, [0, 100];
* **power/energy** — watts and joules; Table VII quotes MAE in kJ.

Centralising the constants here keeps every subsystem consistent and gives
the tests a single point of truth.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "PAGE_SIZE_BYTES",
    "GBIT_PER_S_BYTES",
    "PERCENT",
    "mib_to_bytes",
    "gib_to_bytes",
    "bytes_to_mib",
    "bytes_to_gib",
    "mib_to_pages",
    "pages_to_bytes",
    "bytes_to_pages",
    "pages_to_mib",
    "gbit_to_bytes_per_s",
    "bytes_per_s_to_mbit",
    "fraction_to_percent",
    "percent_to_fraction",
    "joules_to_kj",
    "kj_to_joules",
    "watts_seconds_to_joules",
]

# Binary prefixes (memory is always binary in this library).
KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

# Decimal prefixes (network equipment is decimal).
KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB

#: x86 base page size used by Xen's dirty-page logging.
PAGE_SIZE_BYTES: int = 4 * KIB

#: Raw bit-rate of a gigabit link expressed in bytes/s (decimal gigabit).
GBIT_PER_S_BYTES: float = 1e9 / 8.0

#: Multiplier converting a [0, 1] fraction to percent.
PERCENT: float = 100.0


def mib_to_bytes(mib: float) -> float:
    """Convert mebibytes to bytes."""
    return mib * MIB


def gib_to_bytes(gib: float) -> float:
    """Convert gibibytes to bytes."""
    return gib * GIB


def bytes_to_mib(n_bytes: float) -> float:
    """Convert bytes to mebibytes."""
    return n_bytes / MIB


def bytes_to_gib(n_bytes: float) -> float:
    """Convert bytes to gibibytes."""
    return n_bytes / GIB


def mib_to_pages(mib: float) -> int:
    """Number of whole 4 KiB pages covering ``mib`` mebibytes."""
    return int(round(mib * MIB / PAGE_SIZE_BYTES))


def pages_to_bytes(pages: float) -> float:
    """Convert a page count to bytes."""
    return pages * PAGE_SIZE_BYTES


def bytes_to_pages(n_bytes: float) -> float:
    """Convert bytes to (possibly fractional) 4 KiB pages."""
    return n_bytes / PAGE_SIZE_BYTES


def pages_to_mib(pages: float) -> float:
    """Convert a page count to mebibytes."""
    return pages * PAGE_SIZE_BYTES / MIB


def gbit_to_bytes_per_s(gbit: float) -> float:
    """Convert a decimal gigabit/s rate to bytes/s."""
    return gbit * 1e9 / 8.0


def bytes_per_s_to_mbit(bps: float) -> float:
    """Convert bytes/s to decimal megabit/s."""
    return bps * 8.0 / 1e6


def fraction_to_percent(fraction: float) -> float:
    """Convert a [0, 1] fraction to percent."""
    return fraction * PERCENT


def percent_to_fraction(percent: float) -> float:
    """Convert percent to a [0, 1] fraction."""
    return percent / PERCENT


def joules_to_kj(joules: float) -> float:
    """Convert joules to kilojoules (Table VII's MAE unit)."""
    return joules / 1000.0


def kj_to_joules(kj: float) -> float:
    """Convert kilojoules to joules."""
    return kj * 1000.0


def watts_seconds_to_joules(watts: float, seconds: float) -> float:
    """Energy of a constant power draw over an interval."""
    return watts * seconds
