"""Persistence of traces, samples and campaign artifacts.

Research workflows need measurements to outlive the process that took
them: campaigns are expensive, model fitting is iterated, and the paper's
tables should be regenerable without re-simulating.  This module provides
plain-format round-trips:

* **power traces** → CSV (``time_s,power_w`` — loadable by any plotting
  tool, and by this module);
* **migration samples** → JSON (all per-reading arrays plus scalars and
  measured energies; the complete model-fitting input);
* **error reports / comparison grids** → JSON for EXPERIMENTS.md-style
  post-processing;
* **run task specs** → JSON (the distributed queue backend's wire format:
  one file per run, claimed and executed by ``campaign-worker`` processes).

Formats are versioned with a ``schema`` field so future layouts can be
migrated explicitly rather than silently misread.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import os
import pathlib
import pickle
import threading
from typing import Iterable, Union

import numpy as np

from repro.errors import ReproError
from repro.models.features import HostRole, MigrationSample
from repro.regression.metrics import ErrorReport
from repro.telemetry.traces import PowerTrace

__all__ = [
    "save_power_trace_csv",
    "load_power_trace_csv",
    "save_samples_json",
    "load_samples_json",
    "save_error_grid_json",
    "load_error_grid_json",
    "save_run_result",
    "load_run_result",
    "dump_run_result_bytes",
    "load_run_result_bytes",
    "dump_run_batch_bytes",
    "load_run_batch_bytes",
    "save_task_spec",
    "load_task_spec",
    "task_spec_to_dict",
    "task_spec_from_dict",
    "progress_event_to_dict",
    "progress_event_from_dict",
    "append_progress_event",
    "load_progress_events",
    "run_failure_to_dict",
    "run_failure_from_dict",
    "append_failure_record",
    "load_failure_records",
    "COLUMNAR_SCHEMA",
]

_PathLike = Union[str, pathlib.Path]

#: Schema tag written into every JSON artifact.
SAMPLES_SCHEMA = "wavm3-samples/1"
ERRORS_SCHEMA = "wavm3-errors/1"
# /2: traces moved from list-backed to numpy-block storage (their pickle
# state changed shape); old /1 cache entries are rejected and recomputed.
RUN_RESULT_SCHEMA = "wavm3-runresult/2"
RUN_BATCH_SCHEMA = "wavm3-runbatch/1"
TASK_SPEC_SCHEMA = "wavm3-taskspec/1"
# /2: a batch task spec — identical fields except the single run_index
# becomes a contiguous (run_start, run_count) range.
TASK_BATCH_SCHEMA = "wavm3-taskspec/2"
PROGRESS_SCHEMA = "wavm3-progress/1"
FAILURE_SCHEMA = "wavm3-failure/1"
#: The streaming columnar campaign-sample store: one compressed ``.npz``
#: shard per flush window plus an NDJSON manifest (see
#: :mod:`repro.experiments.aggregate`).
COLUMNAR_SCHEMA = "wavm3-columnar/1"


class PersistenceError(ReproError):
    """A file could not be read back as the expected artifact."""


# ---------------------------------------------------------------------------
# Power traces <-> CSV
# ---------------------------------------------------------------------------
def save_power_trace_csv(trace: PowerTrace, path: _PathLike) -> None:
    """Write a power trace as two-column CSV with a header row."""
    path = pathlib.Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", "power_w"])
        for t, w in zip(trace.times, trace.watts):
            writer.writerow([f"{t:.6f}", f"{w:.6f}"])


def load_power_trace_csv(path: _PathLike, label: str = "") -> PowerTrace:
    """Read a power trace written by :func:`save_power_trace_csv`."""
    path = pathlib.Path(path)
    trace = PowerTrace(label=label or path.stem)
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["time_s", "power_w"]:
            raise PersistenceError(f"{path}: not a power-trace CSV (header {header!r})")
        for row in reader:
            if len(row) != 2:
                raise PersistenceError(f"{path}: malformed row {row!r}")
            trace.append(float(row[0]), float(row[1]))
    return trace


# ---------------------------------------------------------------------------
# Migration samples <-> JSON
# ---------------------------------------------------------------------------
_ARRAY_FIELDS = (
    "times", "power_w", "phase", "cpu_host_pct", "cpu_vm_pct", "bw_bps", "dr_pct",
)
_SCALAR_FIELDS = (
    "scenario", "experiment", "live", "family", "run_index",
    "data_bytes", "mem_mb", "mean_bw_bps",
    "energy_initiation_j", "energy_transfer_j", "energy_activation_j",
    "downtime_s",
)


def _sample_to_dict(sample: MigrationSample) -> dict:
    record: dict = {"role": sample.role.value, "notes": dict(sample.notes)}
    for name in _SCALAR_FIELDS:
        record[name] = getattr(sample, name)
    for name in _ARRAY_FIELDS:
        record[name] = np.asarray(getattr(sample, name)).tolist()
    return record


def _sample_from_dict(record: dict) -> MigrationSample:
    try:
        kwargs = {name: record[name] for name in _SCALAR_FIELDS}
        kwargs.update(
            {name: np.asarray(record[name], dtype=np.float64) for name in _ARRAY_FIELDS}
        )
        kwargs["phase"] = np.asarray(record["phase"], dtype=np.int64)
        kwargs["role"] = HostRole(record["role"])
        kwargs["notes"] = dict(record.get("notes", {}))
    except (KeyError, ValueError) as exc:
        raise PersistenceError(f"malformed sample record: {exc}") from exc
    return MigrationSample(**kwargs)


def save_samples_json(samples: Iterable[MigrationSample], path: _PathLike) -> None:
    """Write migration samples (the complete model-fitting input) as JSON."""
    payload = {
        "schema": SAMPLES_SCHEMA,
        "samples": [_sample_to_dict(s) for s in samples],
    }
    pathlib.Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_samples_json(path: _PathLike) -> list[MigrationSample]:
    """Read samples written by :func:`save_samples_json`."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"{path}: not valid JSON: {exc}") from exc
    if payload.get("schema") != SAMPLES_SCHEMA:
        raise PersistenceError(
            f"{path}: unexpected schema {payload.get('schema')!r} "
            f"(want {SAMPLES_SCHEMA!r})"
        )
    return [_sample_from_dict(record) for record in payload["samples"]]


# ---------------------------------------------------------------------------
# Run results <-> pickle (the campaign executor's cache payload)
# ---------------------------------------------------------------------------
def dump_run_result_bytes(run) -> bytes:
    """Serialise one :class:`~repro.experiments.results.RunResult` losslessly.

    Pickle is used (rather than JSON) because a run result is an internal
    artifact read back by the same codebase, and the campaign executor's
    bit-identity guarantee requires an exact round-trip of every trace
    sample, timeline instant and round record.  The payload is wrapped in
    a :data:`RUN_RESULT_SCHEMA` envelope.  These bytes are both the
    run-cache file format (:func:`save_run_result`) and the body of the
    HTTP backend's ``POST /result`` requests.

    Parameters
    ----------
    run:
        The :class:`~repro.experiments.results.RunResult` to serialise.

    Returns
    -------
    bytes
        The schema-enveloped pickle of the run.
    """
    return pickle.dumps(
        {"schema": RUN_RESULT_SCHEMA, "run": run},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def load_run_result_bytes(data: bytes, origin: str = "run result"):
    """Rebuild a run result from :func:`dump_run_result_bytes` output.

    .. warning::
        Unpickling executes code embedded in the payload, so only bytes
        from a trusted source (this codebase's own cache files, or an
        HTTP campaign service bound to a trusted network) may be passed
        here.

    Parameters
    ----------
    data:
        The serialised run result.
    origin:
        Human-readable provenance used in error messages (a file path,
        a worker id, …).

    Returns
    -------
    RunResult
        The deserialised run.

    Raises
    ------
    PersistenceError
        If the bytes are not a valid schema-enveloped
        :class:`~repro.experiments.results.RunResult` pickle.
    """
    from repro.experiments.results import RunResult  # local: avoid import cycle

    try:
        payload = pickle.loads(data)
    except Exception as exc:  # noqa: BLE001 - unpickling arbitrary bytes
        raise PersistenceError(f"{origin}: not a readable run result: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != RUN_RESULT_SCHEMA:
        raise PersistenceError(
            f"{origin}: unexpected schema "
            f"{payload.get('schema') if isinstance(payload, dict) else type(payload)!r} "
            f"(want {RUN_RESULT_SCHEMA!r})"
        )
    run = payload.get("run")
    if not isinstance(run, RunResult):
        raise PersistenceError(f"{origin}: payload is not a RunResult ({type(run)!r})")
    return run


def dump_run_batch_bytes(runs) -> bytes:
    """Serialise a list of run results as one batch-result envelope.

    The counterpart of :func:`dump_run_result_bytes` for a
    ``wavm3-taskspec/2`` batch task: an HTTP worker uploads all runs of
    a batch as a single body instead of one request per run.

    Parameters
    ----------
    runs:
        The :class:`~repro.experiments.results.RunResult` list to
        serialise, in run-index order.

    Returns
    -------
    bytes
        The schema-enveloped pickle of the batch.
    """
    return pickle.dumps(
        {"schema": RUN_BATCH_SCHEMA, "runs": list(runs)},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def load_run_batch_bytes(data: bytes, origin: str = "run batch") -> list:
    """Rebuild a run list from :func:`dump_run_batch_bytes` output.

    .. warning::
        Unpickling executes code embedded in the payload; only bytes
        from a trusted source may be passed here (see
        :func:`load_run_result_bytes`).

    Parameters
    ----------
    data:
        The serialised batch.
    origin:
        Human-readable provenance used in error messages.

    Returns
    -------
    list of RunResult
        The deserialised runs, in the order they were dumped.

    Raises
    ------
    PersistenceError
        If the bytes are not a valid schema-enveloped batch, or any
        element is not a :class:`~repro.experiments.results.RunResult`.
    """
    from repro.experiments.results import RunResult  # local: avoid import cycle

    try:
        payload = pickle.loads(data)
    except Exception as exc:  # noqa: BLE001 - unpickling arbitrary bytes
        raise PersistenceError(f"{origin}: not a readable run batch: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != RUN_BATCH_SCHEMA:
        raise PersistenceError(
            f"{origin}: unexpected schema "
            f"{payload.get('schema') if isinstance(payload, dict) else type(payload)!r} "
            f"(want {RUN_BATCH_SCHEMA!r})"
        )
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        raise PersistenceError(f"{origin}: payload carries no runs")
    for run in runs:
        if not isinstance(run, RunResult):
            raise PersistenceError(
                f"{origin}: batch element is not a RunResult ({type(run)!r})"
            )
    return runs


def save_run_result(run, path: _PathLike) -> None:
    """Persist one :class:`~repro.experiments.results.RunResult` to disk.

    The payload is :func:`dump_run_result_bytes` and the file is written
    via a temporary name + atomic rename so concurrent readers never
    observe a partial file.

    Parameters
    ----------
    run:
        The run to persist.
    path:
        Destination file (conventionally ``run-NNNN.pkl`` inside a
        :class:`~repro.experiments.executor.RunCache` entry).
    """
    from repro.experiments.chaos import chaos_bytes  # local: avoid cycle

    path = pathlib.Path(path)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
    # The "cache-put" chaos seam: an active schedule may crash, delay or
    # corrupt the payload here (corruption is caught on read — a corrupt
    # entry loads as a cache miss and the run is recomputed).
    tmp.write_bytes(chaos_bytes("cache-put", dump_run_result_bytes(run)))
    tmp.replace(path)


def load_run_result(path: _PathLike):
    """Read a run result written by :func:`save_run_result`.

    Parameters
    ----------
    path:
        The file to read.

    Returns
    -------
    RunResult
        The deserialised run.

    Raises
    ------
    PersistenceError
        On any malformed, truncated or wrong-schema file — callers
        treating the file as a cache entry should catch it and fall back
        to re-executing the run.
    """
    path = pathlib.Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise PersistenceError(f"{path}: not a readable run result: {exc}") from exc
    return load_run_result_bytes(data, origin=str(path))


# ---------------------------------------------------------------------------
# Run task specs <-> JSON (the distributed queue's wire format)
# ---------------------------------------------------------------------------
def task_spec_to_dict(task) -> dict:
    """Serialise a run task (single or batch) to plain JSON.

    Every constituent is a flat dataclass of scalars, so the canonical
    JSON of a task is also exactly the cache-key payload the executor
    hashes — a worker can therefore verify the embedded ``key`` before
    trusting a spec.  This dict is the wire format of both distributed
    backends: the queue backend writes it to spool files, the HTTP
    backend returns it from ``POST /claim``.

    Parameters
    ----------
    task:
        A :class:`~repro.experiments.executor.RunTask` or
        :class:`~repro.experiments.executor.RunBatchTask` to serialise.

    Returns
    -------
    dict
        A JSON-ready ``wavm3-taskspec/1`` document for a single-run
        task, ``wavm3-taskspec/2`` for a batch (``run_index`` replaced
        by ``run_start``/``run_count``).
    """
    spec = {
        "key": task.key,
        "seed": int(task.seed),
        "scenario": dataclasses.asdict(task.scenario),
        "settings": dataclasses.asdict(task.settings),
        "migration_config": (
            dataclasses.asdict(task.migration_config)
            if task.migration_config is not None
            else None
        ),
        "stabilization": dataclasses.asdict(task.stabilization),
    }
    if getattr(task, "run_count", None) is not None:
        spec["schema"] = TASK_BATCH_SCHEMA
        spec["run_start"] = int(task.run_start)
        spec["run_count"] = int(task.run_count)
    else:
        spec["schema"] = TASK_SPEC_SCHEMA
        spec["run_index"] = int(task.run_index)
    return spec


def task_spec_from_dict(payload: dict):
    """Rebuild a run task (single or batch) from JSON data.

    Parameters
    ----------
    payload:
        A ``wavm3-taskspec/1`` or ``wavm3-taskspec/2`` document
        (:func:`task_spec_to_dict` output).

    Returns
    -------
    RunTask or RunBatchTask
        The reconstructed task, matching the schema tag.

    Raises
    ------
    PersistenceError
        On a wrong schema tag or any missing/mistyped field — a worker
        should fail such a task explicitly rather than guess.
    """
    from repro.experiments.design import MigrationScenario  # local: avoid cycle
    from repro.experiments.executor import RunBatchTask, RunTask
    from repro.experiments.runner import RunnerSettings
    from repro.hypervisor.migration import MigrationConfig
    from repro.telemetry.stabilization import StabilizationRule

    schema = payload.get("schema") if isinstance(payload, dict) else None
    if schema not in (TASK_SPEC_SCHEMA, TASK_BATCH_SCHEMA):
        raise PersistenceError(
            f"unexpected task-spec schema "
            f"{schema if isinstance(payload, dict) else type(payload)!r} "
            f"(want {TASK_SPEC_SCHEMA!r} or {TASK_BATCH_SCHEMA!r})"
        )
    try:
        migration_config = (
            MigrationConfig(**payload["migration_config"])
            if payload["migration_config"] is not None
            else None
        )
        common = dict(
            seed=int(payload["seed"]),
            settings=RunnerSettings(**payload["settings"]),
            migration_config=migration_config,
            stabilization=StabilizationRule(**payload["stabilization"]),
            scenario=MigrationScenario(**payload["scenario"]),
            key=payload.get("key"),
        )
        if schema == TASK_BATCH_SCHEMA:
            return RunBatchTask(
                run_start=int(payload["run_start"]),
                run_count=int(payload["run_count"]),
                **common,
            )
        return RunTask(run_index=int(payload["run_index"]), **common)
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed task spec: {exc}") from exc


def save_task_spec(task, path: _PathLike) -> None:
    """Write one task spec atomically (temp file + rename).

    Atomicity matters: spool directories are scanned by concurrent
    workers, and a claim must never observe a half-written spec.

    Parameters
    ----------
    task:
        The :class:`~repro.experiments.executor.RunTask` to spool.
    path:
        Destination file (conventionally ``<task-id>.json`` in a spool's
        ``tasks/`` directory).
    """
    path = pathlib.Path(path)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
    tmp.write_text(
        json.dumps(task_spec_to_dict(task), sort_keys=True, indent=1),
        encoding="utf-8",
    )
    tmp.replace(path)


def load_task_spec(path: _PathLike):
    """Read a task spec written by :func:`save_task_spec`.

    Parameters
    ----------
    path:
        The spec file to read.

    Returns
    -------
    RunTask
        The reconstructed task.

    Raises
    ------
    PersistenceError
        On malformed, truncated or wrong-schema files — a worker should
        fail such a task explicitly rather than guess.
    """
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError) as exc:
        raise PersistenceError(f"{path}: not a readable task spec: {exc}") from exc
    try:
        return task_spec_from_dict(payload)
    except PersistenceError as exc:
        raise PersistenceError(f"{path}: {exc}") from exc


# ---------------------------------------------------------------------------
# Progress events <-> JSON / NDJSON (the live campaign-progress stream)
# ---------------------------------------------------------------------------
_PROGRESS_INT_FIELDS = ("run_index", "runs_completed", "samples")
_PROGRESS_FLOAT_FIELDS = ("wall_s", "samples_per_s", "at")
_PROGRESS_STR_FIELDS = ("task_id", "scenario", "worker")


def progress_event_to_dict(event) -> dict:
    """Serialise a :class:`~repro.experiments.results.ProgressEvent`.

    This dict is the progress wire format of both distributed backends:
    one NDJSON line in a queue worker's spool sidecar, and the body of
    the HTTP backend's ``POST /progress`` requests.

    Parameters
    ----------
    event:
        The :class:`~repro.experiments.results.ProgressEvent` to serialise.

    Returns
    -------
    dict
        A JSON-ready ``wavm3-progress/1`` document.
    """
    record: dict = {"schema": PROGRESS_SCHEMA}
    for name in _PROGRESS_STR_FIELDS:
        record[name] = str(getattr(event, name))
    for name in _PROGRESS_INT_FIELDS:
        record[name] = int(getattr(event, name))
    for name in _PROGRESS_FLOAT_FIELDS:
        record[name] = float(getattr(event, name))
    return record


def progress_event_from_dict(payload: dict):
    """Rebuild a :class:`~repro.experiments.results.ProgressEvent`.

    Parameters
    ----------
    payload:
        A ``wavm3-progress/1`` document (:func:`progress_event_to_dict`
        output).

    Returns
    -------
    ProgressEvent
        The reconstructed event.

    Raises
    ------
    PersistenceError
        On a wrong schema tag or any missing/mistyped field.
    """
    from repro.experiments.results import ProgressEvent  # local: avoid cycle

    if not isinstance(payload, dict) or payload.get("schema") != PROGRESS_SCHEMA:
        raise PersistenceError(
            f"unexpected progress schema "
            f"{payload.get('schema') if isinstance(payload, dict) else type(payload)!r} "
            f"(want {PROGRESS_SCHEMA!r})"
        )
    try:
        kwargs: dict = {name: str(payload[name]) for name in _PROGRESS_STR_FIELDS}
        kwargs.update({name: int(payload[name]) for name in _PROGRESS_INT_FIELDS})
        kwargs.update({name: float(payload[name]) for name in _PROGRESS_FLOAT_FIELDS})
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed progress event: {exc}") from exc
    return ProgressEvent(**kwargs)


def append_progress_event(event, path: _PathLike) -> None:
    """Append one progress event to an NDJSON sidecar file.

    Each queue worker appends to its *own* per-worker sidecar
    (``<spool>/progress/<worker>.ndjson``), so lines never interleave
    across processes; a single ``write`` of one ``\\n``-terminated line
    keeps concurrent readers from seeing torn records in practice.

    Parameters
    ----------
    event:
        The :class:`~repro.experiments.results.ProgressEvent` to record.
    path:
        The sidecar file (created, along with its parent, if missing).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(progress_event_to_dict(event), sort_keys=True) + "\n"
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line)


def _ndjson_lines(path: pathlib.Path) -> list[str]:
    """Best-effort decoded lines of an NDJSON file that may be mid-append.

    Decodes per line from raw bytes rather than ``read_text``-ing the
    whole file: a reader racing a live appender can observe a final line
    torn in the middle of a multi-byte UTF-8 sequence, which a
    whole-file decode turns into a ``UnicodeDecodeError`` that takes the
    status view down.  Undecodable lines are dropped exactly like
    malformed JSON ones — the appender's next flush completes them.
    """
    try:
        data = path.read_bytes()
    except OSError:
        return []
    lines = []
    for raw in data.split(b"\n"):
        try:
            lines.append(raw.decode("utf-8"))
        except UnicodeDecodeError:
            continue  # torn multi-byte tail of an in-flight append
    return lines


def load_progress_events(path: _PathLike) -> list:
    """Read every valid progress event from an NDJSON sidecar.

    Tolerant by design: the file may be mid-append by a live worker, so a
    torn or malformed trailing line — even one cut inside a multi-byte
    UTF-8 sequence — is skipped rather than fatal (the status views
    re-read the file on their next refresh).

    Parameters
    ----------
    path:
        The sidecar file; a missing file reads as no events.

    Returns
    -------
    list[ProgressEvent]
        The decodable events, in file (chronological) order.
    """
    events = []
    for line in _ndjson_lines(pathlib.Path(path)):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(progress_event_from_dict(json.loads(line)))
        except (json.JSONDecodeError, PersistenceError):
            continue  # torn or corrupt line: skip, keep the stream usable
    return events


# ---------------------------------------------------------------------------
# Failure records <-> JSON / NDJSON (the campaign failure ledger)
# ---------------------------------------------------------------------------
def run_failure_to_dict(failure) -> dict:
    """Serialise a :class:`~repro.experiments.faults.RunFailure`.

    This dict is the ``wavm3-failure/1`` wire format: one NDJSON line in
    the campaign's failure ledger (``failures.ndjson`` next to the run
    cache), and the shape of the ``failures`` entries in
    ``spool_status()`` and the HTTP backend's ``GET /status``.

    Parameters
    ----------
    failure:
        The :class:`~repro.experiments.faults.RunFailure` to serialise.

    Returns
    -------
    dict
        A JSON-ready ``wavm3-failure/1`` document.
    """
    return {
        "schema": FAILURE_SCHEMA,
        "task_id": str(failure.task_id),
        "scenario": str(failure.scenario),
        "run_indices": [int(i) for i in failure.run_indices],
        "attempt": int(failure.attempt),
        "worker": str(failure.worker),
        "kind": str(failure.kind),
        "message": str(failure.message),
        "traceback_digest": (
            str(failure.traceback_digest)
            if failure.traceback_digest is not None
            else None
        ),
        "wall_s": float(failure.wall_s) if failure.wall_s is not None else None,
        "at": float(failure.at),
        "fate": str(failure.fate),
    }


def run_failure_from_dict(payload: dict):
    """Rebuild a :class:`~repro.experiments.faults.RunFailure`.

    Parameters
    ----------
    payload:
        A ``wavm3-failure/1`` document (:func:`run_failure_to_dict`
        output).

    Returns
    -------
    RunFailure
        The reconstructed record.

    Raises
    ------
    PersistenceError
        On a wrong schema tag or any missing/mistyped field.
    """
    from repro.experiments.faults import RunFailure  # local: avoid cycle

    if not isinstance(payload, dict) or payload.get("schema") != FAILURE_SCHEMA:
        raise PersistenceError(
            f"unexpected failure schema "
            f"{payload.get('schema') if isinstance(payload, dict) else type(payload)!r} "
            f"(want {FAILURE_SCHEMA!r})"
        )
    try:
        digest = payload.get("traceback_digest")
        wall = payload.get("wall_s")
        return RunFailure(
            task_id=str(payload["task_id"]),
            scenario=str(payload["scenario"]),
            run_indices=tuple(int(i) for i in payload["run_indices"]),
            attempt=int(payload["attempt"]),
            worker=str(payload["worker"]),
            kind=str(payload["kind"]),
            message=str(payload["message"]),
            traceback_digest=str(digest) if digest is not None else None,
            wall_s=float(wall) if wall is not None else None,
            at=float(payload["at"]),
            fate=str(payload["fate"]),
        )
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        # ReproError covers RunFailure's own validation (unknown fate).
        raise PersistenceError(f"malformed failure record: {exc}") from exc


def append_failure_record(failure, path: _PathLike) -> None:
    """Append one failure record to an NDJSON ledger file.

    Mirrors :func:`append_progress_event`: one ``\\n``-terminated line
    per record, parent directory created on demand, so the ledger
    survives a crashed coordinator and is tail-able while a campaign
    runs.

    Parameters
    ----------
    failure:
        The :class:`~repro.experiments.faults.RunFailure` to record.
    path:
        The ledger file (conventionally ``failures.ndjson`` next to the
        run cache).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(run_failure_to_dict(failure), sort_keys=True) + "\n"
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line)


def load_failure_records(path: _PathLike) -> list:
    """Read every valid failure record from an NDJSON ledger.

    Tolerant like :func:`load_progress_events`: torn or malformed lines
    are skipped, a missing file reads as an empty ledger.

    Parameters
    ----------
    path:
        The ledger file.

    Returns
    -------
    list[RunFailure]
        The decodable records, in file (chronological) order.
    """
    records = []
    for line in _ndjson_lines(pathlib.Path(path)):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(run_failure_from_dict(json.loads(line)))
        except (json.JSONDecodeError, PersistenceError):
            continue  # torn or corrupt line: skip, keep the ledger usable
    return records


# ---------------------------------------------------------------------------
# Error grids <-> JSON
# ---------------------------------------------------------------------------
def save_error_grid_json(
    errors: dict[str, dict[str, dict[str, ErrorReport]]], path: _PathLike
) -> None:
    """Write a Table-VII-style error grid (model → kind → role)."""
    payload = {
        "schema": ERRORS_SCHEMA,
        "grid": {
            model: {
                kind: {
                    role: {
                        "n": report.n,
                        "mae_j": report.mae_j,
                        "rmse_j": report.rmse_j,
                        "nrmse": report.nrmse,
                    }
                    for role, report in roles.items()
                }
                for kind, roles in kinds.items()
            }
            for model, kinds in errors.items()
        },
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_error_grid_json(path: _PathLike) -> dict[str, dict[str, dict[str, ErrorReport]]]:
    """Read an error grid written by :func:`save_error_grid_json`."""
    path = pathlib.Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != ERRORS_SCHEMA:
        raise PersistenceError(
            f"{path}: unexpected schema {payload.get('schema')!r} "
            f"(want {ERRORS_SCHEMA!r})"
        )
    grid: dict[str, dict[str, dict[str, ErrorReport]]] = {}
    for model, kinds in payload["grid"].items():
        grid[model] = {}
        for kind, roles in kinds.items():
            grid[model][kind] = {}
            for role, cells in roles.items():
                grid[model][kind][role] = ErrorReport(
                    n=int(cells["n"]),
                    mae_j=float(cells["mae_j"]),
                    rmse_j=float(cells["rmse_j"]),
                    nrmse=float(cells["nrmse"]),
                )
    return grid
