"""An idle guest workload.

The paper's idle VMs still run a kernel, so a small housekeeping CPU
demand is kept (timer ticks, kthreads); everything else is zero.  Per
Section IV-B, an idle VM has ``CPU(v,t) = 0`` and ``DR(v,t) = 0`` from the
model's perspective — the housekeeping demand here is small enough to sit
inside measurement noise, matching that assumption.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.workloads.base import Workload

__all__ = ["IdleWorkload"]


class IdleWorkload(Workload):
    """A guest running nothing but its OS.

    Parameters
    ----------
    housekeeping_fraction:
        Mean per-vCPU demand of the idle kernel (default 0.3 %).
    """

    name = "idle"

    def __init__(self, housekeeping_fraction: float = 0.003) -> None:
        if not 0.0 <= housekeeping_fraction <= 0.05:
            raise ConfigurationError(
                "housekeeping_fraction must be a small fraction in [0, 0.05], "
                f"got {housekeeping_fraction!r}"
            )
        self._housekeeping = float(housekeeping_fraction)

    def cpu_fraction(self) -> float:
        """Idle kernel housekeeping only."""
        return self._housekeeping
