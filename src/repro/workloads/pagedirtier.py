"""The paper's memory-intensive workload: ``pagedirtier``.

Section V-A2: *"we chose a memory-intensive workload called pagedirtier
implemented in ANSI C that continuously writes in memory pages in random
order.  We fixed the memory allocated to this application to 3.8 GB to
avoid swapping effects."*

The MEMLOAD experiments sweep "the percentage of memory pages dirtied in
the migrating VM" from 5 % to 95 %.  We map that directly onto the
workload's *working-set fraction*: pagedirtier touches ``dirty_percent`` of
the guest's pages, uniformly at random, at a configurable write rate.  The
distinct-page statistics (what Xen's dirty log actually records) are
computed by :class:`~repro.hypervisor.memory.VmMemory` from the rate and
working-set via the standard occupancy formula.

The default write rate is chosen so that high dirty percentages outpace a
gigabit link (≈ 29 k pages/s), which is what makes the paper's high-DR
live migrations degenerate into stop-and-copy behaviour (Section VI-D).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import PAGE_SIZE_BYTES, mib_to_pages
from repro.workloads.base import Workload

__all__ = ["PageDirtierWorkload"]


class PageDirtierWorkload(Workload):
    """Continuously writes guest pages in random order.

    Parameters
    ----------
    dirty_percent:
        Percentage of the VM's memory pages that the workload touches
        (the paper's MEMLOAD sweep variable, 5–95).
    vm_ram_mb:
        Guest memory size (4096 MB in the paper's experiments).
    allocation_mb:
        Bytes actually allocated by pagedirtier (3891 MB ≈ 3.8 GB in the
        paper — below guest RAM to avoid swapping).  The working set is
        capped by this allocation.
    write_rate_pages_s:
        Raw page-write rate of the single-threaded writer loop.  The
        default of 42 000 pages/s (~172 MB/s of 4 KiB-granular stores)
        models a tight ANSI C loop on one vCPU.
    """

    name = "pagedirtier"

    def __init__(
        self,
        dirty_percent: float,
        vm_ram_mb: int = 4096,
        allocation_mb: int = 3891,
        write_rate_pages_s: float = 42_000.0,
    ) -> None:
        if not 0.0 <= dirty_percent <= 100.0:
            raise ConfigurationError(
                f"dirty_percent must be in [0, 100], got {dirty_percent!r}"
            )
        if vm_ram_mb <= 0:
            raise ConfigurationError(f"vm_ram_mb must be positive, got {vm_ram_mb!r}")
        if allocation_mb <= 0 or allocation_mb > vm_ram_mb:
            raise ConfigurationError(
                f"allocation_mb must be in (0, vm_ram_mb], got {allocation_mb!r}"
            )
        if write_rate_pages_s < 0:
            raise ConfigurationError(
                f"write_rate_pages_s must be non-negative, got {write_rate_pages_s!r}"
            )
        self._dirty_percent = float(dirty_percent)
        self._vm_ram_mb = int(vm_ram_mb)
        self._allocation_mb = int(allocation_mb)
        self._write_rate = float(write_rate_pages_s)

    # ------------------------------------------------------------------
    @property
    def dirty_percent(self) -> float:
        """The MEMLOAD sweep variable (percentage of guest pages touched)."""
        return self._dirty_percent

    @property
    def allocation_pages(self) -> int:
        """Pages allocated by the writer process."""
        return mib_to_pages(self._allocation_mb)

    # ------------------------------------------------------------------
    def cpu_fraction(self) -> float:
        """A tight store loop pins its single vCPU."""
        return 0.98 if self._write_rate > 0 else 0.003

    def dirty_page_rate(self) -> float:
        """Raw page-write rate in pages/s."""
        return self._write_rate

    def working_set_fraction(self) -> float:
        """Touched fraction of *guest* memory, capped by the allocation."""
        guest_pages = mib_to_pages(self._vm_ram_mb)
        target_pages = self._dirty_percent / 100.0 * guest_pages
        return min(target_pages, self.allocation_pages) / guest_pages

    def memory_activity_fraction(self) -> float:
        """Random-order stores hammer the memory bus.

        Random 4 KiB stores amplify on the bus: every page write costs a
        read-for-ownership fill plus the write-back (≈ 4× the nominal
        store traffic), normalised against ~1 GB/s of effective traffic.
        A wider working set defeats the caches, so activity also grows
        with the touched fraction — this is what couples DR to *memory*
        power (invisible to CPU-only models) and makes the γ(t)·DR term
        of Eq. 6 identifiable from the MEMLOAD-VM sweep.
        """
        amplified_bps = 4.0 * self._write_rate * PAGE_SIZE_BYTES
        locality_factor = 0.20 + 0.80 * self.working_set_fraction() ** 0.5
        return min(1.0, amplified_bps / 1.0e9) * 0.95 * locality_factor
