"""Workload substrate (subsystem S4).

Behavioural models of the programs the paper runs inside its VMs:

* :class:`~repro.workloads.matrixmult.MatrixMultWorkload` — the OpenMP
  matrix-multiplication kernel used for all CPU-intensive load
  (parallelises across every vCPU with small synchronisation overhead);
* :class:`~repro.workloads.pagedirtier.PageDirtierWorkload` — the ANSI C
  ``pagedirtier`` that continuously writes memory pages in random order
  (the paper fixes its allocation to 3.8 GB of the 4 GB VM);
* :class:`~repro.workloads.idle.IdleWorkload` — an idle guest;
* :class:`~repro.workloads.netload.NetworkWorkload` — network-intensive
  load, implemented for the paper's stated future-work direction;
* :class:`~repro.workloads.mixed.MixedWorkload` — weighted combination.

A workload only exposes what the energy model can observe: per-vCPU CPU
demand, the page-dirtying process (rate + working-set), memory-bus
activity and NIC traffic.
"""

from repro.workloads.base import Workload
from repro.workloads.idle import IdleWorkload
from repro.workloads.matrixmult import MatrixMultWorkload
from repro.workloads.mixed import MixedWorkload
from repro.workloads.netload import NetworkWorkload
from repro.workloads.pagedirtier import PageDirtierWorkload

__all__ = [
    "Workload",
    "IdleWorkload",
    "MatrixMultWorkload",
    "PageDirtierWorkload",
    "NetworkWorkload",
    "MixedWorkload",
]
