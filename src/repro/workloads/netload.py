"""Network-intensive workload (the paper's future-work extension).

Section VIII: *"We plan to extend this work by also considering the impact
of network-intensive workloads."*  The paper excluded these loads after
observing negligible energy impact during migration; we implement the
workload anyway so the extension experiments can be run (see
``benchmarks/test_bench_ablation_features.py`` and the examples), and so a
data-centre scenario can include realistic service traffic.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.workloads.base import Workload

__all__ = ["NetworkWorkload"]


class NetworkWorkload(Workload):
    """A guest serving bulk network traffic.

    Parameters
    ----------
    tx_bps, rx_bps:
        Mean guest traffic in bytes/s.
    cpu_per_gbps:
        vCPU fraction consumed per gigabit/s of traffic (interrupt and
        copy costs of the paravirtual network path).
    """

    name = "netload"

    def __init__(
        self,
        tx_bps: float = 0.0,
        rx_bps: float = 0.0,
        cpu_per_gbps: float = 0.35,
    ) -> None:
        if tx_bps < 0 or rx_bps < 0:
            raise ConfigurationError("traffic rates must be non-negative")
        if cpu_per_gbps < 0:
            raise ConfigurationError(f"cpu_per_gbps must be non-negative, got {cpu_per_gbps!r}")
        self._tx = float(tx_bps)
        self._rx = float(rx_bps)
        self._cpu_per_gbps = float(cpu_per_gbps)

    def cpu_fraction(self) -> float:
        """CPU cost of pushing packets through the PV network path."""
        gbps = (self._tx + self._rx) * 8.0 / 1e9
        return min(1.0, 0.01 + self._cpu_per_gbps * gbps)

    def nic_tx_bps(self) -> float:
        """Mean transmit traffic."""
        return self._tx

    def nic_rx_bps(self) -> float:
        """Mean receive traffic."""
        return self._rx

    def memory_activity_fraction(self) -> float:
        """Packet buffers produce light memory traffic."""
        return min(0.15, (self._tx + self._rx) / 1.0e9 * 0.1)
