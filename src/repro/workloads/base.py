"""Abstract workload interface.

A workload is a *behavioural* model: it does not execute instructions, it
answers the questions the rest of the system asks about a running guest —
how much CPU it wants, how fast it dirties memory pages, how much memory
bus and NIC it keeps busy.  These are exactly the observables that enter
the paper's resource-utilisation model (Section IV-B).
"""

from __future__ import annotations

import abc

__all__ = ["Workload"]


class Workload(abc.ABC):
    """Base class for guest workload models.

    Subclasses override the per-resource demand methods; everything is
    expressed as steady-state means, with stochastic fluctuation applied
    by the reading side (host jitter, feature sampling) so that workload
    objects stay immutable and shareable.
    """

    #: Human-readable identifier used in reports and trace labels.
    name: str = "workload"

    # ------------------------------------------------------------------
    # CPU
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def cpu_fraction(self) -> float:
        """Mean demand per vCPU as a fraction of one hardware thread [0, 1]."""

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def dirty_page_rate(self) -> float:
        """Page-dirtying write rate in pages/s (0 for read-only loads).

        This is the rate of *write operations* hitting pages; the number of
        *distinct* pages dirtied over an interval is computed by the VM
        memory model from this rate and the working-set size.
        """
        return 0.0

    def working_set_fraction(self) -> float:
        """Fraction of the VM's memory the workload actively writes [0, 1]."""
        return 0.0

    def memory_activity_fraction(self) -> float:
        """Memory-bus busy fraction contributed by this workload [0, 1]."""
        return 0.0

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------
    def nic_tx_bps(self) -> float:
        """Mean guest transmit traffic in bytes/s."""
        return 0.0

    def nic_rx_bps(self) -> float:
        """Mean guest receive traffic in bytes/s."""
        return 0.0

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, float]:
        """Summary of the workload's steady-state demands (for reports)."""
        return {
            "cpu_fraction": self.cpu_fraction(),
            "dirty_page_rate": self.dirty_page_rate(),
            "working_set_fraction": self.working_set_fraction(),
            "memory_activity_fraction": self.memory_activity_fraction(),
            "nic_tx_bps": self.nic_tx_bps(),
            "nic_rx_bps": self.nic_rx_bps(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
