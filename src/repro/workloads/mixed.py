"""Weighted combination of workloads.

Real data-centre guests rarely run a single pure kernel; a mixed workload
lets examples and extension experiments blend CPU, memory and network
behaviour while reusing the calibrated component models.  Demands combine
additively (clamped where the resource saturates); the working set is the
largest component working set (dirty writes of the components overlap in
the same guest address space, so summing fractions would double-count).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.workloads.base import Workload

__all__ = ["MixedWorkload"]


class MixedWorkload(Workload):
    """A convex-ish combination of component workloads.

    Parameters
    ----------
    components:
        ``(weight, workload)`` pairs; weights must be positive and are
        *not* required to sum to 1 (a guest can genuinely run two full
        programs, subject to the per-resource clamps).
    """

    name = "mixed"

    def __init__(self, components: Sequence[tuple[float, Workload]]) -> None:
        if not components:
            raise ConfigurationError("MixedWorkload needs at least one component")
        for weight, workload in components:
            if weight <= 0:
                raise ConfigurationError(f"component weights must be positive, got {weight!r}")
            if not isinstance(workload, Workload):
                raise ConfigurationError(f"component {workload!r} is not a Workload")
        self._components = [(float(w), wl) for w, wl in components]

    @property
    def components(self) -> tuple[tuple[float, Workload], ...]:
        """The (weight, workload) pairs."""
        return tuple(self._components)

    def _weighted(self, attr: str, clamp: float | None = 1.0) -> float:
        total = sum(w * getattr(wl, attr)() for w, wl in self._components)
        return min(total, clamp) if clamp is not None else total

    def cpu_fraction(self) -> float:
        """Sum of weighted demands, clamped at one full vCPU."""
        return self._weighted("cpu_fraction")

    def dirty_page_rate(self) -> float:
        """Write rates add (different loops interleave their stores)."""
        return self._weighted("dirty_page_rate", clamp=None)

    def working_set_fraction(self) -> float:
        """Largest component working set (address spaces overlap)."""
        return max(wl.working_set_fraction() for _, wl in self._components)

    def memory_activity_fraction(self) -> float:
        """Bus activity adds and saturates."""
        return self._weighted("memory_activity_fraction")

    def nic_tx_bps(self) -> float:
        """Transmit traffic adds."""
        return self._weighted("nic_tx_bps", clamp=None)

    def nic_rx_bps(self) -> float:
        """Receive traffic adds."""
        return self._weighted("nic_rx_bps", clamp=None)
