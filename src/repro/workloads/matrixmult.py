"""The paper's CPU-intensive workload: OpenMP matrix multiplication.

Section V-A1: *"we use an OpenMP C implementation of a matrix
multiplication algorithm … it can be easily parallelised allowing us to
load all virtual CPUs of the VMs … while it introduces only small
communication and synchronisation overheads."*

Behaviourally this means:

* every vCPU is kept busy at close to 100 % (minus a small parallel
  efficiency loss for synchronisation at tile boundaries);
* the working set is the three matrix buffers — small relative to the 4 GB
  VM, and only the output matrix is written, so the dirty-page rate is
  modest (this is why CPULOAD live migrations converge quickly);
* the kernel is memory-bandwidth hungry while it streams tiles, captured
  as a moderate memory-bus activity fraction.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import PAGE_SIZE_BYTES
from repro.workloads.base import Workload

__all__ = ["MatrixMultWorkload"]


class MatrixMultWorkload(Workload):
    """Dense matrix multiplication saturating all vCPUs.

    Parameters
    ----------
    matrix_order:
        Problem size N (square N×N matrices of float64).  Determines the
        working set: three buffers of ``8·N²`` bytes.
    vm_ram_mb:
        RAM of the VM running the kernel, to express the working set as a
        fraction of guest memory.
    intensity:
        Target per-vCPU utilisation before efficiency loss (1.0 = pinned).
    parallel_efficiency:
        Fraction of the target actually achieved once synchronisation
        overhead is paid (paper: "small … overheads").
    """

    name = "matrixmult"

    def __init__(
        self,
        matrix_order: int = 2048,
        vm_ram_mb: int = 4096,
        intensity: float = 1.0,
        parallel_efficiency: float = 0.97,
    ) -> None:
        if matrix_order <= 0:
            raise ConfigurationError(f"matrix_order must be positive, got {matrix_order!r}")
        if vm_ram_mb <= 0:
            raise ConfigurationError(f"vm_ram_mb must be positive, got {vm_ram_mb!r}")
        if not 0.0 < intensity <= 1.0:
            raise ConfigurationError(f"intensity must be in (0, 1], got {intensity!r}")
        if not 0.0 < parallel_efficiency <= 1.0:
            raise ConfigurationError(
                f"parallel_efficiency must be in (0, 1], got {parallel_efficiency!r}"
            )
        self._order = int(matrix_order)
        self._vm_ram_mb = int(vm_ram_mb)
        self._intensity = float(intensity)
        self._efficiency = float(parallel_efficiency)

    # ------------------------------------------------------------------
    @property
    def matrix_order(self) -> int:
        """Problem size N."""
        return self._order

    @property
    def working_set_bytes(self) -> int:
        """Three float64 N×N buffers (A, B and the output C)."""
        return 3 * 8 * self._order * self._order

    # ------------------------------------------------------------------
    def cpu_fraction(self) -> float:
        """Per-vCPU demand: intensity shaved by parallel efficiency."""
        return self._intensity * self._efficiency

    def dirty_page_rate(self) -> float:
        """Writes hit the output matrix as tiles complete.

        One pass over C (``8·N²`` bytes) per multiply; with a classic
        tiled kernel sustaining roughly ``2·N³`` flops at a few Gflop/s
        the resulting page-write rate is small — the defining property
        that separates CPULOAD from MEMLOAD migrations.
        """
        multiply_seconds = max(2.0 * self._order**3 / 3.0e9, 1e-3)
        output_pages = 8 * self._order * self._order / PAGE_SIZE_BYTES
        return output_pages / multiply_seconds * self._intensity

    def working_set_fraction(self) -> float:
        """Matrix buffers as a fraction of guest RAM (capped at 1)."""
        return min(1.0, self.working_set_bytes / (self._vm_ram_mb * 1024 * 1024))

    def memory_activity_fraction(self) -> float:
        """Streaming tile loads keep the memory bus moderately busy.

        Kept small per VM so that the bus term does not saturate with a
        handful of guests (the host-level activity is the sum over VMs).
        """
        return 0.055 * self._intensity
