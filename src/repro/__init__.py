"""WAVM3 — a workload-aware energy model for virtual machine migration.

A full reproduction of De Maio, Kecskemeti & Prodan, *"A Workload-Aware
Energy Model for Virtual Machine Migration"* (IEEE CLUSTER 2015):

* the **WAVM3** phase-based energy model and the HUANG / LIU / STRUNK
  comparison models (:mod:`repro.models`);
* the regression pipeline with the paper's training protocol and the
  C1→C2 cross-testbed bias correction (:mod:`repro.regression`);
* a discrete-event **Xen testbed simulator** standing in for the paper's
  physical infrastructure — hosts, credit-scheduler CPU accounting, the
  live pre-copy and non-live migration engines, Voltech power meters and
  dstat monitoring (:mod:`repro.simulator`, :mod:`repro.cluster`,
  :mod:`repro.hypervisor`, :mod:`repro.workloads`, :mod:`repro.telemetry`);
* the five experiment families of Table II and generators for every table
  and figure of the evaluation (:mod:`repro.experiments`,
  :mod:`repro.analysis`);
* an energy-aware consolidation manager showing the model in its intended
  role (:mod:`repro.consolidation`).

Quickstart
----------
>>> from repro import quick_migration_energy
>>> result = quick_migration_energy(live=True, seed=7)
>>> result.timeline.complete
True
"""

from repro._version import __version__
from repro.errors import ReproError

__all__ = [
    "__version__",
    "ReproError",
    "quick_migration_energy",
]


def quick_migration_energy(live: bool = True, seed: int = 0, family: str = "m"):
    """Run one instrumented migration on a default testbed.

    A convenience wrapper used by the README quickstart: builds the m01–m02
    (or o1–o2) testbed, boots a 4 GB ``migrating-cpu`` guest, migrates it,
    and returns the :class:`~repro.experiments.results.RunResult` with
    power traces, the phase timeline and per-phase energies.

    Parameters
    ----------
    live:
        Live (pre-copy) or non-live (suspend/resume) migration.
    seed:
        Master seed; every byte of the result is reproducible from it.
    family:
        Machine pair to use (``"m"`` or ``"o"``).
    """
    from repro.experiments.design import MigrationScenario
    from repro.experiments.runner import ScenarioRunner

    scenario = MigrationScenario(
        experiment="quickstart",
        label="quickstart",
        live=live,
        load_vm_count=0,
        dirty_percent=None,
        family=family,
    )
    return ScenarioRunner(seed=seed).run_once(scenario, run_index=0)
