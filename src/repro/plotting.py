"""ASCII plotting of power traces and figure panels.

The benches and the CLI regenerate the paper's figures as terminal
line-charts: multiple labelled series on one axis grid, with the phase
boundaries (``ms``, ``ts``, ``te``, ``me``) rendered as vertical marks —
enough to verify every qualitative claim the figures carry without a
display server.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ascii_plot", "plot_figure_series"]

_GLYPHS = "ox+*#@%&"


def ascii_plot(
    series: Sequence[tuple[str, np.ndarray, np.ndarray]],
    width: int = 78,
    height: int = 18,
    x_label: str = "TIME [sec]",
    y_label: str = "POWER [W]",
    marks: Sequence[tuple[str, float]] = (),
    title: str = "",
) -> str:
    """Render labelled (x, y) series as an ASCII chart.

    Parameters
    ----------
    series:
        ``(label, x, y)`` triples; axes are scaled to cover all of them.
    width, height:
        Plot-area size in characters.
    marks:
        ``(name, x_position)`` vertical markers (phase boundaries).
    title:
        Caption printed above the chart.
    """
    if not series:
        raise ConfigurationError("ascii_plot needs at least one series")
    if width < 16 or height < 4:
        raise ConfigurationError("plot area too small")

    xs = np.concatenate([np.asarray(x, dtype=float) for _, x, _ in series])
    ys = np.concatenate([np.asarray(y, dtype=float) for _, _, y in series])
    if xs.size == 0:
        raise ConfigurationError("series are empty")
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, int((x - x_lo) / (x_hi - x_lo) * (width - 1))))

    def to_row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, height - 1 - int(frac * (height - 1))))

    for name, x_mark in marks:
        col = to_col(x_mark)
        for row in range(height):
            grid[row][col] = "|" if grid[row][col] == " " else grid[row][col]

    for index, (_, x, y) in enumerate(series):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        # Sample each column once to keep dense traces readable.
        for col in range(width):
            x_here = x_lo + (x_hi - x_lo) * col / (width - 1)
            if x_here < x.min() or x_here > x.max():
                continue
            grid[to_row(float(np.interp(x_here, x, y)))][col] = glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    label_width = 9
    for row in range(height):
        frac = 1.0 - row / (height - 1)
        y_val = y_lo + frac * (y_hi - y_lo)
        axis = f"{y_val:8.0f} " if row % 3 == 0 else " " * label_width
        lines.append(axis + "".join(grid[row]))
    lines.append(" " * label_width + f"{x_lo:<10.0f}{x_label:^{max(0, width - 20)}}{x_hi:>10.0f}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, (name, _, _) in enumerate(series)
    )
    if marks:
        legend += "   | " + ",".join(name for name, _ in marks)
    lines.append(" " * label_width + legend)
    lines.append(" " * label_width + f"(y: {y_label})")
    return "\n".join(lines)


def plot_figure_series(
    panel_title: str,
    entries: Sequence[tuple[str, "object"]],
    width: int = 78,
    height: int = 16,
    with_marks: bool = True,
) -> str:
    """Render one figure panel from (label, FigureSeries) pairs."""
    series = [(label, fs.times, fs.watts) for label, fs in entries]
    marks: list[tuple[str, float]] = []
    if with_marks and entries:
        reference = entries[0][1]
        marks = [
            ("ms", reference.mark_ms),
            ("ts", reference.mark_ts),
            ("te", reference.mark_te),
            ("me", reference.mark_me),
        ]
    return ascii_plot(series, width=width, height=height, marks=marks, title=panel_title)
