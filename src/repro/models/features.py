"""The per-migration sample format consumed by every energy model.

A :class:`MigrationSample` is one (migration run, host role) pair with
everything a model may use, in the paper's units:

* aligned per-reading arrays on the power meter's grid over ``[ms, me]``:
  measured power (W), phase codes, host CPU ``CPU(h,t)`` (%), migrating-VM
  CPU ``CPU(v,t)`` (%), transfer bandwidth ``BW(S,T,t)`` (bytes/s) and
  dirtying ratio ``DR(v,t)`` (%);
* per-migration scalars: transferred data (B, LIU's input), VM memory
  size (MB) and mean transfer bandwidth (STRUNK's inputs);
* the measured phase energies (J) the models are scored against.

Samples are built by the experiment harness from instrumented runs
(:func:`repro.experiments.results.RunResult.sample_for`) but the format
itself is simulator-agnostic: fill it from real dstat + meter logs and
the same models fit unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.phases.timeline import MigrationPhase

__all__ = ["HostRole", "PHASE_CODES", "MigrationSample"]


class HostRole(enum.Enum):
    """Which end of the migration a sample describes."""

    SOURCE = "source"
    TARGET = "target"


#: Integer codes used in the per-reading ``phase`` array.
PHASE_CODES: dict[MigrationPhase, int] = {
    MigrationPhase.INITIATION: 0,
    MigrationPhase.TRANSFER: 1,
    MigrationPhase.ACTIVATION: 2,
}

#: Reverse mapping of :data:`PHASE_CODES`.
CODE_PHASES: dict[int, MigrationPhase] = {v: k for k, v in PHASE_CODES.items()}


@dataclass(frozen=True)
class MigrationSample:
    """One (migration run, host role) observation set.

    All arrays are aligned to the meter's reading grid restricted to
    ``[ms, me]`` and share the same length.
    """

    # --- identity -------------------------------------------------------
    scenario: str
    experiment: str
    live: bool
    family: str
    role: HostRole
    run_index: int

    # --- per-reading arrays ----------------------------------------------
    times: np.ndarray
    power_w: np.ndarray
    phase: np.ndarray           # int codes per PHASE_CODES
    cpu_host_pct: np.ndarray
    cpu_vm_pct: np.ndarray
    bw_bps: np.ndarray
    dr_pct: np.ndarray

    # --- per-migration scalars --------------------------------------------
    data_bytes: float           # total transferred state (LIU)
    mem_mb: float               # VM memory size (STRUNK)
    mean_bw_bps: float          # mean transfer bandwidth (STRUNK)

    # --- measured energies (J) --------------------------------------------
    energy_initiation_j: float
    energy_transfer_j: float
    energy_activation_j: float

    downtime_s: float = 0.0
    notes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        arrays = (
            self.times, self.power_w, self.phase,
            self.cpu_host_pct, self.cpu_vm_pct, self.bw_bps, self.dr_pct,
        )
        lengths = {np.asarray(a).shape for a in arrays}
        if len(lengths) != 1 or next(iter(lengths)) == (0,):
            raise ModelError(
                f"sample arrays must be non-empty and aligned, got shapes "
                f"{[np.asarray(a).shape for a in arrays]}"
            )
        if np.any(np.diff(np.asarray(self.times)) <= 0):
            raise ModelError("sample times must be strictly increasing")

    # ------------------------------------------------------------------
    @property
    def n_readings(self) -> int:
        """Number of meter readings in the migration window."""
        return int(np.asarray(self.times).size)

    @property
    def energy_total_j(self) -> float:
        """Measured migration energy: sum of the three phase energies (Eq. 4)."""
        return (
            self.energy_initiation_j
            + self.energy_transfer_j
            + self.energy_activation_j
        )

    @property
    def duration_s(self) -> float:
        """Span of the migration window covered by the readings."""
        times = np.asarray(self.times)
        return float(times[-1] - times[0])

    def phase_mask(self, phase: MigrationPhase) -> np.ndarray:
        """Boolean mask of readings belonging to one phase."""
        try:
            code = PHASE_CODES[phase]
        except KeyError:
            raise ModelError(f"{phase} is not a migration phase with readings") from None
        return np.asarray(self.phase) == code

    def measured_phase_energy_j(self, phase: MigrationPhase) -> float:
        """Measured energy of one phase (J)."""
        if phase is MigrationPhase.INITIATION:
            return self.energy_initiation_j
        if phase is MigrationPhase.TRANSFER:
            return self.energy_transfer_j
        if phase is MigrationPhase.ACTIVATION:
            return self.energy_activation_j
        raise ModelError(f"{phase} has no measured energy")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MigrationSample {self.scenario!r} {self.role.value} "
            f"{'live' if self.live else 'non-live'} n={self.n_readings} "
            f"E={self.energy_total_j / 1000:.1f}kJ>"
        )


def integrate_predicted_power(
    times: np.ndarray, predicted_w: np.ndarray, mask: np.ndarray
) -> float:
    """Trapezoidal energy of a predicted power series over a phase mask.

    Contiguous masked readings are integrated with the trapezoidal rule;
    this mirrors how the measured phase energies are computed from the
    meter trace, so predicted and measured energies are comparable.
    """
    times = np.asarray(times, dtype=np.float64)
    predicted_w = np.asarray(predicted_w, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    if mask.sum() < 2:
        # A phase shorter than two readings contributes via its neighbours'
        # trapezoids; approximate with reading-dt rectangles.
        if mask.sum() == 0:
            return 0.0
        dt = float(np.median(np.diff(times))) if times.size > 1 else 0.0
        return float(predicted_w[mask].sum() * dt)
    t = times[mask]
    p = predicted_w[mask]
    return float(np.trapezoid(p, t))
