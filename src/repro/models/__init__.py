"""Energy models for VM migration (subsystem S7 — the paper's contribution).

* :class:`~repro.models.wavm3.Wavm3Model` — the paper's Workload-Aware
  Virtual Machine Migration Model (Eqs. 5–7): per-phase, per-host linear
  power models over host CPU, VM CPU, bandwidth and dirtying ratio;
* :class:`~repro.models.huang.HuangModel` — CPU-only power model (Eq. 8);
* :class:`~repro.models.liu.LiuModel` — transferred-data energy model
  (Eqs. 9–10);
* :class:`~repro.models.strunk.StrunkModel` — memory-size + bandwidth
  energy model (Eq. 11);
* :mod:`repro.models.features` — the :class:`MigrationSample` interchange
  format extracted from instrumented runs;
* :mod:`repro.models.coefficients` — the paper's published coefficient
  tables (III, IV, VI) as reference constants;
* :mod:`repro.models.registry` — name → model factory used by the CLI
  and the comparison harness.
"""

from repro.models.base import EnergyPrediction, MigrationEnergyModel
from repro.models.features import HostRole, MigrationSample, PHASE_CODES
from repro.models.huang import HuangModel
from repro.models.liu import LiuModel
from repro.models.registry import available_models, create_model
from repro.models.strunk import StrunkModel
from repro.models.wavm3 import Wavm3Coefficients, Wavm3Model

__all__ = [
    "EnergyPrediction",
    "MigrationEnergyModel",
    "HostRole",
    "MigrationSample",
    "PHASE_CODES",
    "HuangModel",
    "LiuModel",
    "available_models",
    "create_model",
    "StrunkModel",
    "Wavm3Coefficients",
    "Wavm3Model",
]
