"""The paper's published coefficient tables, as reference constants.

These are the values of Tables III (non-live), IV (live) and VI (baseline
models) exactly as printed.  They serve three purposes:

1. the analysis layer prints them side-by-side with our fitted values in
   EXPERIMENTS.md (paper-vs-measured comparison);
2. tests assert the *structural* facts the paper's tables encode (which
   coefficients are zero, which constants differ per host);
3. a :class:`~repro.models.wavm3.Wavm3Model` can be instantiated directly
   from the paper's numbers for demonstration (see ``examples``).

Units (Section IV / Table III–IV magnitudes): CPU and DR in percent,
BW in bytes/s, constants in watts.  C1 is the bias for m01–m02 and C2 the
rebias for o1–o2 (Section VI-F).
"""

from __future__ import annotations

from repro.models.features import HostRole
from repro.models.wavm3 import Wavm3Coefficients
from repro.phases.timeline import MigrationPhase

__all__ = [
    "PAPER_TABLE_III_NONLIVE",
    "PAPER_TABLE_IV_LIVE",
    "PAPER_TABLE_V_NRMSE",
    "PAPER_TABLE_VI_BASELINES",
    "PAPER_TABLE_VII",
    "paper_wavm3_coefficients",
]

# --------------------------------------------------------------------------
# Table III: WAVM3 coefficients for non-live migration.
# Keys: role -> phase -> {symbol: value}; C1/C2 are the two bias variants.
# --------------------------------------------------------------------------
PAPER_TABLE_III_NONLIVE: dict[str, dict[str, dict[str, float]]] = {
    "source": {
        "initiation": {"alpha": 1.71, "beta": 1.41, "C1": 708.3, "C2": 165.0},
        "transfer": {"alpha": 2.4, "beta": 1.08e-6, "C1": 421.74, "C2": 200.0},
        "activation": {"alpha": 2.37, "beta": 0.0, "C1": 662.5, "C2": 150.0},
    },
    "target": {
        "initiation": {"alpha": 3.18, "beta": 0.0, "C1": 596.06, "C2": 162.0},
        "transfer": {"alpha": 2.56, "beta": 5.49e-7, "C1": 520.214, "C2": 210.0},
        "activation": {"alpha": 1.88, "beta": 17.01, "C1": 499.56, "C2": 100.0},
    },
}

# --------------------------------------------------------------------------
# Table IV: WAVM3 coefficients for live migration (transfer gains γ, δ).
# --------------------------------------------------------------------------
PAPER_TABLE_IV_LIVE: dict[str, dict[str, dict[str, float]]] = {
    "source": {
        "initiation": {"alpha": 1.71, "beta": 1.41, "C1": 708.3, "C2": 165.0},
        "transfer": {
            "alpha": 2.4, "beta": 1.52e-6, "gamma": 1.41, "delta": 0.4,
            "C1": 421.74, "C2": 200.0,
        },
        "activation": {"alpha": 2.37, "beta": 0.0, "C1": 662.5, "C2": 150.0},
    },
    "target": {
        "initiation": {"alpha": 3.18, "beta": 0.0, "C1": 596.06, "C2": 162.0},
        "transfer": {
            "alpha": 2.56, "beta": 7.32e-7, "gamma": 0.0, "delta": 0.4,
            "C1": 520.214, "C2": 200.0,
        },
        "activation": {"alpha": 1.88, "beta": 17.01, "C1": 499.56, "C2": 100.0},
    },
}

# --------------------------------------------------------------------------
# Table V: WAVM3 NRMSE (percent) per dataset / kind / role.
# --------------------------------------------------------------------------
PAPER_TABLE_V_NRMSE: dict[str, dict[str, dict[str, float]]] = {
    "m": {"non-live": {"source": 11.8, "target": 12.0},
          "live": {"source": 11.8, "target": 5.0}},
    "o": {"non-live": {"source": 12.5, "target": 16.3},
          "live": {"source": 12.7, "target": 17.2}},
}

# --------------------------------------------------------------------------
# Table VI: baseline training coefficients.
# --------------------------------------------------------------------------
PAPER_TABLE_VI_BASELINES: dict[str, dict[str, dict[str, float]]] = {
    "HUANG": {
        "source": {"alpha": 2.27, "C": 671.92},
        "target": {"alpha": 2.56, "C": 645.776},
    },
    "LIU": {
        "source": {"alpha": 2.43, "C": 494.2},
        "target": {"alpha": 2.19, "C": 508.2},
    },
    "STRUNK": {
        "source": {"alpha": 3.35, "beta": -3.47, "C": 201.1},
        "target": {"alpha": 5.04, "beta": -0.5, "C": 201.1},
    },
}

# --------------------------------------------------------------------------
# Table VII: model comparison on m01–m02 (MAE kJ, RMSE J, NRMSE %).
# --------------------------------------------------------------------------
PAPER_TABLE_VII: dict[str, dict[str, dict[str, float]]] = {
    "WAVM3": {
        "source": {"mae_nonlive_kj": 1.8, "rmse_nonlive_j": 2558, "nrmse_nonlive": 11.8,
                   "mae_live_kj": 6.3, "rmse_live_j": 8432, "nrmse_live": 11.8},
        "target": {"mae_nonlive_kj": 1.7, "rmse_nonlive_j": 1789, "nrmse_nonlive": 12.0,
                   "mae_live_kj": 3.6, "rmse_live_j": 4056, "nrmse_live": 5.0},
    },
    "HUANG": {
        "source": {"mae_nonlive_kj": 1.8, "rmse_nonlive_j": 2587, "nrmse_nonlive": 12.0,
                   "mae_live_kj": 5.5, "rmse_live_j": 9234, "nrmse_live": 15.7},
        "target": {"mae_nonlive_kj": 1.8, "rmse_nonlive_j": 2067, "nrmse_nonlive": 12.8,
                   "mae_live_kj": 7.1, "rmse_live_j": 9102, "nrmse_live": 12.9},
    },
    "LIU": {
        "source": {"mae_nonlive_kj": 4.8, "rmse_nonlive_j": 5812, "nrmse_nonlive": 26.9,
                   "mae_live_kj": 9.8, "rmse_live_j": 12117, "nrmse_live": 36.3},
        "target": {"mae_nonlive_kj": 3.4, "rmse_nonlive_j": 4121, "nrmse_nonlive": 25.3,
                   "mae_live_kj": 7.0, "rmse_live_j": 9622, "nrmse_live": 29.4},
    },
    "STRUNK": {
        "source": {"mae_nonlive_kj": 0.026, "rmse_nonlive_j": 3824, "nrmse_nonlive": 17.7,
                   "mae_live_kj": 0.028, "rmse_live_j": 4547, "nrmse_live": 35.4},
        "target": {"mae_nonlive_kj": 0.058, "rmse_nonlive_j": 5187, "nrmse_nonlive": 30.0,
                   "mae_live_kj": 0.019, "rmse_live_j": 4382, "nrmse_live": 36.2},
    },
}

_PHASE_BY_NAME = {
    "initiation": MigrationPhase.INITIATION,
    "transfer": MigrationPhase.TRANSFER,
    "activation": MigrationPhase.ACTIVATION,
}

_SYMBOL_TO_FEATURE = {
    "initiation": {"alpha": "cpu_host", "beta": "cpu_vm"},
    "transfer": {"alpha": "cpu_host", "beta": "bw", "gamma": "dr", "delta": "cpu_vm"},
    "activation": {"alpha": "cpu_host", "beta": "cpu_vm"},
}


def paper_wavm3_coefficients(
    live: bool = True, dataset: str = "m", trained_idle_w: float = 455.0
) -> Wavm3Coefficients:
    """Build a :class:`Wavm3Coefficients` from the paper's printed tables.

    Parameters
    ----------
    live:
        Table IV (live) or Table III (non-live).
    dataset:
        ``"m"`` uses the C1 bias column, ``"o"`` the C2 column.
    trained_idle_w:
        Idle power recorded alongside, enabling further rebias.
    """
    table = PAPER_TABLE_IV_LIVE if live else PAPER_TABLE_III_NONLIVE
    bias_key = "C1" if dataset == "m" else "C2"
    values: dict[HostRole, dict[MigrationPhase, dict[str, float]]] = {}
    for role_name, phases in table.items():
        role = HostRole(role_name)
        values[role] = {}
        for phase_name, symbols in phases.items():
            phase = _PHASE_BY_NAME[phase_name]
            coefs: dict[str, float] = {"const": symbols[bias_key]}
            for symbol, feature in _SYMBOL_TO_FEATURE[phase_name].items():
                coefs[feature] = symbols.get(symbol, 0.0)
            # Non-live tables omit gamma/delta: the features are zero there.
            if phase is MigrationPhase.TRANSFER:
                coefs.setdefault("dr", 0.0)
                coefs.setdefault("cpu_vm", 0.0)
            values[role][phase] = coefs
    return Wavm3Coefficients(values=values, trained_idle_w=trained_idle_w)
