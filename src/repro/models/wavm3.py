"""WAVM3 — the paper's Workload-Aware VM Migration energy Model.

Per host role ``h ∈ {source, target}`` and phase, instantaneous power is
modelled linearly in the workload features (Section IV-C):

* **Initiation** (Eq. 5)::

      P(i) = α(i)·CPU(h,t) + β(i)·CPU(v,t) + C(i)

* **Transfer** (Eq. 6)::

      P(t) = α(t)·CPU(h,t) + β(t)·BW(S,T,t) + γ(t)·DR(v,t)
           + δ(t)·CPU(v,t) + C(t)

* **Activation** (Eq. 7)::

      P(a) = α(a)·CPU(h,t) + β(a)·CPU(v,t) + C(a)

Energy is the integral of phase power over the phase interval (Eqs. 3–4).
The live/non-live distinction needs no separate coefficient sets: in a
non-live migration the VM is suspended, so ``CPU(v,t)`` and ``DR(v,t)``
are identically zero and those terms drop out — exactly why Tables III
and IV share most coefficients.

Fitting follows Section VI-F: pooled readings per (role, phase), least
squares with non-negativity bounds (the paper's NLLS with physically
meaningful coefficients), on the 20 % training split.  Cross-testbed
porting uses the C1→C2 idle-bias correction of
:mod:`repro.regression.bias`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.models.base import EnergyPrediction, MigrationEnergyModel
from repro.models.features import (
    HostRole,
    MigrationSample,
    integrate_predicted_power,
)
from repro.phases.timeline import MigrationPhase
from repro.regression.bias import rebias_constant
from repro.regression.linear import fit_linear, fit_nonnegative

__all__ = ["Wavm3Coefficients", "Wavm3Model", "PHASE_FEATURES"]

#: Feature columns per phase, in design-matrix order ("const" must be last).
PHASE_FEATURES: dict[MigrationPhase, tuple[str, ...]] = {
    MigrationPhase.INITIATION: ("cpu_host", "cpu_vm", "const"),
    MigrationPhase.TRANSFER: ("cpu_host", "bw", "dr", "cpu_vm", "const"),
    MigrationPhase.ACTIVATION: ("cpu_host", "cpu_vm", "const"),
}

#: Greek names used by the paper for each (phase, feature) pair — for reports.
PAPER_SYMBOLS: dict[MigrationPhase, dict[str, str]] = {
    MigrationPhase.INITIATION: {"cpu_host": "alpha", "cpu_vm": "beta", "const": "C"},
    MigrationPhase.TRANSFER: {
        "cpu_host": "alpha",
        "bw": "beta",
        "dr": "gamma",
        "cpu_vm": "delta",
        "const": "C",
    },
    MigrationPhase.ACTIVATION: {"cpu_host": "alpha", "cpu_vm": "beta", "const": "C"},
}

#: Near-zero column detection threshold (feature never active in a phase).
_ZERO_COLUMN_TOL = 1e-12


def _feature_matrix(
    samples: Sequence[MigrationSample],
    phase: MigrationPhase,
    disabled: frozenset[str],
) -> tuple[np.ndarray, np.ndarray]:
    """Pool the readings of one phase across samples into (X, y)."""
    columns = PHASE_FEATURES[phase]
    xs: list[np.ndarray] = []
    ys: list[np.ndarray] = []
    for sample in samples:
        mask = sample.phase_mask(phase)
        if not mask.any():
            continue
        stack = []
        for name in columns:
            if name == "const":
                stack.append(np.ones(int(mask.sum())))
            elif name in disabled:
                stack.append(np.zeros(int(mask.sum())))
            else:
                stack.append(np.asarray(_column(sample, name))[mask])
        xs.append(np.column_stack(stack))
        ys.append(np.asarray(sample.power_w)[mask])
    if not xs:
        raise ModelError(f"no readings available for phase {phase.value}")
    return np.concatenate(xs, axis=0), np.concatenate(ys)


def _column(sample: MigrationSample, name: str) -> np.ndarray:
    if name == "cpu_host":
        return np.asarray(sample.cpu_host_pct)
    if name == "cpu_vm":
        return np.asarray(sample.cpu_vm_pct)
    if name == "bw":
        return np.asarray(sample.bw_bps)
    if name == "dr":
        return np.asarray(sample.dr_pct)
    raise ModelError(f"unknown feature {name!r}")


@dataclass(frozen=True)
class Wavm3Coefficients:
    """Fitted coefficients: role → phase → feature → value.

    The mapping layout mirrors Tables III/IV; :meth:`rebias` produces the
    C2 variant for a deployment pair with a different idle draw.
    """

    values: Mapping[HostRole, Mapping[MigrationPhase, Mapping[str, float]]]
    trained_idle_w: float = 0.0

    def coefficient(self, role: HostRole, phase: MigrationPhase, feature: str) -> float:
        """One named coefficient (paper symbol resolved via PAPER_SYMBOLS)."""
        try:
            return float(self.values[role][phase][feature])
        except KeyError:
            raise ModelError(
                f"no coefficient for role={role.value} phase={phase.value} "
                f"feature={feature!r}"
            ) from None

    def rebias(self, deployed_idle_w: float) -> "Wavm3Coefficients":
        """Port constants to a machine pair with a different idle power.

        Implements the paper's C1 → C2 adjustment on every phase constant;
        power-level constants cannot go below zero, so the shift clamps.
        """
        if self.trained_idle_w <= 0:
            raise ModelError("training idle power unknown; cannot rebias")
        shifted: dict[HostRole, dict[MigrationPhase, dict[str, float]]] = {}
        for role, phases in self.values.items():
            shifted[role] = {}
            for phase, coefs in phases.items():
                updated = dict(coefs)
                updated["const"] = max(
                    0.0,
                    rebias_constant(coefs["const"], self.trained_idle_w, deployed_idle_w),
                )
                shifted[role][phase] = updated
        return Wavm3Coefficients(values=shifted, trained_idle_w=deployed_idle_w)

    def as_table_rows(self) -> list[dict[str, object]]:
        """Flatten to rows (role, phase, symbol, feature, value) for reports."""
        rows: list[dict[str, object]] = []
        for role in (HostRole.SOURCE, HostRole.TARGET):
            for phase in (
                MigrationPhase.INITIATION,
                MigrationPhase.TRANSFER,
                MigrationPhase.ACTIVATION,
            ):
                for feature in PHASE_FEATURES[phase]:
                    rows.append(
                        {
                            "role": role.value,
                            "phase": phase.value,
                            "symbol": PAPER_SYMBOLS[phase][feature],
                            "feature": feature,
                            "value": self.coefficient(role, phase, feature),
                        }
                    )
        return rows


class Wavm3Model(MigrationEnergyModel):
    """The paper's model, ready to fit and predict.

    Parameters
    ----------
    method:
        ``"nonnegative"`` (default; bounded least squares, physically
        meaningful coefficients) or ``"ols"`` (unconstrained).
    disabled_features:
        Feature names forced to zero — the ablation hook for DESIGN.md's
        D1 (``{"bw"}``) and D2 (``{"dr"}``) studies.
    """

    name = "WAVM3"
    power_level = True

    def __init__(
        self,
        method: str = "nonnegative",
        disabled_features: frozenset[str] | set[str] = frozenset(),
    ) -> None:
        if method not in ("nonnegative", "ols"):
            raise ModelError(f"unknown fit method {method!r}")
        bad = set(disabled_features) - {"cpu_host", "cpu_vm", "bw", "dr"}
        if bad:
            raise ModelError(f"unknown features to disable: {sorted(bad)}")
        self._method = method
        self._disabled = frozenset(disabled_features)
        self._coefficients: Wavm3Coefficients | None = None

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """Whether coefficients are available."""
        return self._coefficients is not None

    @property
    def coefficients(self) -> Wavm3Coefficients:
        """The fitted (or externally supplied) coefficient set."""
        if self._coefficients is None:
            raise NotFittedError("WAVM3 has not been fitted")
        return self._coefficients

    def with_coefficients(self, coefficients: Wavm3Coefficients) -> "Wavm3Model":
        """Install an explicit coefficient set (e.g. rebias output)."""
        clone = Wavm3Model(method=self._method, disabled_features=self._disabled)
        clone._coefficients = coefficients
        return clone

    # ------------------------------------------------------------------
    def fit(self, samples: Sequence[MigrationSample]) -> "Wavm3Model":
        """Fit per-role, per-phase coefficients on pooled readings."""
        if not samples:
            raise ModelError("cannot fit WAVM3 on an empty sample set")
        by_role = self.split_roles(samples)
        fitted: dict[HostRole, dict[MigrationPhase, dict[str, float]]] = {}
        for role, role_samples in by_role.items():
            if not role_samples:
                raise ModelError(f"no samples for role {role.value}")
            fitted[role] = {}
            for phase, columns in PHASE_FEATURES.items():
                X, y = _feature_matrix(role_samples, phase, self._disabled)
                coefs = self._fit_phase(X, y)
                fitted[role][phase] = dict(zip(columns, (float(c) for c in coefs)))
        trained_idle = float(
            np.mean([s.notes.get("idle_power_w", 0.0) for s in samples])
        )
        self._coefficients = Wavm3Coefficients(values=fitted, trained_idle_w=trained_idle)
        return self

    def _fit_phase(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        # Features that are never active in this phase/role (all-zero
        # columns) are unidentifiable: drop them and pin the coefficient
        # at 0, exactly how the paper's tables show β(i)=0 on the target.
        scales = np.max(np.abs(X), axis=0)
        active = scales > _ZERO_COLUMN_TOL
        reduced = X[:, active]
        if reduced.shape[1] == 0:
            raise ModelError("design matrix has no active columns")
        fitter = fit_nonnegative if self._method == "nonnegative" else fit_linear
        fit = fitter(reduced, y)
        coefs = np.zeros(X.shape[1])
        coefs[active] = fit.coefficients
        return coefs

    # ------------------------------------------------------------------
    def predict_power(self, sample: MigrationSample) -> np.ndarray:
        """Per-reading power prediction over the migration window (W)."""
        self._require_fitted()
        assert self._coefficients is not None
        role_coefs = self._coefficients.values[sample.role]
        predicted = np.zeros(sample.n_readings)
        for phase, columns in PHASE_FEATURES.items():
            mask = sample.phase_mask(phase)
            if not mask.any():
                continue
            coefs = role_coefs[phase]
            acc = np.full(int(mask.sum()), coefs["const"], dtype=np.float64)
            for name in columns:
                if name == "const" or name in self._disabled:
                    continue
                acc += coefs[name] * _column(sample, name)[mask]
            predicted[mask] = acc
        return predicted

    def predict_energy(self, sample: MigrationSample) -> EnergyPrediction:
        """Integrate predicted power per phase (Eqs. 3–4)."""
        power = self.predict_power(sample)
        times = np.asarray(sample.times)
        energies = {
            phase: integrate_predicted_power(times, power, sample.phase_mask(phase))
            for phase in PHASE_FEATURES
        }
        return EnergyPrediction(
            initiation_j=energies[MigrationPhase.INITIATION],
            transfer_j=energies[MigrationPhase.TRANSFER],
            activation_j=energies[MigrationPhase.ACTIVATION],
        )
