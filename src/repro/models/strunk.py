"""The STRUNK comparison model (Eq. 11).

Strunk [17] estimates live-migration energy from just the VM's memory
size and the available bandwidth::

    E_migr = α · MEM(v) + β · BW(S,T) + C

with MEM in MB and BW in MB/s (units chosen so the fitted magnitudes are
comparable with Table VI).  The model is *static*: it sees neither host
load nor workload behaviour, so it "perfectly suits scenarios in which
both hosts and the migrating VM are idle" (Section VII) and degrades on
every loaded scenario of the evaluation — the spread Table VII reports.

Because all of the paper's migrations move the same 4 GB VM, MEM barely
varies within an experiment family and the bandwidth term must carry the
variance alone; a near-constant feature is handled by the zero-column
guard (its coefficient pins to 0 rather than exploding).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.models.base import EnergyPrediction, MigrationEnergyModel
from repro.models.features import HostRole, MigrationSample
from repro.regression.linear import fit_linear

__all__ = ["StrunkModel"]

_MB = 1.0e6


class StrunkModel(MigrationEnergyModel):
    """Energy linear in VM memory size and bandwidth, per host role.

    Unlike WAVM3/HUANG/LIU the original publishes a *signed* bandwidth
    coefficient (more bandwidth ⇒ shorter migration ⇒ less energy), so the
    fit is unconstrained ordinary least squares rather than non-negative.
    """

    name = "STRUNK"
    power_level = False

    def __init__(self) -> None:
        self._coefficients: dict[HostRole, tuple[float, float, float]] | None = None

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """Whether (α, β, C) triples are available."""
        return self._coefficients is not None

    @property
    def coefficients(self) -> dict[HostRole, tuple[float, float, float]]:
        """Fitted ``{role: (alpha, beta, C)}``; MEM in MB, BW in MB/s."""
        if self._coefficients is None:
            raise NotFittedError("STRUNK has not been fitted")
        return dict(self._coefficients)

    # ------------------------------------------------------------------
    @staticmethod
    def _design(samples: Sequence[MigrationSample]) -> np.ndarray:
        mem_mb = np.array([s.mem_mb for s in samples], dtype=np.float64)
        bw_mb_s = np.array([s.mean_bw_bps / _MB for s in samples], dtype=np.float64)
        return np.column_stack([mem_mb, bw_mb_s, np.ones_like(mem_mb)])

    def fit(self, samples: Sequence[MigrationSample]) -> "StrunkModel":
        """Fit per-role (α, β, C) on (MEM, BW, total energy) records."""
        if not samples:
            raise ModelError("cannot fit STRUNK on an empty sample set")
        fitted: dict[HostRole, tuple[float, float, float]] = {}
        for role, role_samples in self.split_roles(samples).items():
            if len(role_samples) < 3:
                raise ModelError(
                    f"STRUNK needs >= 3 migrations for role {role.value}, "
                    f"got {len(role_samples)}"
                )
            X = self._design(role_samples)
            y = np.array([s.energy_total_j for s in role_samples])
            # Guard near-constant columns (MEM when every VM is 4 GB):
            # centre detection on the column spread, not magnitude.
            spreads = X.max(axis=0) - X.min(axis=0)
            active = np.ones(X.shape[1], dtype=bool)
            active[:-1] = spreads[:-1] > 1e-9
            fit = fit_linear(X[:, active], y)
            coefs = np.zeros(X.shape[1])
            coefs[active] = fit.coefficients
            fitted[role] = (float(coefs[0]), float(coefs[1]), float(coefs[2]))
        self._coefficients = fitted
        return self

    # ------------------------------------------------------------------
    def predict_energy(self, sample: MigrationSample) -> EnergyPrediction:
        """``α·MEM + β·BW + C``; attributed to the transfer phase."""
        self._require_fitted()
        assert self._coefficients is not None
        alpha, beta, c = self._coefficients[sample.role]
        total = alpha * sample.mem_mb + beta * (sample.mean_bw_bps / _MB) + c
        return EnergyPrediction(initiation_j=0.0, transfer_j=total, activation_j=0.0)
