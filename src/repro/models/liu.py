"""The LIU comparison model (Eqs. 9–10).

Liu et al. [4] model migration energy as linear in the amount of data
exchanged between the hosts::

    E_migr = α · DATA + C

Their paper derives DATA analytically from memory size, transmission rate
and dirtying ratio summed over pre-copy rounds (Eq. 10); De Maio et al.
instead "use the amount of data transferred measured with our network
instrumentation as the DATA value", which is what our samples carry in
``data_bytes`` (the simulated network instrumentation sums the bytes of
every transfer round).

The model's strength is exactly what Eq. 10 encodes — high-dirtying-ratio
live migrations move more data and cost more energy — and its weakness is
everything CPU: all CPULOAD variation collapses onto a single DATA value,
which is why Table VII shows LIU trailing the CPU-aware models.  It also
fits *one* (α, C) per host role here; the original assumes source and
target consume identically, an assumption the paper criticises via [21],
so keeping per-role coefficients is the charitable reading.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.models.base import EnergyPrediction, MigrationEnergyModel
from repro.models.features import HostRole, MigrationSample
from repro.regression.linear import fit_nonnegative

__all__ = ["LiuModel", "precopy_data_estimate"]


def precopy_data_estimate(
    mem_pages: int,
    page_size_bytes: int,
    bw_pages_per_s: float,
    dirty_rate_pages_per_s: float,
    n_rounds: int,
) -> float:
    """Eq. 10 analytical DATA estimate (bytes) for reference/benches.

    Round 0 sends the full memory; each later round sends the pages
    dirtied during the previous round (rate × previous duration, capped by
    memory size).  This is Liu's analytical view of the pre-copy process;
    the fitted model uses measured DATA instead, like the paper.
    """
    if mem_pages <= 0 or page_size_bytes <= 0 or bw_pages_per_s <= 0:
        raise ModelError("memory, page size and bandwidth must be positive")
    if n_rounds < 1:
        raise ModelError("need at least one round")
    total_pages = 0.0
    to_send = float(mem_pages)
    for _ in range(n_rounds):
        total_pages += to_send
        duration = to_send / bw_pages_per_s
        to_send = min(dirty_rate_pages_per_s * duration, float(mem_pages))
        if to_send < 1.0:
            break
    return total_pages * page_size_bytes


class LiuModel(MigrationEnergyModel):
    """Energy linear in transferred data, one (α, C) per host role."""

    name = "LIU"
    power_level = False

    def __init__(self) -> None:
        self._coefficients: dict[HostRole, tuple[float, float]] | None = None

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """Whether (α, C) pairs are available."""
        return self._coefficients is not None

    @property
    def coefficients(self) -> dict[HostRole, tuple[float, float]]:
        """Fitted ``{role: (alpha, C)}`` with α in J/byte and C in J."""
        if self._coefficients is None:
            raise NotFittedError("LIU has not been fitted")
        return dict(self._coefficients)

    # ------------------------------------------------------------------
    def fit(self, samples: Sequence[MigrationSample]) -> "LiuModel":
        """Fit per-role (α, C) on (DATA, total energy) pairs."""
        if not samples:
            raise ModelError("cannot fit LIU on an empty sample set")
        fitted: dict[HostRole, tuple[float, float]] = {}
        for role, role_samples in self.split_roles(samples).items():
            if len(role_samples) < 2:
                raise ModelError(
                    f"LIU needs >= 2 migrations for role {role.value}, "
                    f"got {len(role_samples)}"
                )
            data = np.array([s.data_bytes for s in role_samples], dtype=np.float64)
            energy = np.array([s.energy_total_j for s in role_samples])
            X = np.column_stack([data, np.ones_like(data)])
            fit = fit_nonnegative(X, energy)
            fitted[role] = (float(fit.coefficients[0]), float(fit.coefficients[1]))
        self._coefficients = fitted
        return self

    # ------------------------------------------------------------------
    def predict_energy(self, sample: MigrationSample) -> EnergyPrediction:
        """``α · DATA + C``; attributed to the transfer phase.

        LIU has no phase decomposition; the whole prediction is reported
        under transfer (where the data movement happens) so per-phase
        tables remain well-defined for every model.
        """
        self._require_fitted()
        assert self._coefficients is not None
        alpha, c = self._coefficients[sample.role]
        total = alpha * float(sample.data_bytes) + c
        return EnergyPrediction(initiation_j=0.0, transfer_j=total, activation_j=0.0)
