"""The HUANG comparison model (Eq. 8).

Huang et al. [3] assume instantaneous host power is linear in CPU
utilisation::

    P(t) = α · CPU(t) + C

with one (α, C) pair per host, no phase structure, and no bandwidth or
memory terms.  Energy is the integral of P over the migration window.

**Interpretation note** (recorded in DESIGN.md): Eq. 8 is written over
``CPU(v,t)``, the *VM's* utilisation, but Section VII-A of the paper
explains HUANG's accuracy by it "consider[ing] the CPU of source and
target hosts" — only host CPU makes the model competitive on the CPULOAD
scenarios.  We therefore default to host CPU and expose
``cpu_source="host"|"vm"`` so either reading can be reproduced.

HUANG's characteristic failure, which Table VII quantifies, is live
migration: without the DR and bandwidth terms, the model cannot separate
a saturated-source transfer from a normal one, so its live NRMSE degrades
sharply relative to non-live while WAVM3's does not.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.models.base import EnergyPrediction, MigrationEnergyModel
from repro.models.features import (
    HostRole,
    MigrationSample,
    integrate_predicted_power,
)
from repro.phases.timeline import MigrationPhase
from repro.regression.bias import rebias_constant
from repro.regression.linear import fit_nonnegative

__all__ = ["HuangModel"]


class HuangModel(MigrationEnergyModel):
    """CPU-only linear power model, one (α, C) per host role.

    Parameters
    ----------
    cpu_source:
        ``"host"`` (default, the reading that matches the paper's
        comparison discussion) or ``"vm"`` (the literal Eq. 8).
    """

    name = "HUANG"
    power_level = True

    def __init__(self, cpu_source: str = "host") -> None:
        if cpu_source not in ("host", "vm"):
            raise ModelError(f"cpu_source must be 'host' or 'vm', got {cpu_source!r}")
        self._cpu_source = cpu_source
        self._coefficients: dict[HostRole, tuple[float, float]] | None = None
        self._trained_idle_w = 0.0

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """Whether (α, C) pairs are available."""
        return self._coefficients is not None

    @property
    def coefficients(self) -> dict[HostRole, tuple[float, float]]:
        """Fitted ``{role: (alpha, C)}``."""
        if self._coefficients is None:
            raise NotFittedError("HUANG has not been fitted")
        return dict(self._coefficients)

    def _cpu(self, sample: MigrationSample) -> np.ndarray:
        if self._cpu_source == "host":
            return np.asarray(sample.cpu_host_pct)
        return np.asarray(sample.cpu_vm_pct)

    # ------------------------------------------------------------------
    def fit(self, samples: Sequence[MigrationSample]) -> "HuangModel":
        """Fit (α, C) per role on the pooled migration-window readings."""
        if not samples:
            raise ModelError("cannot fit HUANG on an empty sample set")
        fitted: dict[HostRole, tuple[float, float]] = {}
        for role, role_samples in self.split_roles(samples).items():
            if not role_samples:
                raise ModelError(f"no samples for role {role.value}")
            cpu = np.concatenate([self._cpu(s) for s in role_samples])
            y = np.concatenate([np.asarray(s.power_w) for s in role_samples])
            X = np.column_stack([cpu, np.ones_like(cpu)])
            fit = fit_nonnegative(X, y)
            fitted[role] = (float(fit.coefficients[0]), float(fit.coefficients[1]))
        self._coefficients = fitted
        self._trained_idle_w = float(
            np.mean([s.notes.get("idle_power_w", 0.0) for s in samples])
        )
        return self

    def rebias(self, deployed_idle_w: float) -> "HuangModel":
        """Port the constants to a different machine pair (C1 → C2)."""
        self._require_fitted()
        assert self._coefficients is not None
        if self._trained_idle_w <= 0:
            raise ModelError("training idle power unknown; cannot rebias")
        clone = HuangModel(cpu_source=self._cpu_source)
        clone._coefficients = {
            role: (alpha, max(0.0, rebias_constant(c, self._trained_idle_w, deployed_idle_w)))
            for role, (alpha, c) in self._coefficients.items()
        }
        clone._trained_idle_w = deployed_idle_w
        return clone

    # ------------------------------------------------------------------
    def predict_power(self, sample: MigrationSample) -> np.ndarray:
        """``α · CPU + C`` on the sample's reading grid."""
        self._require_fitted()
        assert self._coefficients is not None
        alpha, c = self._coefficients[sample.role]
        return alpha * self._cpu(sample) + c

    def predict_energy(self, sample: MigrationSample) -> EnergyPrediction:
        """Integrate predicted power; split per phase for reporting."""
        power = self.predict_power(sample)
        times = np.asarray(sample.times)
        parts = {
            phase: integrate_predicted_power(times, power, sample.phase_mask(phase))
            for phase in (
                MigrationPhase.INITIATION,
                MigrationPhase.TRANSFER,
                MigrationPhase.ACTIVATION,
            )
        }
        return EnergyPrediction(
            initiation_j=parts[MigrationPhase.INITIATION],
            transfer_j=parts[MigrationPhase.TRANSFER],
            activation_j=parts[MigrationPhase.ACTIVATION],
        )
