"""Model registry: name → factory.

Used by the CLI, the comparison harness and the benches so that the model
set of Table VII ("WAVM3", "HUANG", "LIU", "STRUNK") can be iterated by
name, and downstream users can register their own models for comparison
under the same harness.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ModelError
from repro.models.base import MigrationEnergyModel
from repro.models.huang import HuangModel
from repro.models.liu import LiuModel
from repro.models.strunk import StrunkModel
from repro.models.wavm3 import Wavm3Model

__all__ = ["available_models", "create_model", "register_model"]

_FACTORIES: dict[str, Callable[[], MigrationEnergyModel]] = {
    "WAVM3": Wavm3Model,
    "HUANG": HuangModel,
    "LIU": LiuModel,
    "STRUNK": StrunkModel,
}


def available_models() -> tuple[str, ...]:
    """Registered model names, Table VII order first."""
    ordered = ("WAVM3", "HUANG", "LIU", "STRUNK")
    extras = tuple(sorted(set(_FACTORIES) - set(ordered)))
    return ordered + extras


def create_model(name: str) -> MigrationEnergyModel:
    """Instantiate a registered model by (case-insensitive) name."""
    try:
        factory = _FACTORIES[name.upper()]
    except KeyError:
        raise ModelError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from None
    return factory()


def register_model(name: str, factory: Callable[[], MigrationEnergyModel]) -> None:
    """Register a custom model factory (overwrites are rejected)."""
    key = name.upper()
    if key in _FACTORIES:
        raise ModelError(f"model {name!r} is already registered")
    _FACTORIES[key] = factory
