"""Base interface of migration energy models.

Every model — the paper's WAVM3 and the three comparison models — exposes
the same surface so the validation and comparison harnesses treat them
uniformly:

* :meth:`MigrationEnergyModel.fit` — estimate coefficients per host role
  from training samples;
* :meth:`MigrationEnergyModel.predict_energy` — per-migration energy (J)
  for one sample, the quantity scored in Tables V and VII;
* :meth:`MigrationEnergyModel.predict_power` — per-reading power (W) for
  power-level models (energy-level models raise
  :class:`~repro.errors.ModelError`).

Models are scored on energy; power-level models derive energy by
integrating predicted power over the measured reading grid (the paper's
procedure: "Integrating these values over the migration time, we obtain
the energy consumption over each phase").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ModelError, NotFittedError
from repro.models.features import HostRole, MigrationSample

__all__ = ["EnergyPrediction", "MigrationEnergyModel"]


@dataclass(frozen=True)
class EnergyPrediction:
    """Per-phase energy prediction for one migration sample (joules)."""

    initiation_j: float
    transfer_j: float
    activation_j: float

    @property
    def total_j(self) -> float:
        """Predicted migration energy (Eq. 4)."""
        return self.initiation_j + self.transfer_j + self.activation_j


class MigrationEnergyModel(abc.ABC):
    """Common interface of WAVM3, HUANG, LIU and STRUNK."""

    #: Short name used in tables and the registry.
    name: str = "model"

    #: Whether the model predicts instantaneous power (vs energy directly).
    power_level: bool = True

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, samples: Sequence[MigrationSample]) -> "MigrationEnergyModel":
        """Estimate coefficients from training samples (both roles).

        Returns ``self`` for chaining.
        """

    @abc.abstractmethod
    def predict_energy(self, sample: MigrationSample) -> EnergyPrediction:
        """Predict the per-phase energies of one migration sample."""

    def predict_power(self, sample: MigrationSample) -> np.ndarray:
        """Predict instantaneous power on the sample's reading grid (W).

        Energy-level models (LIU, STRUNK) have no power view and raise
        :class:`~repro.errors.ModelError`.
        """
        raise ModelError(f"{self.name} is an energy-level model without a power view")

    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def fitted(self) -> bool:
        """Whether :meth:`fit` has produced coefficients."""

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise NotFittedError(f"{self.name} has not been fitted")

    # ------------------------------------------------------------------
    @staticmethod
    def split_roles(
        samples: Iterable[MigrationSample],
    ) -> dict[HostRole, list[MigrationSample]]:
        """Group samples by host role (models fit source/target separately).

        The paper fits distinct coefficients per host — its Table VII notes
        that assuming equal source/target consumption (as LIU does) "could
        lead to inaccurate results".
        """
        grouped: dict[HostRole, list[MigrationSample]] = {
            HostRole.SOURCE: [],
            HostRole.TARGET: [],
        }
        for sample in samples:
            grouped[sample.role].append(sample)
        return grouped

    def predict_energies(self, samples: Sequence[MigrationSample]) -> np.ndarray:
        """Vector of predicted total energies (J) for a sample collection."""
        return np.array([self.predict_energy(s).total_j for s in samples])

    @staticmethod
    def measured_energies(samples: Sequence[MigrationSample]) -> np.ndarray:
        """Vector of measured total energies (J) for a sample collection."""
        return np.array([s.energy_total_j for s in samples])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {'fitted' if self.fitted else 'unfitted'}>"
