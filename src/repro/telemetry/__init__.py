"""Measurement substrate (subsystem S5).

Simulated counterparts of the paper's instrumentation:

* :class:`~repro.telemetry.powermeter.PowerMeter` — the Voltech PM1000+
  (2 Hz sampling, 0.3 % accuracy) attached to the AC side of each host;
* :class:`~repro.telemetry.dstat.DstatMonitor` — per-second CPU / memory /
  network resource sampling;
* :class:`~repro.telemetry.traces.PowerTrace` /
  :class:`~repro.telemetry.traces.SeriesTrace` — numpy-backed trace
  containers with time-window slicing;
* :mod:`repro.telemetry.integration` — trapezoidal power→energy
  integration with boundary interpolation;
* :mod:`repro.telemetry.stabilization` — the paper's stabilisation rule
  (twenty consecutive readings within 0.3 %).
"""

from repro.telemetry.dstat import DstatMonitor
from repro.telemetry.integration import integrate_power
from repro.telemetry.powermeter import PowerMeter
from repro.telemetry.stabilization import StabilizationRule, first_stable_index, is_stable
from repro.telemetry.traces import PowerTrace, SeriesTrace

__all__ = [
    "DstatMonitor",
    "integrate_power",
    "PowerMeter",
    "StabilizationRule",
    "first_stable_index",
    "is_stable",
    "PowerTrace",
    "SeriesTrace",
]
