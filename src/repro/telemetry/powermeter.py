"""The simulated Voltech PM1000+ power analyser.

Section V-B: two PM1000+ units are attached to the AC side of the source
and target hosts, sampling instantaneous power at 2 Hz; device accuracy is
0.3 %, and readings land on a 0.1 W quantisation grid (typical of the
instrument's display resolution at these ranges).

The meter samples the host's *ground-truth* power (which already includes
utilisation jitter and transients) and adds measurement noise — keeping
physical variation and instrument error separate, so tests can switch
either off independently.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.host import PhysicalHost
from repro.errors import ConfigurationError
from repro.simulator.engine import Simulator
from repro.simulator.sampling import PeriodicSampler
from repro.telemetry.stabilization import StabilizationRule, is_stable
from repro.telemetry.traces import PowerTrace

__all__ = ["PowerMeter"]


class PowerMeter:
    """A 2 Hz AC-side power meter attached to one host.

    Parameters
    ----------
    sim:
        The driving simulator.
    host:
        The measured machine.
    rng:
        Measurement-noise generator (one independent stream per meter).
    period_s:
        Sampling interval; the PM1000+ is operated at 2 Hz (0.5 s).
    accuracy:
        Relative 1-sigma measurement error (0.3 % per the paper; the
        noise sigma uses a third of it so ~99.7 % of readings fall within
        the quoted accuracy band).
    quantisation_w:
        Reading resolution in watts (0 disables quantisation).
    """

    def __init__(
        self,
        sim: Simulator,
        host: PhysicalHost,
        rng: np.random.Generator,
        period_s: float = 0.5,
        accuracy: float = 0.003,
        quantisation_w: float = 0.1,
    ) -> None:
        if accuracy < 0:
            raise ConfigurationError(f"accuracy must be non-negative, got {accuracy!r}")
        if quantisation_w < 0:
            raise ConfigurationError(
                f"quantisation_w must be non-negative, got {quantisation_w!r}"
            )
        self.host = host
        self._rng = rng
        self._accuracy = float(accuracy)
        self._quantisation = float(quantisation_w)
        self.trace = PowerTrace(label=f"power:{host.name}")
        self._sampler = PeriodicSampler(sim, period_s, self._sample)

    # ------------------------------------------------------------------
    @property
    def period_s(self) -> float:
        """Sampling interval in seconds."""
        return self._sampler.period

    @property
    def running(self) -> bool:
        """Whether the meter is currently sampling."""
        return self._sampler.running

    def start(self) -> None:
        """Begin sampling into :attr:`trace`."""
        self._sampler.start()

    def stop(self) -> None:
        """Stop sampling (the trace is retained)."""
        self._sampler.stop()

    def reset(self) -> None:
        """Discard the recorded trace (meter keeps running if started)."""
        self.trace = PowerTrace(label=f"power:{self.host.name}")

    # ------------------------------------------------------------------
    def _sample(self, t: float) -> None:
        true_power = self.host.instantaneous_power(t)
        noise_sigma = self._accuracy / 3.0 * true_power
        reading = true_power + float(self._rng.normal(0.0, noise_sigma)) if noise_sigma else true_power
        if self._quantisation > 0:
            reading = round(reading / self._quantisation) * self._quantisation
        self.trace.append(t, max(reading, 0.0))

    # ------------------------------------------------------------------
    def stabilised(self, rule: StabilizationRule = StabilizationRule()) -> bool:
        """Whether the most recent readings satisfy the paper's rule."""
        return is_stable(self.trace.watts, rule)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PowerMeter on {self.host.name} n={len(self.trace)}>"
