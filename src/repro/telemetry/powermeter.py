"""The simulated Voltech PM1000+ power analyser.

Section V-B: two PM1000+ units are attached to the AC side of the source
and target hosts, sampling instantaneous power at 2 Hz; device accuracy is
0.3 %, and readings land on a 0.1 W quantisation grid (typical of the
instrument's display resolution at these ranges).

The meter samples the host's *ground-truth* power (which already includes
utilisation jitter and transients) and adds measurement noise — keeping
physical variation and instrument error separate, so tests can switch
either off independently.

Two sampling modes share one semantics (``batched=`` selects):

* **event mode** — one heap event, one scalar RNG draw and one trace
  append per sample;
* **batched mode** — the meter rides the simulator's interval hooks: for
  every event-free interval it reads the host's ground truth in one
  vectorized block (:meth:`~repro.cluster.host.PhysicalHost.instantaneous_power_block`),
  draws all measurement noise in one ``Generator.normal`` call (numpy
  consumes the *same stream in the same order* as per-sample scalar
  draws), quantises/clips vectorized, and bulk-appends to the trace.

Both modes produce bit-identical traces; the batched mode additionally
feeds incremental stabilisation trackers so :meth:`PowerMeter.stabilised`
is O(1) per check (event mode gets the same trackers).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.host import PhysicalHost
from repro.errors import ConfigurationError
from repro.simulator.engine import Simulator
from repro.simulator.kernels import resolve_compute
from repro.simulator.sampling import SCALAR_BLOCK_MAX, PeriodicSampler
from repro.telemetry.stabilization import StabilizationRule, StabilizationTracker
from repro.telemetry.traces import PowerTrace

__all__ = ["PowerMeter"]


class PowerMeter:
    """A 2 Hz AC-side power meter attached to one host.

    Parameters
    ----------
    sim:
        The driving simulator.
    host:
        The measured machine.
    rng:
        Measurement-noise generator (one independent stream per meter).
    period_s:
        Sampling interval; the PM1000+ is operated at 2 Hz (0.5 s).
    accuracy:
        Relative 1-sigma measurement error (0.3 % per the paper; the
        noise sigma uses a third of it so ~99.7 % of readings fall within
        the quoted accuracy band).
    quantisation_w:
        Reading resolution in watts (0 disables quantisation).
    batched:
        Select the vectorized interval-hook fast path (bit-identical to
        event mode; see the module docstring).
    compute:
        Kernel selection for batched blocks (``"python"`` | ``"numpy"``
        | ``"numba"``; see :mod:`repro.simulator.kernels`).  ``"python"``
        replays the event-mode scalar pipeline per sample regardless of
        block length; the other modes run the array kernels on long
        blocks.  Same bits in every mode.
    """

    def __init__(
        self,
        sim: Simulator,
        host: PhysicalHost,
        rng: np.random.Generator,
        period_s: float = 0.5,
        accuracy: float = 0.003,
        quantisation_w: float = 0.1,
        batched: bool = False,
        compute: str = "numpy",
    ) -> None:
        if accuracy < 0:
            raise ConfigurationError(f"accuracy must be non-negative, got {accuracy!r}")
        if quantisation_w < 0:
            raise ConfigurationError(
                f"quantisation_w must be non-negative, got {quantisation_w!r}"
            )
        self.host = host
        self._rng = rng
        self._accuracy = float(accuracy)
        self._quantisation = float(quantisation_w)
        self.trace = PowerTrace(label=f"power:{host.name}")
        self._trackers: dict[StabilizationRule, StabilizationTracker] = {}
        self._compute = resolve_compute(compute)
        self._sampler = PeriodicSampler(
            sim,
            period_s,
            self._sample,
            batched=batched,
            batch_callback=self._sample_block if batched else None,
            vectorized=batched and self._compute != "python",
        )

    # ------------------------------------------------------------------
    @property
    def period_s(self) -> float:
        """Sampling interval in seconds."""
        return self._sampler.period

    @property
    def running(self) -> bool:
        """Whether the meter is currently sampling."""
        return self._sampler.running

    def start(self) -> None:
        """Begin sampling into :attr:`trace`."""
        self._sampler.start()

    def stop(self) -> None:
        """Stop sampling (the trace is retained)."""
        self._sampler.stop()

    def reset(self) -> None:
        """Discard the recorded trace (meter keeps running if started)."""
        self.trace = PowerTrace(label=f"power:{self.host.name}")
        self._trackers.clear()

    # ------------------------------------------------------------------
    def _sample(self, t: float) -> None:
        true_power = self.host.instantaneous_power(t)
        noise_sigma = self._accuracy / 3.0 * true_power
        reading = true_power + float(self._rng.normal(0.0, noise_sigma)) if noise_sigma else true_power
        if self._quantisation > 0:
            reading = round(reading / self._quantisation) * self._quantisation
        reading = max(reading, 0.0)
        self.trace.append(t, reading)
        for tracker in self._trackers.values():
            tracker.observe(reading)

    def _sample_block(self, times: np.ndarray) -> None:
        """One event-free interval's worth of readings, batched.

        The host's ground truth is read through the fused block kernel
        (interval constants hoisted, per-tick noise memoised); measurement
        noise, quantisation and clipping mirror :meth:`_sample` per
        element.  Long blocks run the numpy stage — ``Generator.normal``
        with an array sigma consumes the *identical RNG stream* as
        per-sample scalar draws, and ``np.round`` matches ``round()``'s
        half-to-even on float64 — while short blocks (where numpy's fixed
        per-call overhead dominates) loop the scalar stage over the same
        block values.  Same bits either way.
        """
        times_list = times.tolist()
        n = len(times_list)
        if self._compute != "python" and n > SCALAR_BLOCK_MAX:
            # Ground truth through the compute-mode array kernel (the
            # host's SoA row + noise tick grids); bit-identical to the
            # scalar kernel below, which short blocks keep using.
            kernel = self.host.attach_kernel(mode=self._compute)
            tp_arr = kernel.power_block(times, times_list)
            if self._accuracy:
                noise_sigma = self._accuracy / 3.0 * tp_arr
                # A zero sigma would skip its scalar draw; ground-truth
                # power is floored well above zero so this cannot happen,
                # but fall back to the exact per-sample stage if it ever
                # does rather than silently shifting the RNG stream.
                if not np.all(noise_sigma > 0):  # pragma: no cover - defensive
                    self._scalar_stage(times_list, tp_arr.tolist())
                    return
                # normal(0, s) is 0.0 + s*z per draw: one standard-normal
                # block consumes the identical stream, bit for bit.
                readings = tp_arr + noise_sigma * self._rng.standard_normal(n)
            else:
                readings = tp_arr
            if self._quantisation > 0:
                readings = np.round(readings / self._quantisation) * self._quantisation
            readings = np.maximum(readings, 0.0)
            buf_t, buf_w, start = self.trace._reserve(n, times_list[0])
            buf_t[start:start + n] = times
            buf_w[start:start + n] = readings
            self.trace._commit(n)
            for tracker in self._trackers.values():
                tracker.observe_block(readings)
            return
        true_power = self.host.instantaneous_power_values(times_list)
        # compute="python" is the scalar reference: per-sample RNG draws
        # (the exact event-mode pipeline); the hybrid modes scale one
        # block draw instead — same stream, same bits.
        self._scalar_stage(
            times_list, true_power, block_draws=self._compute != "python"
        )

    def _scalar_stage(
        self, times_list: list, true_power: list, block_draws: bool = True
    ) -> None:
        """Per-sample measurement stage over precomputed block values.

        With ``block_draws`` the draws come from one ``standard_normal``
        block scaled per sample: ``Generator.normal(0, s)`` is exactly
        ``0.0 + s * z`` with ``z`` the next standard draw, so the scaled
        block consumes the same stream and yields the same readings bit
        for bit (``0.0 + x`` cannot change a reading added to a positive
        power).  ``compute="python"`` disables the block draw and takes
        the per-sample ``normal(0, s)`` branch instead — the event-mode
        reference pipeline, stream-identical by the same argument.
        Readings are written straight into reserved trace capacity; the
        sampler's tick grid is strictly increasing by construction.
        """
        acc3 = self._accuracy / 3.0
        quantisation = self._quantisation
        trackers = list(self._trackers.values())
        n = len(times_list)
        # One block draw is only stream-equivalent if every sample draws;
        # ground truth is floored above zero, so with accuracy > 0 every
        # sigma is positive (min() guards the impossible case exactly).
        draws = (
            self._rng.standard_normal(n).tolist()
            if block_draws and acc3 and n > 1 and min(true_power) > 0
            else None
        )
        buf_t, buf_w, start = self.trace._reserve(n, times_list[0])
        for i, t in enumerate(times_list):
            tp = true_power[i]
            noise_sigma = acc3 * tp
            if draws is not None:
                reading = tp + noise_sigma * draws[i]
            elif noise_sigma:
                reading = tp + float(self._rng.normal(0.0, noise_sigma))
            else:
                reading = tp
            if quantisation > 0:
                reading = round(reading / quantisation) * quantisation
            reading = max(reading, 0.0)
            buf_t[start + i] = t
            buf_w[start + i] = reading
            for tracker in trackers:
                tracker.observe(reading)
        self.trace._commit(n)

    # ------------------------------------------------------------------
    def stabilised(self, rule: StabilizationRule = StabilizationRule()) -> bool:
        """Whether the most recent readings satisfy the paper's rule.

        O(1) per check: the first query for a rule bootstraps an
        incremental :class:`~repro.telemetry.stabilization.StabilizationTracker`
        from the recorded trace; subsequent samples update it in place.
        """
        return self._tracker(rule).stable

    def stabilisation_deficit(self, rule: StabilizationRule = StabilizationRule()) -> int:
        """Minimum further readings before :meth:`stabilised` can flip true.

        Exposes the incremental tracker's
        :attr:`~repro.telemetry.stabilization.StabilizationTracker.deficit`
        for the runner's look-ahead (0 when already stable).
        """
        return self._tracker(rule).deficit

    def _tracker(self, rule: StabilizationRule) -> StabilizationTracker:
        tracker = self._trackers.get(rule)
        if tracker is None:
            tracker = StabilizationTracker.from_signal(rule, self.trace.watts)
            self._trackers[rule] = tracker
        return tracker

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PowerMeter on {self.host.name} n={len(self.trace)}>"
