"""Numpy-backed trace containers.

Traces accumulate in Python lists (amortised O(1) appends from the event
loop) and materialise to immutable numpy arrays on read, with the
conversion cached until the next append — the standard builder pattern for
measurement hot paths (per the hpc-parallel guides: vectorise reads, keep
appends cheap).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import TraceError

__all__ = ["PowerTrace", "SeriesTrace"]


class PowerTrace:
    """A timestamped sequence of power readings for one host.

    Examples
    --------
    >>> trace = PowerTrace("m01")
    >>> trace.append(0.5, 455.0)
    >>> trace.append(1.0, 456.2)
    >>> trace.times.tolist()
    [0.5, 1.0]
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._times: list[float] = []
        self._watts: list[float] = []
        self._cache: Optional[tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    def append(self, t: float, watts: float) -> None:
        """Record one reading; timestamps must be strictly increasing."""
        if self._times and t <= self._times[-1]:
            raise TraceError(
                f"non-increasing timestamp {t!r} after {self._times[-1]!r} "
                f"in trace {self.label!r}"
            )
        self._times.append(float(t))
        self._watts.append(float(watts))
        self._cache = None

    def extend(self, times: Iterable[float], watts: Iterable[float]) -> None:
        """Bulk-append aligned samples."""
        for t, w in zip(times, watts, strict=True):
            self.append(t, w)

    def __len__(self) -> int:
        return len(self._times)

    # ------------------------------------------------------------------
    def _arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self._cache is None:
            self._cache = (
                np.asarray(self._times, dtype=np.float64),
                np.asarray(self._watts, dtype=np.float64),
            )
        return self._cache

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps (seconds), read-only view."""
        return self._arrays()[0]

    @property
    def watts(self) -> np.ndarray:
        """Power readings (watts), read-only view."""
        return self._arrays()[1]

    # ------------------------------------------------------------------
    def window(self, t0: float, t1: float) -> "PowerTrace":
        """Sub-trace of samples with ``t0 <= t <= t1``."""
        if t1 < t0:
            raise TraceError(f"window end {t1!r} before start {t0!r}")
        times, watts = self._arrays()
        mask = (times >= t0) & (times <= t1)
        out = PowerTrace(self.label)
        out._times = times[mask].tolist()
        out._watts = watts[mask].tolist()
        return out

    def shifted(self, dt: float) -> "PowerTrace":
        """Copy with all timestamps shifted by ``dt`` (plot alignment)."""
        out = PowerTrace(self.label)
        out._times = [t + dt for t in self._times]
        out._watts = list(self._watts)
        return out

    # ------------------------------------------------------------------
    def mean_power(self) -> float:
        """Arithmetic mean of the readings."""
        if not self._watts:
            raise TraceError(f"trace {self.label!r} is empty")
        return float(np.mean(self._arrays()[1]))

    def energy_joules(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Trapezoidal energy over ``[t0, t1]`` (defaults to full span)."""
        from repro.telemetry.integration import integrate_power  # local: avoid cycle

        times, watts = self._arrays()
        if times.size == 0:
            raise TraceError(f"trace {self.label!r} is empty")
        lo = float(times[0]) if t0 is None else float(t0)
        hi = float(times[-1]) if t1 is None else float(t1)
        return integrate_power(times, watts, lo, hi)

    def value_at(self, t: float) -> float:
        """Linearly interpolated reading at time ``t`` (clamped at the ends)."""
        times, watts = self._arrays()
        if times.size == 0:
            raise TraceError(f"trace {self.label!r} is empty")
        return float(np.interp(t, times, watts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._times:
            return f"<PowerTrace {self.label!r} empty>"
        return (
            f"<PowerTrace {self.label!r} n={len(self)} "
            f"[{self._times[0]:.1f}, {self._times[-1]:.1f}]s>"
        )


class SeriesTrace:
    """A timestamped multi-column trace (dstat-style).

    Columns are declared up front; every append must provide all of them,
    which keeps the arrays rectangular and the reads vectorisable.
    """

    def __init__(self, columns: Iterable[str], label: str = "") -> None:
        cols = tuple(columns)
        if not cols:
            raise TraceError("SeriesTrace needs at least one column")
        if len(set(cols)) != len(cols):
            raise TraceError(f"duplicate column names in {cols!r}")
        self.label = label
        self._columns = cols
        self._times: list[float] = []
        self._data: dict[str, list[float]] = {c: [] for c in cols}
        self._cache: Optional[dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    @property
    def columns(self) -> tuple[str, ...]:
        """Declared column names."""
        return self._columns

    def append(self, t: float, **values: float) -> None:
        """Record one row; all declared columns are required."""
        missing = set(self._columns) - set(values)
        extra = set(values) - set(self._columns)
        if missing or extra:
            raise TraceError(
                f"row mismatch in {self.label!r}: missing={sorted(missing)} "
                f"extra={sorted(extra)}"
            )
        if self._times and t <= self._times[-1]:
            raise TraceError(
                f"non-increasing timestamp {t!r} in trace {self.label!r}"
            )
        self._times.append(float(t))
        for c in self._columns:
            self._data[c].append(float(values[c]))
        self._cache = None

    def __len__(self) -> int:
        return len(self._times)

    # ------------------------------------------------------------------
    def _arrays(self) -> dict[str, np.ndarray]:
        if self._cache is None:
            cache = {"t": np.asarray(self._times, dtype=np.float64)}
            for c in self._columns:
                cache[c] = np.asarray(self._data[c], dtype=np.float64)
            self._cache = cache
        return self._cache

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps (seconds)."""
        return self._arrays()["t"]

    def column(self, name: str) -> np.ndarray:
        """The values of one column."""
        if name not in self._columns:
            raise TraceError(f"unknown column {name!r}; have {self._columns}")
        return self._arrays()[name]

    def value_at(self, name: str, t: float) -> float:
        """Linearly interpolated column value at time ``t``."""
        times = self.times
        if times.size == 0:
            raise TraceError(f"trace {self.label!r} is empty")
        return float(np.interp(t, times, self.column(name)))

    def window(self, t0: float, t1: float) -> "SeriesTrace":
        """Sub-trace of rows with ``t0 <= t <= t1``."""
        if t1 < t0:
            raise TraceError(f"window end {t1!r} before start {t0!r}")
        arrays = self._arrays()
        mask = (arrays["t"] >= t0) & (arrays["t"] <= t1)
        out = SeriesTrace(self._columns, self.label)
        out._times = arrays["t"][mask].tolist()
        for c in self._columns:
            out._data[c] = arrays[c][mask].tolist()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SeriesTrace {self.label!r} n={len(self)} cols={self._columns}>"
