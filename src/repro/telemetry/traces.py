"""Numpy-backed trace containers.

Traces accumulate directly into pre-allocated numpy blocks with amortised
doubling growth: appends write into spare capacity, bulk extends copy one
array slice, and reads return O(1) read-only views of the filled prefix.
This replaces the old list-accumulate/convert-on-read design, whose cache
was invalidated by every append — a mid-run reader (the stabilisation
check runs every 2.5 s) paid an O(n) list-to-array conversion per read,
O(n²) over a run.  With block storage, mid-run reads are O(1) and appends
stay amortised O(1) (per the hpc-parallel guides: vectorise reads *and*
keep appends cheap).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import TraceError

__all__ = ["PowerTrace", "SeriesTrace"]

#: Initial block capacity of a non-empty trace.
_MIN_CAPACITY = 64


def _grown(buffer: np.ndarray, n: int, extra: int) -> np.ndarray:
    """Return a buffer with capacity for ``n + extra``, preserving ``[:n]``.

    Growth at least doubles, so a sequence of appends costs amortised
    O(1) per element.  Previously returned views keep pointing at the old
    block — they stay valid snapshots because filled prefixes are never
    mutated in place.
    """
    need = n + extra
    if need <= buffer.size:
        return buffer
    capacity = max(_MIN_CAPACITY, 2 * buffer.size, need)
    grown = np.empty(capacity, dtype=np.float64)
    grown[:n] = buffer[:n]
    return grown


def _readonly(buffer: np.ndarray, n: int) -> np.ndarray:
    view = buffer[:n]
    view.flags.writeable = False
    return view


def _check_block(label: str, last: Optional[float], times: np.ndarray) -> None:
    """Validate a bulk-append block: 1-D, strictly increasing, after ``last``."""
    if times.ndim != 1:
        raise TraceError(f"bulk append to {label!r} needs 1-D times, got shape {times.shape}")
    if times.size == 0:
        return
    if last is not None and times[0] <= last:
        raise TraceError(
            f"non-increasing timestamp {float(times[0])!r} after "
            f"{float(last)!r} in trace {label!r}"
        )
    if times.size > 1:
        diffs = np.diff(times)
        if not bool(np.all(diffs > 0)):
            where = int(np.argmax(~(diffs > 0)))
            raise TraceError(
                f"non-increasing timestamp {float(times[where + 1])!r} after "
                f"{float(times[where])!r} in trace {label!r}"
            )


class PowerTrace:
    """A timestamped sequence of power readings for one host.

    Examples
    --------
    >>> trace = PowerTrace("m01")
    >>> trace.append(0.5, 455.0)
    >>> trace.append(1.0, 456.2)
    >>> trace.times.tolist()
    [0.5, 1.0]
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._n = 0
        self._t = np.empty(0, dtype=np.float64)
        self._w = np.empty(0, dtype=np.float64)

    # ------------------------------------------------------------------
    def append(self, t: float, watts: float) -> None:
        """Record one reading; timestamps must be strictly increasing."""
        t = float(t)
        n = self._n
        buf_t = self._t
        if n and t <= buf_t[n - 1]:
            raise TraceError(
                f"non-increasing timestamp {t!r} after {float(buf_t[n - 1])!r} "
                f"in trace {self.label!r}"
            )
        if n >= buf_t.size:
            buf_t = self._t = _grown(buf_t, n, 1)
            self._w = _grown(self._w, n, 1)
        buf_t[n] = t
        self._w[n] = float(watts)
        self._n = n + 1

    def extend(self, times: Iterable[float], watts: Iterable[float]) -> None:
        """Bulk-append aligned samples in one vectorized block.

        The whole block is validated first (single :func:`numpy.diff`
        monotonicity check), then copied with one slice assignment — no
        partial append happens on error.

        Raises
        ------
        ValueError
            If ``times`` and ``watts`` differ in length.
        TraceError
            If the combined timestamp sequence is not strictly increasing.
        """
        if not hasattr(times, "__len__"):
            times = list(times)
        if not hasattr(watts, "__len__"):
            watts = list(watts)
        ta = np.asarray(times, dtype=np.float64)
        wa = np.asarray(watts, dtype=np.float64)
        if ta.shape != wa.shape:
            raise ValueError(
                f"times/watts length mismatch in trace {self.label!r}: "
                f"{ta.shape} vs {wa.shape}"
            )
        n = self._n
        _check_block(self.label, self._t[n - 1] if n else None, ta)
        if ta.size == 0:
            return
        self._t = _grown(self._t, n, ta.size)
        self._w = _grown(self._w, n, ta.size)
        self._t[n:n + ta.size] = ta
        self._w[n:n + ta.size] = wa
        self._n = n + int(ta.size)

    def __len__(self) -> int:
        return self._n

    def _reserve(self, count: int, first_t: float) -> tuple[np.ndarray, np.ndarray, int]:
        """Internal bulk-append fast path: grow for ``count`` more samples.

        Returns ``(t_buffer, w_buffer, start)`` for the caller to fill at
        ``start .. start + count - 1`` before calling :meth:`_commit`.
        The block boundary is validated here (``first_t`` must follow the
        recorded tail); *within* the block the caller must write strictly
        increasing timestamps — the batched samplers generate their tick
        grids in order by construction.
        """
        n = self._n
        if n and first_t <= self._t[n - 1]:
            raise TraceError(
                f"non-increasing timestamp {first_t!r} after "
                f"{float(self._t[n - 1])!r} in trace {self.label!r}"
            )
        self._t = _grown(self._t, n, count)
        self._w = _grown(self._w, n, count)
        return self._t, self._w, n

    def _commit(self, count: int) -> None:
        """Publish ``count`` samples written after :meth:`_reserve`."""
        self._n += count

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Sample timestamps (seconds), read-only view."""
        return _readonly(self._t, self._n)

    @property
    def watts(self) -> np.ndarray:
        """Power readings (watts), read-only view."""
        return _readonly(self._w, self._n)

    # ------------------------------------------------------------------
    @classmethod
    def _from_arrays(cls, label: str, times: np.ndarray, watts: np.ndarray) -> "PowerTrace":
        out = cls(label)
        out._t = np.ascontiguousarray(times, dtype=np.float64)
        out._w = np.ascontiguousarray(watts, dtype=np.float64)
        out._n = int(out._t.size)
        return out

    def window(self, t0: float, t1: float) -> "PowerTrace":
        """Sub-trace of samples with ``t0 <= t <= t1``."""
        if t1 < t0:
            raise TraceError(f"window end {t1!r} before start {t0!r}")
        times, watts = self.times, self.watts
        mask = (times >= t0) & (times <= t1)
        return self._from_arrays(self.label, times[mask], watts[mask])

    def shifted(self, dt: float) -> "PowerTrace":
        """Copy with all timestamps shifted by ``dt`` (plot alignment)."""
        return self._from_arrays(self.label, self.times + dt, self.watts.copy())

    # ------------------------------------------------------------------
    def mean_power(self) -> float:
        """Arithmetic mean of the readings."""
        if not self._n:
            raise TraceError(f"trace {self.label!r} is empty")
        return float(np.mean(self.watts))

    def energy_joules(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Trapezoidal energy over ``[t0, t1]`` (defaults to full span)."""
        from repro.telemetry.integration import integrate_power  # local: avoid cycle

        times, watts = self.times, self.watts
        if times.size == 0:
            raise TraceError(f"trace {self.label!r} is empty")
        lo = float(times[0]) if t0 is None else float(t0)
        hi = float(times[-1]) if t1 is None else float(t1)
        return integrate_power(times, watts, lo, hi)

    def value_at(self, t: float) -> float:
        """Linearly interpolated reading at time ``t`` (clamped at the ends)."""
        if self._n == 0:
            raise TraceError(f"trace {self.label!r} is empty")
        return float(np.interp(t, self.times, self.watts))

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Pickle only the filled prefix (not spare capacity).
        return {"label": self.label, "t": self.times.copy(), "w": self.watts.copy()}

    def __setstate__(self, state: dict) -> None:
        self.label = state["label"]
        self._t = np.asarray(state["t"], dtype=np.float64)
        self._w = np.asarray(state["w"], dtype=np.float64)
        self._n = int(self._t.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._n:
            return f"<PowerTrace {self.label!r} empty>"
        return (
            f"<PowerTrace {self.label!r} n={len(self)} "
            f"[{self._t[0]:.1f}, {self._t[self._n - 1]:.1f}]s>"
        )


class SeriesTrace:
    """A timestamped multi-column trace (dstat-style).

    Columns are declared up front; every append must provide all of them,
    which keeps the arrays rectangular and the reads vectorisable.
    """

    def __init__(self, columns: Iterable[str], label: str = "") -> None:
        cols = tuple(columns)
        if not cols:
            raise TraceError("SeriesTrace needs at least one column")
        if len(set(cols)) != len(cols):
            raise TraceError(f"duplicate column names in {cols!r}")
        self.label = label
        self._columns = cols
        self._colset = frozenset(cols)
        self._n = 0
        self._t = np.empty(0, dtype=np.float64)
        self._cols = {c: np.empty(0, dtype=np.float64) for c in cols}

    # ------------------------------------------------------------------
    @property
    def columns(self) -> tuple[str, ...]:
        """Declared column names."""
        return self._columns

    def _check_names(self, values: dict) -> None:
        if values.keys() != self._colset:
            missing = set(self._columns) - set(values)
            extra = set(values) - set(self._columns)
            raise TraceError(
                f"row mismatch in {self.label!r}: missing={sorted(missing)} "
                f"extra={sorted(extra)}"
            )

    def append(self, t: float, **values: float) -> None:
        """Record one row; all declared columns are required."""
        self._check_names(values)
        self._append_row(float(t), tuple(float(values[c]) for c in self._columns))

    def _append_row(self, t: float, row: tuple) -> None:
        """Append one row given positionally in column order.

        Internal fast path of the batched samplers: skips the keyword
        plumbing of :meth:`append` (the caller aligns ``row`` with
        :attr:`columns` by construction); the monotonicity check is kept.
        """
        n = self._n
        buf_t = self._t
        if n and t <= buf_t[n - 1]:
            raise TraceError(
                f"non-increasing timestamp {t!r} in trace {self.label!r}"
            )
        cols = self._cols
        if n >= buf_t.size:
            buf_t = self._t = _grown(buf_t, n, 1)
            for c in self._columns:
                cols[c] = _grown(cols[c], n, 1)
        buf_t[n] = t
        for c, value in zip(self._columns, row):
            cols[c][n] = value
        self._n = n + 1

    def extend(self, times: Iterable[float], **values) -> None:
        """Bulk-append aligned rows in one vectorized block per column.

        A column value may be a scalar, which broadcasts over the whole
        block — the natural shape for quantities that are constant across
        an event-free interval (placement flags, bandwidth, …).

        Raises
        ------
        ValueError
            If an array column's length differs from ``times``.
        TraceError
            On a column-name mismatch or non-increasing timestamps.
        """
        self._check_names(values)
        if not hasattr(times, "__len__"):
            times = list(times)
        ta = np.asarray(times, dtype=np.float64)
        cols: dict[str, object] = {}
        for c in self._columns:
            value = values[c]
            if isinstance(value, (int, float)):
                cols[c] = float(value)
                continue
            if not hasattr(value, "__len__"):
                value = list(value)
            arr = np.asarray(value, dtype=np.float64)
            if arr.ndim == 0:
                cols[c] = float(arr)
                continue
            if arr.shape != ta.shape:
                raise ValueError(
                    f"column {c!r} length mismatch in trace {self.label!r}: "
                    f"{arr.shape} vs {ta.shape}"
                )
            cols[c] = arr
        n = self._n
        _check_block(self.label, self._t[n - 1] if n else None, ta)
        if ta.size == 0:
            return
        self._t = _grown(self._t, n, ta.size)
        self._t[n:n + ta.size] = ta
        for c in self._columns:
            buf = _grown(self._cols[c], n, ta.size)
            buf[n:n + ta.size] = cols[c]
            self._cols[c] = buf
        self._n = n + int(ta.size)

    def __len__(self) -> int:
        return self._n

    def _reserve(
        self, count: int, first_t: float
    ) -> tuple[np.ndarray, tuple[np.ndarray, ...], int]:
        """Internal bulk-append fast path (see ``PowerTrace._reserve``).

        Returns ``(t_buffer, column_buffers_in_declared_order, start)``.
        """
        n = self._n
        if n and first_t <= self._t[n - 1]:
            raise TraceError(
                f"non-increasing timestamp {first_t!r} in trace {self.label!r}"
            )
        self._t = _grown(self._t, n, count)
        cols = self._cols
        for c in self._columns:
            cols[c] = _grown(cols[c], n, count)
        return self._t, tuple(cols[c] for c in self._columns), n

    def _commit(self, count: int) -> None:
        """Publish ``count`` rows written after :meth:`_reserve`."""
        self._n += count

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Sample timestamps (seconds)."""
        return _readonly(self._t, self._n)

    def column(self, name: str) -> np.ndarray:
        """The values of one column."""
        if name not in self._columns:
            raise TraceError(f"unknown column {name!r}; have {self._columns}")
        return _readonly(self._cols[name], self._n)

    def value_at(self, name: str, t: float) -> float:
        """Linearly interpolated column value at time ``t``."""
        if self._n == 0:
            raise TraceError(f"trace {self.label!r} is empty")
        return float(np.interp(t, self.times, self.column(name)))

    def window(self, t0: float, t1: float) -> "SeriesTrace":
        """Sub-trace of rows with ``t0 <= t <= t1``."""
        if t1 < t0:
            raise TraceError(f"window end {t1!r} before start {t0!r}")
        times = self.times
        mask = (times >= t0) & (times <= t1)
        out = SeriesTrace(self._columns, self.label)
        out._t = np.ascontiguousarray(times[mask])
        out._cols = {
            c: np.ascontiguousarray(self.column(c)[mask]) for c in self._columns
        }
        out._n = int(out._t.size)
        return out

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "label": self.label,
            "columns": self._columns,
            "t": self.times.copy(),
            "cols": {c: self.column(c).copy() for c in self._columns},
        }

    def __setstate__(self, state: dict) -> None:
        self.label = state["label"]
        self._columns = tuple(state["columns"])
        self._colset = frozenset(self._columns)
        self._t = np.asarray(state["t"], dtype=np.float64)
        self._cols = {
            c: np.asarray(arr, dtype=np.float64) for c, arr in state["cols"].items()
        }
        self._n = int(self._t.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SeriesTrace {self.label!r} n={len(self)} cols={self._columns}>"
