"""Power→energy integration.

The paper extracts per-phase energy "by integrating the power over its
length" (Section VI).  With 2 Hz samples and phase boundaries that fall
between samples, the integral needs boundary interpolation: we insert
linearly interpolated readings at ``t0`` and ``t1`` and run a trapezoidal
rule over the combined grid, which is exact for piecewise-linear power.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceError

__all__ = ["integrate_power", "cumulative_energy"]


def integrate_power(times: np.ndarray, watts: np.ndarray, t0: float, t1: float) -> float:
    """Trapezoidal energy (joules) of a sampled power signal over [t0, t1].

    Parameters
    ----------
    times, watts:
        Aligned sample arrays; ``times`` must be strictly increasing.
    t0, t1:
        Integration bounds; must satisfy ``t0 <= t1`` and lie within the
        sampled span (an energy estimate outside the measurement window
        would be an extrapolation, which the paper never does).

    Returns
    -------
    float
        ``∫ P dt`` in joules; 0 when ``t0 == t1``.
    """
    times = np.asarray(times, dtype=np.float64)
    watts = np.asarray(watts, dtype=np.float64)
    if times.ndim != 1 or times.shape != watts.shape:
        raise TraceError("times and watts must be 1-D arrays of equal length")
    if times.size < 2:
        raise TraceError("need at least two samples to integrate")
    if np.any(np.diff(times) <= 0):
        raise TraceError("times must be strictly increasing")
    if t1 < t0:
        raise TraceError(f"integration bounds reversed: [{t0}, {t1}]")
    if t0 < times[0] - 1e-9 or t1 > times[-1] + 1e-9:
        raise TraceError(
            f"bounds [{t0:.3f}, {t1:.3f}] outside sampled span "
            f"[{times[0]:.3f}, {times[-1]:.3f}]"
        )
    if t0 == t1:
        return 0.0

    # Clamp tiny float excursions at the ends.
    t0 = max(t0, float(times[0]))
    t1 = min(t1, float(times[-1]))

    inside = (times > t0) & (times < t1)
    grid = np.concatenate(([t0], times[inside], [t1]))
    values = np.interp(grid, times, watts)
    return float(np.trapezoid(values, grid))


def cumulative_energy(times: np.ndarray, watts: np.ndarray) -> np.ndarray:
    """Cumulative trapezoidal energy at each sample (joules, starts at 0)."""
    times = np.asarray(times, dtype=np.float64)
    watts = np.asarray(watts, dtype=np.float64)
    if times.size < 2:
        raise TraceError("need at least two samples")
    if np.any(np.diff(times) <= 0):
        raise TraceError("times must be strictly increasing")
    dt = np.diff(times)
    segments = 0.5 * (watts[1:] + watts[:-1]) * dt
    return np.concatenate(([0.0], np.cumsum(segments)))
