"""The paper's power-stabilisation rule.

Section V-B: *"We say that the power consumption of the host stabilises
when we read twenty consecutive power measurements with a difference
lower than 0.3 %, that is below our measurement device's accuracy."*

The rule is used twice per run — before issuing the migration (so the
normal-execution baseline is flat) and after it completes (so the trace
captures the full return to steady state).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "StabilizationRule",
    "StabilizationTracker",
    "is_stable",
    "first_stable_index",
]


@dataclass(frozen=True)
class StabilizationRule:
    """Parameters of the stability criterion.

    ``n_readings`` consecutive readings must each differ from their
    predecessor by less than ``rel_tolerance`` (relative).
    """

    n_readings: int = 20
    rel_tolerance: float = 0.003

    def __post_init__(self) -> None:
        if self.n_readings < 2:
            raise ConfigurationError(f"n_readings must be >= 2, got {self.n_readings!r}")
        if self.rel_tolerance <= 0:
            raise ConfigurationError(
                f"rel_tolerance must be positive, got {self.rel_tolerance!r}"
            )


def _consecutive_ok(watts: np.ndarray, rule: StabilizationRule) -> np.ndarray:
    """Boolean array: reading i differs from reading i-1 by < tolerance."""
    watts = np.asarray(watts, dtype=np.float64)
    prev = watts[:-1]
    diff = np.abs(np.diff(watts))
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(prev != 0, diff / np.abs(prev), np.inf)
    return rel < rule.rel_tolerance


def is_stable(watts: np.ndarray, rule: StabilizationRule = StabilizationRule()) -> bool:
    """Whether the *last* ``n_readings`` of the signal satisfy the rule."""
    watts = np.asarray(watts, dtype=np.float64)
    if watts.size < rule.n_readings:
        return False
    tail = watts[-rule.n_readings:]
    return bool(np.all(_consecutive_ok(tail, rule)))


class StabilizationTracker:
    """Incremental replay of :func:`is_stable` over a growing signal.

    The rule only ever asks one question of the signal's tail: *do the
    last* ``n_readings`` *readings pairwise differ by less than the
    tolerance?*  That is equivalent to tracking the length of the run of
    consecutive in-tolerance differences ending at the latest reading, so
    a meter can answer :meth:`stable` in O(1) per check by feeding every
    new reading through :meth:`observe` — instead of re-materialising and
    re-scanning the whole trace per check.

    The per-difference comparison uses exactly the float operations of
    :func:`is_stable` (``|Δ| / |prev| < tol``, a zero predecessor counts
    as unstable), so tracker and batch function always agree.

    Examples
    --------
    >>> tracker = StabilizationTracker(StabilizationRule(n_readings=3))
    >>> for w in (100.0, 100.1, 100.2):
    ...     tracker.observe(w)
    >>> tracker.stable
    True
    """

    __slots__ = ("rule", "_count", "_last", "_streak")

    def __init__(self, rule: StabilizationRule = StabilizationRule()) -> None:
        self.rule = rule
        self._count = 0
        self._last = 0.0
        self._streak = 0

    @classmethod
    def from_signal(
        cls, rule: StabilizationRule, watts: np.ndarray
    ) -> "StabilizationTracker":
        """Bootstrap a tracker from an already-recorded signal.

        Only the last ``n_readings`` values need scanning: a longer
        in-tolerance run cannot change the verdict.
        """
        tracker = cls(rule)
        watts = np.asarray(watts, dtype=np.float64)
        if watts.size == 0:
            return tracker
        tail = watts[-rule.n_readings:]
        ok = _consecutive_ok(tail, rule)
        streak = 0
        for good in ok[::-1]:
            if not good:
                break
            streak += 1
        tracker._count = int(watts.size)
        tracker._last = float(watts[-1])
        tracker._streak = streak
        return tracker

    def observe(self, watts: float) -> None:
        """Feed one new reading (O(1))."""
        watts = float(watts)
        if self._count:
            prev = self._last
            ok = prev != 0.0 and abs(watts - prev) / abs(prev) < self.rule.rel_tolerance
            self._streak = self._streak + 1 if ok else 0
        self._last = watts
        self._count += 1

    def observe_block(self, watts: np.ndarray) -> None:
        """Feed a block of new readings (amortised O(1) per reading)."""
        watts = np.asarray(watts, dtype=np.float64)
        if watts.size == 0:
            return
        if self._count == 0 and watts.size == 1:
            self._last = float(watts[0])
            self._count = 1
            return
        if self._count:
            extended = np.concatenate(([self._last], watts))
        else:
            extended = watts
        prev = extended[:-1]
        if prev.all():
            # No zero predecessors (the meter floors readings well above
            # zero): same booleans as _consecutive_ok without its
            # division-guard machinery.
            ok = np.abs(np.diff(extended)) / np.abs(prev) < self.rule.rel_tolerance
        else:
            ok = _consecutive_ok(extended, self.rule)
        bad = np.flatnonzero(~ok)
        if bad.size == 0:
            self._streak += int(ok.size)
        else:
            self._streak = int(ok.size - 1 - bad[-1])
        self._last = float(watts[-1])
        self._count += int(watts.size)

    @property
    def count(self) -> int:
        """Readings observed so far."""
        return self._count

    @property
    def streak(self) -> int:
        """Consecutive in-tolerance differences ending at the last reading.

        Bootstrapped trackers cap this at ``n_readings - 1`` (all the
        rule ever needs).
        """
        return self._streak

    @property
    def deficit(self) -> int:
        """Minimum further readings before :attr:`stable` can become true.

        ``0`` when already stable.  Each new reading grows the streak by
        at most one, so at least ``(n_readings - 1) - streak`` more
        readings are needed (and at least ``n_readings - count`` while
        the signal is still shorter than the window) — the basis of the
        runner's stabilisation look-ahead.
        """
        rule = self.rule
        return max(
            rule.n_readings - 1 - self._streak,
            rule.n_readings - self._count,
            0,
        )

    @property
    def stable(self) -> bool:
        """Whether the last ``n_readings`` readings satisfy the rule."""
        rule = self.rule
        return self._count >= rule.n_readings and self._streak >= rule.n_readings - 1


def first_stable_index(
    watts: np.ndarray, rule: StabilizationRule = StabilizationRule()
) -> int | None:
    """Index of the earliest reading at which the signal counts as stable.

    Returns the index ``i`` such that readings ``[i - n + 1 … i]`` satisfy
    the rule, or ``None`` if the signal never stabilises.
    """
    watts = np.asarray(watts, dtype=np.float64)
    n = rule.n_readings
    if watts.size < n:
        return None
    ok = _consecutive_ok(watts, rule)
    # A window ending at reading i needs ok[i-n+1 .. i-1] all true (n-1 diffs).
    window = np.convolve(ok.astype(np.int64), np.ones(n - 1, dtype=np.int64), "valid")
    hits = np.flatnonzero(window == n - 1)
    if hits.size == 0:
        return None
    return int(hits[0] + n - 1)
