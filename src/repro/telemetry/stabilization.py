"""The paper's power-stabilisation rule.

Section V-B: *"We say that the power consumption of the host stabilises
when we read twenty consecutive power measurements with a difference
lower than 0.3 %, that is below our measurement device's accuracy."*

The rule is used twice per run — before issuing the migration (so the
normal-execution baseline is flat) and after it completes (so the trace
captures the full return to steady state).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["StabilizationRule", "is_stable", "first_stable_index"]


@dataclass(frozen=True)
class StabilizationRule:
    """Parameters of the stability criterion.

    ``n_readings`` consecutive readings must each differ from their
    predecessor by less than ``rel_tolerance`` (relative).
    """

    n_readings: int = 20
    rel_tolerance: float = 0.003

    def __post_init__(self) -> None:
        if self.n_readings < 2:
            raise ConfigurationError(f"n_readings must be >= 2, got {self.n_readings!r}")
        if self.rel_tolerance <= 0:
            raise ConfigurationError(
                f"rel_tolerance must be positive, got {self.rel_tolerance!r}"
            )


def _consecutive_ok(watts: np.ndarray, rule: StabilizationRule) -> np.ndarray:
    """Boolean array: reading i differs from reading i-1 by < tolerance."""
    watts = np.asarray(watts, dtype=np.float64)
    prev = watts[:-1]
    diff = np.abs(np.diff(watts))
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(prev != 0, diff / np.abs(prev), np.inf)
    return rel < rule.rel_tolerance


def is_stable(watts: np.ndarray, rule: StabilizationRule = StabilizationRule()) -> bool:
    """Whether the *last* ``n_readings`` of the signal satisfy the rule."""
    watts = np.asarray(watts, dtype=np.float64)
    if watts.size < rule.n_readings:
        return False
    tail = watts[-rule.n_readings:]
    return bool(np.all(_consecutive_ok(tail, rule)))


def first_stable_index(
    watts: np.ndarray, rule: StabilizationRule = StabilizationRule()
) -> int | None:
    """Index of the earliest reading at which the signal counts as stable.

    Returns the index ``i`` such that readings ``[i - n + 1 … i]`` satisfy
    the rule, or ``None`` if the signal never stabilises.
    """
    watts = np.asarray(watts, dtype=np.float64)
    n = rule.n_readings
    if watts.size < n:
        return None
    ok = _consecutive_ok(watts, rule)
    # A window ending at reading i needs ok[i-n+1 .. i-1] all true (n-1 diffs).
    window = np.convolve(ok.astype(np.int64), np.ones(n - 1, dtype=np.int64), "valid")
    hits = np.flatnonzero(window == n - 1)
    if hits.size == 0:
        return None
    return int(hits[0] + n - 1)
