"""Simulated ``dstat`` resource monitoring.

Section V-B: *"we also measure the CPU and memory consumption during each
migration using the dstat tool."*  The monitor samples host-level CPU
utilisation, memory-bus activity and NIC throughput once per second into a
:class:`~repro.telemetry.traces.SeriesTrace` — the per-host feature source
for model training (together with the network instrumentation reading the
transfer bandwidth).
"""

from __future__ import annotations

from repro.cluster.host import PhysicalHost
from repro.simulator.engine import Simulator
from repro.simulator.sampling import PeriodicSampler
from repro.telemetry.traces import SeriesTrace

__all__ = ["DstatMonitor"]

#: Columns recorded per sample.
COLUMNS = ("cpu_pct", "memory_activity", "nic_tx_bps", "nic_rx_bps")


class DstatMonitor:
    """Per-second host resource sampler.

    Parameters
    ----------
    sim:
        The driving simulator.
    host:
        The monitored machine.
    period_s:
        Sampling interval (dstat's default of 1 s).
    """

    def __init__(self, sim: Simulator, host: PhysicalHost, period_s: float = 1.0) -> None:
        self.host = host
        self.trace = SeriesTrace(COLUMNS, label=f"dstat:{host.name}")
        self._sampler = PeriodicSampler(sim, period_s, self._sample)

    @property
    def running(self) -> bool:
        """Whether the monitor is currently sampling."""
        return self._sampler.running

    def start(self) -> None:
        """Begin sampling into :attr:`trace`."""
        self._sampler.start()

    def stop(self) -> None:
        """Stop sampling (the trace is retained)."""
        self._sampler.stop()

    def _sample(self, t: float) -> None:
        self.trace.append(
            t,
            cpu_pct=self.host.cpu_utilisation_percent(t),
            memory_activity=self.host.memory_activity_fraction(),
            nic_tx_bps=self.host.nic_tx_bps(),
            nic_rx_bps=self.host.nic_rx_bps(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DstatMonitor on {self.host.name} n={len(self.trace)}>"
