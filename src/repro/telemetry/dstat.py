"""Simulated ``dstat`` resource monitoring.

Section V-B: *"we also measure the CPU and memory consumption during each
migration using the dstat tool."*  The monitor samples host-level CPU
utilisation, memory-bus activity and NIC throughput once per second into a
:class:`~repro.telemetry.traces.SeriesTrace` — the per-host feature source
for model training (together with the network instrumentation reading the
transfer bandwidth).

With ``batched=True`` the monitor rides the simulator's interval hooks:
memory and NIC activity are constant between events, and the jittered CPU
reads come from the host's vectorized block method — one bulk trace append
per event-free interval, bit-identical to per-second event sampling.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.host import PhysicalHost
from repro.simulator.engine import Simulator
from repro.simulator.kernels import resolve_compute
from repro.simulator.sampling import SCALAR_BLOCK_MAX, PeriodicSampler
from repro.telemetry.traces import SeriesTrace

__all__ = ["DstatMonitor"]

#: Columns recorded per sample.
COLUMNS = ("cpu_pct", "memory_activity", "nic_tx_bps", "nic_rx_bps")


class DstatMonitor:
    """Per-second host resource sampler.

    Parameters
    ----------
    sim:
        The driving simulator.
    host:
        The monitored machine.
    period_s:
        Sampling interval (dstat's default of 1 s).
    batched:
        Select the vectorized interval-hook fast path (bit-identical).
    compute:
        Kernel selection for batched blocks (see
        :mod:`repro.simulator.kernels`); ``"python"`` keeps every block
        on the scalar memoised pipeline.  Same bits in every mode.
    """

    def __init__(
        self,
        sim: Simulator,
        host: PhysicalHost,
        period_s: float = 1.0,
        batched: bool = False,
        compute: str = "numpy",
    ) -> None:
        self.host = host
        self.trace = SeriesTrace(COLUMNS, label=f"dstat:{host.name}")
        self._compute = resolve_compute(compute)
        self._sampler = PeriodicSampler(
            sim,
            period_s,
            self._sample,
            batched=batched,
            batch_callback=self._sample_block if batched else None,
            vectorized=batched and self._compute != "python",
        )

    @property
    def running(self) -> bool:
        """Whether the monitor is currently sampling."""
        return self._sampler.running

    def start(self) -> None:
        """Begin sampling into :attr:`trace`."""
        self._sampler.start()

    def stop(self) -> None:
        """Stop sampling (the trace is retained)."""
        self._sampler.stop()

    def _sample(self, t: float) -> None:
        self.trace.append(
            t,
            cpu_pct=self.host.cpu_utilisation_percent(t),
            memory_activity=self.host.memory_activity_fraction(),
            nic_tx_bps=self.host.nic_tx_bps(),
            nic_rx_bps=self.host.nic_rx_bps(),
        )

    def _sample_block(self, times: np.ndarray) -> None:
        # Everything but the jittered CPU read is constant between events.
        if self._compute == "python" or times.size <= SCALAR_BLOCK_MAX:
            host = self.host
            memory_activity = host.memory_activity_fraction()
            nic_tx = host.nic_tx_bps()
            nic_rx = host.nic_rx_bps()
            cpu_cached = host.cpu_utilisation_fraction_cached
            times_list = times.tolist()
            n = len(times_list)
            buf_t, (b_cpu, b_mem, b_tx, b_rx), start = (
                self.trace._reserve(n, times_list[0])
            )
            for i, t in enumerate(times_list):
                j = start + i
                buf_t[j] = t
                b_cpu[j] = cpu_cached(t) * 100.0
                b_mem[j] = memory_activity
                b_tx[j] = nic_tx
                b_rx[j] = nic_rx
            self.trace._commit(n)
            return
        n = times.size
        times_list = times.tolist()
        kernel = self.host.attach_kernel(mode=self._compute)
        buf_t, (b_cpu, b_mem, b_tx, b_rx), start = (
            self.trace._reserve(n, times_list[0])
        )
        end = start + n
        buf_t[start:end] = times
        # The kernel serves the jittered reads straight from the shared
        # per-timestamp memo when the meter already published them this
        # interval; otherwise it recomputes from the noise grid (pure, so
        # bit-identical either way).
        b_cpu[start:end] = kernel.util_block(times, times_list) * 100.0
        b_mem[start:end] = self.host.memory_activity_fraction()
        b_tx[start:end] = self.host.nic_tx_bps()
        b_rx[start:end] = self.host.nic_rx_bps()
        self.trace._commit(n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DstatMonitor on {self.host.name} n={len(self.trace)}>"
