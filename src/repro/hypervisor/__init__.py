"""Xen-like hypervisor substrate (subsystem S3).

Implements the hypervisor mechanisms the paper's measurements depend on:

* :class:`~repro.hypervisor.memory.VmMemory` — guest memory with Xen-style
  dirty-page logging and analytically faithful random-write statistics;
* :class:`~repro.hypervisor.vm.VirtualMachine` — paravirtualised guest
  with a lifecycle state machine;
* :class:`~repro.hypervisor.vmm.XenHypervisor` — per-host VMM with dom-0
  and the arbitration overhead term CPUVMM of Eq. 2;
* :class:`~repro.hypervisor.migration.MigrationJob` — the live (iterative
  pre-copy + stop-and-copy) and non-live (suspend/resume) migration
  engines, producing the phase timeline of Section III-D;
* :class:`~repro.hypervisor.toolstack.Toolstack` — an xl/xm-flavoured
  facade used by the experiment harness and the consolidation manager.
"""

from repro.hypervisor.memory import VmMemory, expected_distinct_pages
from repro.hypervisor.migration import MigrationConfig, MigrationJob, MigrationKind
from repro.hypervisor.toolstack import Toolstack
from repro.hypervisor.vm import VirtualMachine, VmState
from repro.hypervisor.vmm import XenHypervisor

__all__ = [
    "VmMemory",
    "expected_distinct_pages",
    "MigrationConfig",
    "MigrationJob",
    "MigrationKind",
    "Toolstack",
    "VirtualMachine",
    "VmState",
    "XenHypervisor",
]
