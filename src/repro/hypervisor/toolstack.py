"""An ``xl``/``xm``-flavoured toolstack facade.

The paper drives migrations through Xen's toolstacks ("including both xm
and xl toolstacks configured to perform the live and non-live
migrations").  :class:`Toolstack` provides the same ergonomic surface over
the simulation: create/start/destroy domains and issue ``migrate`` with or
without ``--live``, returning the :class:`~repro.hypervisor.migration.MigrationJob`
so callers can subscribe to completion and read the phase timeline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.network import NetworkPath
from repro.errors import HypervisorError
from repro.hypervisor.migration import MigrationConfig, MigrationJob, MigrationKind
from repro.hypervisor.vm import VirtualMachine
from repro.hypervisor.vmm import XenHypervisor
from repro.simulator.engine import Simulator
from repro.workloads.base import Workload

__all__ = ["Toolstack"]


class Toolstack:
    """Cluster-level management facade over a set of hypervisors.

    Parameters
    ----------
    sim:
        The driving simulator.
    hypervisors:
        The managed per-host VMMs.
    rng:
        Generator used for per-migration stochastic variation (forked off
        the experiment's stream machinery by the testbed builder).
    """

    def __init__(
        self,
        sim: Simulator,
        hypervisors: dict[str, XenHypervisor],
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self._xen = dict(hypervisors)
        self._rng = rng
        self._jobs: list[MigrationJob] = []

    # ------------------------------------------------------------------
    def hypervisor(self, host_name: str) -> XenHypervisor:
        """The VMM managing ``host_name``."""
        try:
            return self._xen[host_name]
        except KeyError:
            raise HypervisorError(
                f"no managed host {host_name!r}; have {sorted(self._xen)}"
            ) from None

    @property
    def jobs(self) -> tuple[MigrationJob, ...]:
        """All migration jobs issued through this toolstack."""
        return tuple(self._jobs)

    # ------------------------------------------------------------------
    # Domain management (xl create / shutdown ergonomics)
    # ------------------------------------------------------------------
    def create(
        self,
        host_name: str,
        vm: VirtualMachine,
        start: bool = True,
    ) -> VirtualMachine:
        """Place (and by default boot) a guest on a host."""
        xen = self.hypervisor(host_name)
        xen.create_vm(vm)
        if start:
            xen.start_vm(vm.name)
        return vm

    def destroy(self, host_name: str, vm_name: str) -> None:
        """Destroy a guest on a host."""
        self.hypervisor(host_name).destroy_vm(vm_name)

    def set_workload(self, host_name: str, vm_name: str, workload: Workload) -> None:
        """Swap the workload of a running guest and refresh its demands."""
        xen = self.hypervisor(host_name)
        xen.vm(vm_name).set_workload(workload)
        xen.refresh_vm(vm_name)

    # ------------------------------------------------------------------
    # Migration (xl migrate [--live])
    # ------------------------------------------------------------------
    def migrate(
        self,
        vm_name: str,
        source_host: str,
        target_host: str,
        path: NetworkPath,
        live: bool = True,
        config: Optional[MigrationConfig] = None,
        start: bool = True,
    ) -> MigrationJob:
        """Issue a migration; returns the job (already started by default)."""
        source = self.hypervisor(source_host)
        target = self.hypervisor(target_host)
        vm = source.vm(vm_name)
        job = MigrationJob(
            sim=self.sim,
            kind=MigrationKind.LIVE if live else MigrationKind.NONLIVE,
            vm=vm,
            source=source,
            target=target,
            path=path,
            rng=self._rng,
            config=config,
        )
        self._jobs.append(job)
        if start:
            job.start()
        return job
