"""The per-host virtual machine monitor (Xen-flavoured).

Implements the host-side CPU composition of Eq. 2 of the paper::

    CPU(h,t) = CPUVMM(V(h,t)) + Σ_{v ∈ V(h,t)} CPU(v,t) + CPUmigr(h,t)

* ``CPUVMM`` — arbitration overhead of the hypervisor plus dom-0: a base
  cost plus a per-running-VM increment (event channels, grant tables,
  backend I/O).  Registered on the host accountant under ``xen:vmm``.
* per-VM demand — registered under ``vm:<name>`` whenever the VM runs.
* ``CPUmigr`` — registered by migration jobs under ``migr:*`` keys.

The VMM owns VM placement on its host: creating, starting, suspending,
resuming, destroying and the migration-side adopt/evict operations all
keep the host's CPU, memory-activity and NIC registrations in sync.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.host import PhysicalHost
from repro.errors import CapacityError, HypervisorError, VMStateError
from repro.hypervisor.vm import VirtualMachine, VmState

__all__ = ["XenHypervisor"]

#: Accountant key of the VMM + dom-0 overhead entry.
VMM_KEY = "xen:vmm"


class XenHypervisor:
    """Hypervisor instance managing the guests of one physical host.

    Parameters
    ----------
    host:
        The physical machine this VMM runs on.
    dom0_threads:
        Constant CPU demand of dom-0 (kernel, xenstore, backends).
    arbitration_base_threads:
        Fixed scheduling/arbitration cost of the VMM itself.
    arbitration_per_vm_threads:
        Incremental arbitration cost per *running* VM — this makes
        ``CPUVMM`` a function of ``V(h,t)`` as in Eq. 2.
    version:
        Reported Xen version (Table IIc: 4.2.5).
    """

    def __init__(
        self,
        host: PhysicalHost,
        dom0_threads: float = 0.35,
        arbitration_base_threads: float = 0.10,
        arbitration_per_vm_threads: float = 0.06,
        version: str = "4.2.5",
    ) -> None:
        self.host = host
        self.version = version
        self._dom0_threads = float(dom0_threads)
        self._arb_base = float(arbitration_base_threads)
        self._arb_per_vm = float(arbitration_per_vm_threads)
        self._vms: dict[str, VirtualMachine] = {}
        self._refresh_vmm_demand()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def vms(self) -> tuple[VirtualMachine, ...]:
        """All guests currently placed on this host (any state)."""
        return tuple(self._vms.values())

    def running_vms(self) -> tuple[VirtualMachine, ...]:
        """The set ``V(h,t)`` of running guests."""
        return tuple(vm for vm in self._vms.values() if vm.running)

    def vm(self, name: str) -> VirtualMachine:
        """Look up a guest by name."""
        try:
            return self._vms[name]
        except KeyError:
            raise HypervisorError(f"no VM named {name!r} on host {self.host.name}") from None

    def vmm_overhead_threads(self) -> float:
        """``CPUVMM(V(h,t))`` + dom-0, in hardware threads."""
        return self._dom0_threads + self._arb_base + self._arb_per_vm * len(self.running_vms())

    def used_ram_mb(self) -> int:
        """Guest memory reserved on this host (placed VMs, any state)."""
        return sum(vm.memory.ram_mb for vm in self._vms.values())

    def free_ram_mb(self) -> int:
        """Host RAM available for new guests (512 MB held back for dom-0)."""
        return self.host.spec.ram_mb - 512 - self.used_ram_mb()

    # ------------------------------------------------------------------
    # Lifecycle operations
    # ------------------------------------------------------------------
    def create_vm(self, vm: VirtualMachine) -> VirtualMachine:
        """Place a DEFINED guest on this host."""
        if vm.name in self._vms:
            raise HypervisorError(f"VM name {vm.name!r} already used on {self.host.name}")
        if vm.state is not VmState.DEFINED:
            raise VMStateError(f"can only place DEFINED VMs, {vm.name!r} is {vm.state.value}")
        if vm.memory.ram_mb > self.free_ram_mb():
            raise CapacityError(
                f"host {self.host.name} has {self.free_ram_mb()} MB free, "
                f"VM {vm.name!r} needs {vm.memory.ram_mb} MB"
            )
        self._vms[vm.name] = vm
        vm.host = self.host
        self._refresh_vmm_demand()
        return vm

    def start_vm(self, name: str) -> None:
        """Boot a placed guest and register its resource demands."""
        vm = self.vm(name)
        vm.mark_running()
        self._sync_vm(vm)
        self._refresh_vmm_demand()

    def suspend_vm(self, name: str) -> None:
        """Pause a running guest; its demands drop off the host."""
        vm = self.vm(name)
        vm.mark_suspended()
        self._sync_vm(vm)
        self._refresh_vmm_demand()

    def resume_vm(self, name: str) -> None:
        """Resume a suspended guest."""
        vm = self.vm(name)
        vm.mark_running()
        self._sync_vm(vm)
        self._refresh_vmm_demand()

    def destroy_vm(self, name: str) -> None:
        """Tear a guest down and free its resources."""
        vm = self.vm(name)
        vm.mark_destroyed()
        self._clear_vm(vm)
        del self._vms[name]
        vm.host = None
        self._refresh_vmm_demand()

    # ------------------------------------------------------------------
    # Migration support (called by MigrationJob)
    # ------------------------------------------------------------------
    def evict_vm(self, name: str) -> VirtualMachine:
        """Remove a guest from this host without destroying it.

        Used at the end of activation: the source frees the resources that
        belonged to the migrating VM (Section III-D(d)).
        """
        vm = self.vm(name)
        self._clear_vm(vm)
        del self._vms[name]
        vm.host = None
        self._refresh_vmm_demand()
        return vm

    def adopt_vm(self, vm: VirtualMachine) -> None:
        """Place an in-flight guest (RUNNING or SUSPENDED) on this host."""
        if vm.name in self._vms:
            raise HypervisorError(f"VM name {vm.name!r} already used on {self.host.name}")
        if vm.memory.ram_mb > self.free_ram_mb():
            raise CapacityError(
                f"host {self.host.name} cannot adopt {vm.name!r}: insufficient RAM"
            )
        self._vms[vm.name] = vm
        vm.host = self.host
        self._sync_vm(vm)
        self._refresh_vmm_demand()

    def refresh_vm(self, name: str) -> None:
        """Re-register a guest's demands after its state/workload changed."""
        self._sync_vm(self.vm(name))
        self._refresh_vmm_demand()

    # ------------------------------------------------------------------
    # Host registration plumbing
    # ------------------------------------------------------------------
    def _sync_vm(self, vm: VirtualMachine) -> None:
        key = f"vm:{vm.name}"
        if vm.running:
            self.host.cpu.set_demand(key, vm.cpu_demand_threads())
            self.host.set_memory_activity(key, vm.memory_activity())
            tx, rx = vm.nic_demand_bps()
            if tx or rx:
                self.host.set_nic_flow(key, tx_bps=tx, rx_bps=rx)
            else:
                self.host.clear_nic_flow(key)
        else:
            self.host.cpu.remove(key)
            self.host.clear_memory_activity(key)
            self.host.clear_nic_flow(key)

    def _clear_vm(self, vm: VirtualMachine) -> None:
        key = f"vm:{vm.name}"
        self.host.cpu.remove(key)
        self.host.clear_memory_activity(key)
        self.host.clear_nic_flow(key)

    def _refresh_vmm_demand(self) -> None:
        self.host.cpu.set_demand(VMM_KEY, self.vmm_overhead_threads())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<XenHypervisor {self.version} on {self.host.name}: "
            f"{len(self.running_vms())}/{len(self._vms)} running>"
        )
