"""Guest memory with Xen-style dirty-page logging.

Xen's live migration tracks dirtying at 4 KiB page granularity through a
log-dirty bitmap; each pre-copy round clears the log and re-sends pages
dirtied during the previous round.  This module reproduces that mechanism
with two levels of fidelity:

* a **bitmap** (numpy bool array) for exact per-round accounting, and
* the **occupancy formula** for the distinct-page statistics of random
  writes: a workload issuing ``N`` uniform writes over a working set of
  ``W`` pages leaves a given page untouched with probability
  ``(1 - 1/W)^N``, so the expected number of distinct pages dirtied is
  ``W · (1 - (1 - 1/W)^N)`` — the classic coupon-collector saturation.

The stochastic update draws the number of *newly* dirtied pages from a
binomial over the currently clean working pages, then marks uniformly
chosen clean pages.  This is faithful to ``pagedirtier``'s random-order
writes while staying O(working set) per pre-copy round.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.units import PAGE_SIZE_BYTES, mib_to_pages

__all__ = ["expected_distinct_pages", "VmMemory"]


def expected_distinct_pages(writes: float, working_pages: int) -> float:
    """Expected distinct pages touched by ``writes`` uniform random writes.

    Parameters
    ----------
    writes:
        Number of (possibly fractional) page-write operations.
    working_pages:
        Size of the working set in pages.

    Returns
    -------
    float
        ``W · (1 − (1 − 1/W)^N)``, computed in log-space for numerical
        stability; 0 when either argument is 0.
    """
    if writes <= 0 or working_pages <= 0:
        return 0.0
    w = float(working_pages)
    if w == 1.0:
        # Degenerate working set: at most one distinct page, and fractional
        # write counts (rate × short dt) cannot touch more than they are.
        return min(1.0, writes)
    log_miss = writes * math.log1p(-1.0 / w)
    # The continuous-N extension slightly exceeds N for fractional N < 1;
    # distinct pages can never outnumber the writes that touched them.
    return min(w * (1.0 - math.exp(log_miss)), writes)


class VmMemory:
    """Guest memory image with a log-dirty bitmap.

    Parameters
    ----------
    ram_mb:
        Guest memory size in MiB; the image is ``ram_mb`` worth of 4 KiB
        pages, all of which are transferred by a migration.
    """

    def __init__(self, ram_mb: int) -> None:
        if ram_mb <= 0:
            raise ConfigurationError(f"ram_mb must be positive, got {ram_mb!r}")
        self.ram_mb = int(ram_mb)
        self.n_pages = mib_to_pages(ram_mb)
        self._logging = False
        self._working_pages = 0
        self._write_rate_pages_s = 0.0
        # Dirty-page accounting.  Pages are only ever marked by advance()
        # — always uniformly inside the working set — and cleared
        # wholesale by clear_dirty(), so while the working set stays
        # fixed (which every migration path guarantees: the dirty
        # process is only re-synced on suspend/resume, with the same
        # workload) the log reduces exactly to a counter: every
        # observable (dirty_count, clean-set size, the RNG draws) is a
        # function of counts alone.  This makes the whole log O(1)
        # instead of O(n_pages) bitmap passes per pre-copy round, and
        # advance() still consumes the generator identically to the
        # explicit-bitmap implementation it replaced
        # (``Generator.choice`` draws the same variates for an int
        # population as for an index array of the same size).
        # Resizing the working set while pages are logged is rejected
        # (see set_dirty_process): page identity is gone, so the
        # inside/outside split could not be reconstructed.
        #
        # The counter lives in a plain int until a compute-mode kernel
        # row adopts it (bind_dirty_slot), after which reads and writes
        # go through the row's int64 ``dirty_logged`` slot — the log
        # state then rides the same structured array as the VM's
        # vectorized CPU feature.
        self._dirty_local = 0
        self._dirty_row: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Dirty-counter storage (plain int, or a kernel SoA row slot)
    # ------------------------------------------------------------------
    @property
    def _dirty_logged(self) -> int:
        row = self._dirty_row
        if row is None:
            return self._dirty_local
        return int(row["dirty_logged"][0])

    @_dirty_logged.setter
    def _dirty_logged(self, value: int) -> None:
        row = self._dirty_row
        if row is None:
            self._dirty_local = value
        else:
            row["dirty_logged"] = value

    def bind_dirty_slot(self, row: np.ndarray) -> None:
        """Move the dirty counter into a kernel row's ``dirty_logged`` slot.

        Carries the current count over, so binding mid-run (the kernels
        attach lazily) is transparent; page counts are far below int64
        range.  Called by :meth:`VirtualMachine.attach_kernel`.
        """
        row["dirty_logged"] = self._dirty_local
        self._dirty_row = row

    # ------------------------------------------------------------------
    # Workload coupling
    # ------------------------------------------------------------------
    def set_dirty_process(self, write_rate_pages_s: float, working_set_fraction: float) -> None:
        """Configure the page-dirtying process driven by the guest workload."""
        if write_rate_pages_s < 0:
            raise ConfigurationError(
                f"write rate must be non-negative, got {write_rate_pages_s!r}"
            )
        if not 0.0 <= working_set_fraction <= 1.0:
            raise ConfigurationError(
                f"working_set_fraction must be in [0, 1], got {working_set_fraction!r}"
            )
        new_working = int(round(working_set_fraction * self.n_pages))
        if (
            self._logging
            and self._dirty_logged
            and new_working != self._working_pages
        ):
            # The counter log cannot attribute already-dirty pages to a
            # *resized* working set (page identity is gone), so fail
            # loudly rather than silently diverge from the bitmap
            # semantics.  No migration path resizes the set while
            # logging: the dirty process is only re-synced on
            # suspend/resume, with the same workload.
            raise ConfigurationError(
                "cannot resize the working set while dirty pages are "
                f"logged ({self._dirty_logged} dirty, "
                f"{self._working_pages} -> {new_working} pages)"
            )
        self._write_rate_pages_s = float(write_rate_pages_s)
        self._working_pages = new_working

    def stop_dirty_process(self) -> None:
        """Suspend dirtying (VM paused or destroyed)."""
        self._write_rate_pages_s = 0.0

    @property
    def write_rate_pages_s(self) -> float:
        """Configured raw page-write rate."""
        return self._write_rate_pages_s

    @property
    def working_pages(self) -> int:
        """Configured working-set size in pages."""
        return self._working_pages

    # ------------------------------------------------------------------
    # Dirty logging (migration side)
    # ------------------------------------------------------------------
    @property
    def logging(self) -> bool:
        """Whether log-dirty mode is active."""
        return self._logging

    def enable_logging(self) -> None:
        """Start log-dirty mode with a clean log (shadow page tables on)."""
        self._logging = True
        self._dirty_logged = 0

    def disable_logging(self) -> None:
        """Leave log-dirty mode and drop the log."""
        self._logging = False
        self._dirty_logged = 0

    def dirty_count(self) -> int:
        """Number of pages currently marked dirty (0 when not logging)."""
        return self._dirty_logged if self._logging else 0

    def clear_dirty(self) -> int:
        """Clear the log (start of a pre-copy round); returns pages cleared."""
        if not self._logging:
            return 0
        count = self._dirty_logged
        self._dirty_logged = 0
        return count

    def advance(self, dt: float, rng: np.random.Generator) -> int:
        """Advance the dirtying process by ``dt`` seconds of guest execution.

        Marks newly dirtied pages in the log (if active) according to the
        occupancy statistics of random uniform writes.  Returns the number
        of *newly* dirtied pages (0 when not logging — without the log
        there is nothing to record, exactly as in Xen).
        """
        if dt < 0:
            raise ConfigurationError(f"dt must be non-negative, got {dt!r}")
        if not self._logging or dt == 0.0:
            return 0
        w = self._working_pages
        rate = self._write_rate_pages_s
        if w <= 0 or rate <= 0.0:
            return 0
        writes = rate * dt
        # Probability that a specific working page got touched at least once.
        p_touched = 1.0 - math.exp(writes * math.log1p(-1.0 / w)) if w > 1 else 1.0
        clean = w - self._dirty_logged
        if clean <= 0:
            return 0
        n_new = int(rng.binomial(clean, min(max(p_touched, 0.0), 1.0)))
        if n_new == 0:
            return 0
        # Draw the page choice exactly as the explicit-bitmap version did
        # (uniform distinct clean pages); only the count is observable.
        rng.choice(clean, size=n_new, replace=False)
        self._dirty_logged += n_new
        return n_new

    # ------------------------------------------------------------------
    # Steady-state dirtying ratio (the model feature of Eq. 1)
    # ------------------------------------------------------------------
    #: Default DR observation window.  Eq. 1's "pages marked as dirty over
    #: a given amount of time" must be read on the timescale of a transfer
    #: phase: a 60 s window lets pagedirtier's 42 k pages/s writer touch
    #: its full working set, mapping the MEMLOAD sweep (5–95 %) onto DR
    #: almost one-to-one.  A 1 s window would compress the whole sweep
    #: into a few percent and make γ(t) unidentifiable.
    DR_WINDOW_S: float = 60.0

    def dirtying_ratio_percent(self, window_s: float = DR_WINDOW_S) -> float:
        """Steady-state DR(v,t) in percent over an observation window.

        Eq. 1 defines DR as dirty pages over total pages; operationally the
        paper observes "a high percentage of memory pages marked as dirty
        over a given amount of time".  We therefore report the expected
        distinct pages dirtied within ``window_s`` as a fraction of the
        guest's total pages.  With the default migration-scale window the
        writer saturates its working set — mapping MEMLOAD's 5–95 % sweep
        directly onto DR, as the paper's experiment design intends.
        """
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be positive, got {window_s!r}")
        distinct = expected_distinct_pages(
            self._write_rate_pages_s * window_s, self._working_pages
        )
        return 100.0 * distinct / self.n_pages

    # ------------------------------------------------------------------
    @property
    def image_bytes(self) -> int:
        """Bytes a migration must move for the full memory image."""
        return self.n_pages * PAGE_SIZE_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"dirty={self.dirty_count()}" if self.logging else "no-log"
        return f"<VmMemory {self.ram_mb}MB pages={self.n_pages} {state}>"
