"""Paravirtualised virtual machine with a lifecycle state machine.

The VM is the third actor of the paper's model (alongside source and
target host).  It exposes the two per-VM features of Section IV-B:

* ``CPU(v,t)`` — the VM's CPU utilisation in percent of its own vCPU
  allocation (0 when idle or suspended);
* ``DR(v,t)`` — the memory dirtying ratio in percent (0 when idle or
  suspended), delegated to :class:`~repro.hypervisor.memory.VmMemory`.

State transitions are strict: migrating code must suspend/resume through
the hypervisor, and invalid transitions raise
:class:`~repro.errors.VMStateError` — mirroring how ``xl`` refuses
operations on domains in the wrong state.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import VMStateError
from repro.hypervisor.memory import VmMemory
from repro.simulator.kernels import KernelArena, VmKernel
from repro.simulator.noise import (
    ou_like_noise,
    ou_like_noise_cached,
    ou_like_noise_values,
)
from repro.workloads.base import Workload
from repro.workloads.idle import IdleWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.host import PhysicalHost

__all__ = ["VmState", "VirtualMachine"]

#: Correlation quantum for per-VM CPU jitter (same timescale as the host's).
_JITTER_QUANTUM_S = 0.5
#: Jitter sigma for the per-VM CPU feature, in percent points.
_VM_CPU_JITTER_PCT = 1.1


class VmState(enum.Enum):
    """Lifecycle states of a guest domain."""

    DEFINED = "defined"          # created, not yet started
    RUNNING = "running"
    SUSPENDED = "suspended"      # paused with state preserved
    DESTROYED = "destroyed"


#: Legal state transitions (from -> allowed targets).
_TRANSITIONS: dict[VmState, frozenset[VmState]] = {
    VmState.DEFINED: frozenset({VmState.RUNNING, VmState.DESTROYED}),
    VmState.RUNNING: frozenset({VmState.SUSPENDED, VmState.DESTROYED}),
    VmState.SUSPENDED: frozenset({VmState.RUNNING, VmState.DESTROYED}),
    VmState.DESTROYED: frozenset(),
}


class VirtualMachine:
    """A paravirtualised guest.

    Parameters
    ----------
    name:
        Unique domain name.
    vcpus:
        Number of virtual CPUs.
    ram_mb:
        Guest memory size in MiB.
    workload:
        Behavioural workload model; defaults to an idle guest.
    instance_type:
        Catalog label (``load-cpu`` …) carried for reports.
    noise_seed:
        Seed of the VM's deterministic CPU-feature jitter.
    """

    def __init__(
        self,
        name: str,
        vcpus: int,
        ram_mb: int,
        workload: Optional[Workload] = None,
        instance_type: str = "custom",
        noise_seed: int = 0,
    ) -> None:
        if vcpus <= 0:
            raise VMStateError(f"vcpus must be positive, got {vcpus!r}")
        self.name = name
        self.vcpus = int(vcpus)
        self.instance_type = instance_type
        self.memory = VmMemory(ram_mb)
        self.state = VmState.DEFINED
        self.host: Optional["PhysicalHost"] = None
        self._workload: Workload = workload or IdleWorkload()
        self._noise_seed = int(noise_seed)
        # Per-tick N(0,1) memo of the VM's CPU-feature jitter (see
        # PhysicalHost's tick caches for the rationale).
        self._noise_cache: dict[int, float] = {}
        self._vmcpu_noise_key = f"vmcpu:{name}"
        # Compute-mode SoA kernel (repro.simulator.kernels); attached
        # lazily by the first vectorized feature read.
        self._kernel: VmKernel | None = None
        self._sync_dirty_process()

    # ------------------------------------------------------------------
    # Compute-mode kernel (SoA fast path)
    # ------------------------------------------------------------------
    def attach_kernel(self, arena: KernelArena | None = None) -> VmKernel:
        """Attach (idempotently) the vectorized compute kernel.

        Allocates the VM's structured-array row — from the host kernel's
        shared arena when the VM is placed on an instrumented testbed —
        and moves the dirty-page counter into the row's ``dirty_logged``
        slot, so migration log state rides the same array as the CPU
        feature the kernel vectorizes.
        """
        if self._kernel is None:
            if arena is None and self.host is not None and self.host._kernel is not None:
                arena = self.host._kernel.arena
            self._kernel = VmKernel(
                self,
                arena,
                jitter_quantum=_JITTER_QUANTUM_S,
                jitter_sigma_pct=_VM_CPU_JITTER_PCT,
            )
            self.memory.bind_dirty_slot(self._kernel.row)
        return self._kernel

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    @property
    def workload(self) -> Workload:
        """The attached behavioural workload."""
        return self._workload

    def set_workload(self, workload: Workload) -> None:
        """Replace the workload (takes effect immediately if running)."""
        self._workload = workload
        self._sync_dirty_process()

    def _sync_dirty_process(self) -> None:
        if self.state is VmState.RUNNING:
            self.memory.set_dirty_process(
                self._workload.dirty_page_rate(),
                self._workload.working_set_fraction(),
            )
        else:
            self.memory.stop_dirty_process()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _transition(self, target: VmState) -> None:
        allowed = _TRANSITIONS[self.state]
        if target not in allowed:
            raise VMStateError(
                f"VM {self.name!r}: illegal transition {self.state.value} -> {target.value}"
            )
        self.state = target
        self._sync_dirty_process()

    def mark_running(self) -> None:
        """Enter RUNNING (hypervisor-internal; use the toolstack API)."""
        self._transition(VmState.RUNNING)

    def mark_suspended(self) -> None:
        """Enter SUSPENDED (hypervisor-internal)."""
        self._transition(VmState.SUSPENDED)

    def mark_destroyed(self) -> None:
        """Enter DESTROYED (hypervisor-internal)."""
        self._transition(VmState.DESTROYED)

    @property
    def running(self) -> bool:
        """Whether the guest is executing."""
        return self.state is VmState.RUNNING

    # ------------------------------------------------------------------
    # Resource demands (what the hypervisor registers on the host)
    # ------------------------------------------------------------------
    def cpu_demand_threads(self) -> float:
        """Demand on the host in hardware threads (0 unless running)."""
        if not self.running:
            return 0.0
        return self.vcpus * self._workload.cpu_fraction()

    def memory_activity(self) -> float:
        """Memory-bus activity contribution (0 unless running)."""
        if not self.running:
            return 0.0
        return self._workload.memory_activity_fraction()

    def nic_demand_bps(self) -> tuple[float, float]:
        """(tx, rx) guest traffic in bytes/s (0 unless running)."""
        if not self.running:
            return (0.0, 0.0)
        return (self._workload.nic_tx_bps(), self._workload.nic_rx_bps())

    # ------------------------------------------------------------------
    # Model features (Section IV-B)
    # ------------------------------------------------------------------
    def cpu_percent(self, t: Optional[float] = None) -> float:
        """``CPU(v,t)``: utilisation in percent of the VM's allocation.

        0 when idle or suspended (paper Section IV-B).  Under host
        multiplexing the credit scheduler shrinks the VM's share, which is
        reflected through the host allocation fraction when available.
        """
        if not self.running:
            return 0.0
        base = self._workload.cpu_fraction() * 100.0
        if self.host is not None:
            base *= self.host.cpu.allocation_fraction(f"vm:{self.name}")
        if t is None:
            return min(base, 100.0)
        jitter = ou_like_noise(
            self._noise_seed, f"vmcpu:{self.name}", t, _JITTER_QUANTUM_S,
            sigma=_VM_CPU_JITTER_PCT,
        )
        return float(min(max(base + jitter, 0.0), 100.0))

    def cpu_percent_block(self, times: np.ndarray) -> np.ndarray:
        """Batched :meth:`cpu_percent` over an event-free interval.

        The workload share and scheduler allocation are constant between
        events; only the deterministic read jitter varies per sample.
        Bit-identical to per-sample scalar calls.
        """
        times = np.asarray(times, dtype=np.float64)
        return np.asarray(self.cpu_percent_values(times.tolist()), dtype=np.float64)

    def cpu_percent_cached(self, t: float) -> float:
        """Scalar :meth:`cpu_percent` through the per-tick noise memo.

        The single-sample core of :meth:`cpu_percent_block`; bit-identical
        to ``cpu_percent(t)``.
        """
        if not self.running:
            return 0.0
        base = self._workload.cpu_fraction() * 100.0
        if self.host is not None:
            base *= self.host.cpu.allocation_fraction(f"vm:{self.name}")
        jitter = ou_like_noise_cached(
            self._noise_seed, self._vmcpu_noise_key, t, _JITTER_QUANTUM_S,
            _VM_CPU_JITTER_PCT, 0.6, self._noise_cache,
        )
        return float(min(max(base + jitter, 0.0), 100.0))

    def cpu_percent_values(self, times: list[float]) -> list[float]:
        """Batched :meth:`cpu_percent` (plain floats, loop core)."""
        if not self.running:
            return [0.0] * len(times)
        base = self._workload.cpu_fraction() * 100.0
        if self.host is not None:
            base *= self.host.cpu.allocation_fraction(f"vm:{self.name}")
        jitter = ou_like_noise_values(
            self._noise_seed, self._vmcpu_noise_key, times, _JITTER_QUANTUM_S,
            sigma=_VM_CPU_JITTER_PCT, cache=self._noise_cache,
        )
        return [float(min(max(base + j, 0.0), 100.0)) for j in jitter]

    def dirtying_ratio_percent(self) -> float:
        """``DR(v,t)``: steady-state dirtying ratio in percent (Eq. 1)."""
        if not self.running:
            return 0.0
        return self.memory.dirtying_ratio_percent()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.host.name if self.host is not None else "unplaced"
        return (
            f"<VM {self.name!r} {self.instance_type} {self.vcpus}vcpu "
            f"{self.memory.ram_mb}MB {self.state.value} on {where}>"
        )
